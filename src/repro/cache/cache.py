"""Set-associative cache model.

A deliberately simple hit/miss + latency model: the TLB study needs the
*latency* of page-table-entry fetches (which determines the TLB miss
penalty and hence the performance interpolation of Section 5.2.1), not a
full coherence or bandwidth model. Caches are physically indexed and
tagged, with true LRU per set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.constants import CACHE_LINE_SHIFT, CACHE_LINE_SIZE
from repro.common.errors import ConfigurationError
from repro.common.lru import LRUTracker
from repro.common.statistics import CounterSet


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: int
    line_size: int = CACHE_LINE_SIZE

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.latency < 0:
            raise ConfigurationError(f"invalid cache config {self}")
        if self.size_bytes % (self.ways * self.line_size) != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_size})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size)


class Cache:
    """One set-associative cache level with LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._num_sets = config.num_sets
        self._sets: List[LRUTracker[int]] = [
            LRUTracker(config.ways) for _ in range(self._num_sets)
        ]
        self.counters = CounterSet(["accesses", "hits", "misses", "evictions"])

    def _line_address(self, paddr: int) -> int:
        return paddr >> CACHE_LINE_SHIFT

    def _set_index(self, line: int) -> int:
        return line % self._num_sets

    def lookup(self, paddr: int) -> bool:
        """Probe without updating recency or filling. For diagnostics."""
        line = self._line_address(paddr)
        return line in self._sets[self._set_index(line)]

    def access(self, paddr: int) -> bool:
        """Access a byte address; returns True on hit.

        A miss does *not* fill -- callers decide fill policy (the
        hierarchy fills all levels on its way back down).
        """
        self.counters.increment("accesses")
        line = self._line_address(paddr)
        tracker = self._sets[self._set_index(line)]
        if line in tracker:
            tracker.touch(line)
            self.counters.increment("hits")
            return True
        self.counters.increment("misses")
        return False

    def fill(self, paddr: int) -> Optional[int]:
        """Install the line for ``paddr``; returns the evicted line or None."""
        line = self._line_address(paddr)
        tracker = self._sets[self._set_index(line)]
        if line in tracker:
            tracker.touch(line)
            return None
        victim = None
        if tracker.is_full:
            victim = tracker.evict()
            self.counters.increment("evictions")
        tracker.touch(line)
        return victim

    def invalidate(self, paddr: int) -> bool:
        """Drop the line containing ``paddr`` if present."""
        line = self._line_address(paddr)
        tracker = self._sets[self._set_index(line)]
        if line in tracker:
            tracker.remove(line)
            return True
        return False

    def evict_lru_of_set(self, set_index: int) -> Optional[int]:
        """Evict the LRU line of one set (cache-pollution modelling)."""
        tracker = self._sets[set_index % self._num_sets]
        if len(tracker) == 0:
            return None
        self.counters.increment("evictions")
        return tracker.evict()

    @property
    def num_sets(self) -> int:
        return self._num_sets

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(t) for t in self._sets)
