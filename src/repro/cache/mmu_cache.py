"""Unified MMU page-walk cache (paper Section 5.2.1).

The paper models "a more realistic TLB hierarchy with 22-entry MMU
caches, accessed on TLB misses to accelerate page table walks" (following
Barr, Cox and Rixner's translation-caching work). We implement a unified
page-walk cache: one fully-associative structure holding upper-level
page-table entries (PML4E, PDPTE, PDE), tagged by (level, VPN prefix).

On a walk, the deepest cached level wins: a PDE hit means only the final
PTE fetch touches the memory hierarchy; a complete miss costs all four
levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.constants import (
    BITS_PER_LEVEL,
    DEFAULT_MMU_CACHE_ENTRIES,
    DEFAULT_MMU_CACHE_LATENCY,
)
from repro.common.errors import ConfigurationError
from repro.common.lru import LRUTracker
from repro.common.statistics import CounterSet

#: Upper levels a unified MMU cache may hold, as (level index, VPN right
#: shift): level 0 = PML4E (prefix vpn >> 27), 1 = PDPTE (vpn >> 18),
#: 2 = PDE (vpn >> 9). Level 3 (the PTE itself) lives in the TLBs.
CACHEABLE_LEVELS: Tuple[Tuple[int, int], ...] = (
    (0, 3 * BITS_PER_LEVEL),
    (1, 2 * BITS_PER_LEVEL),
    (2, 1 * BITS_PER_LEVEL),
)


@dataclass(frozen=True)
class MMUCacheConfig:
    entries: int = DEFAULT_MMU_CACHE_ENTRIES
    latency: int = DEFAULT_MMU_CACHE_LATENCY

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ConfigurationError("MMU cache needs >= 1 entry")


class MMUCache:
    """Unified, fully-associative page-walk cache with LRU replacement."""

    def __init__(self, config: MMUCacheConfig = MMUCacheConfig()) -> None:
        self.config = config
        self._lru: LRUTracker[Tuple[int, int]] = LRUTracker(config.entries)
        self.counters = CounterSet(["lookups", "hits", "misses", "fills"])

    @staticmethod
    def _key(level: int, vpn: int) -> Tuple[int, int]:
        for lvl, shift in CACHEABLE_LEVELS:
            if lvl == level:
                return (level, vpn >> shift)
        raise ConfigurationError(f"level {level} is not MMU-cacheable")

    def deepest_cached_level(self, vpn: int) -> Optional[int]:
        """Deepest upper level cached for ``vpn`` (2 is best), or None.

        Deeper hits skip more of the walk: a level-2 (PDE) hit leaves only
        the PTE fetch; a level-0 (PML4E) hit leaves three fetches.
        """
        self.counters.increment("lookups")
        best: Optional[int] = None
        for level, shift in CACHEABLE_LEVELS:
            key = (level, vpn >> shift)
            if key in self._lru:
                best = level
        if best is None:
            self.counters.increment("misses")
        else:
            self.counters.increment("hits")
            self._lru.touch((best, vpn >> dict(CACHEABLE_LEVELS)[best]))
        return best

    def fill(self, level: int, vpn: int) -> None:
        """Cache the upper-level entry covering ``vpn`` at ``level``."""
        key = self._key(level, vpn)
        if key in self._lru:
            self._lru.touch(key)
            return
        if self._lru.is_full:
            self._lru.evict()
        self._lru.touch(key)
        self.counters.increment("fills")

    def fill_walk(self, vpn: int, levels_visited: int) -> None:
        """Cache every upper-level entry a walk of ``vpn`` read.

        Args:
            levels_visited: how many table levels the walk touched (4 for
                a full walk to a PTE, 3 for a walk ending at a 2MB PDE).
                The leaf entry itself belongs in the TLBs, so only the
                ``levels_visited - 1`` non-leaf entries are cached here.
        """
        for level, _shift in CACHEABLE_LEVELS:
            if level < levels_visited - 1:
                self.fill(level, vpn)

    def invalidate_vpn(self, vpn: int) -> None:
        """Drop the paging-structure entries covering one virtual page.

        Mirrors INVLPG semantics: a single-page shootdown invalidates the
        walk-cache entries for that address, not the whole structure.
        """
        for level, shift in CACHEABLE_LEVELS:
            self._lru.discard((level, vpn >> shift))

    def invalidate_all(self) -> None:
        """Full flush (context switch / CR3 write)."""
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)
