"""Cache models: set-associative caches, the i7-like hierarchy, MMU caches."""

from repro.cache.cache import Cache, CacheConfig
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.mmu_cache import CACHEABLE_LEVELS, MMUCache, MMUCacheConfig

__all__ = [
    "CACHEABLE_LEVELS",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "HierarchyConfig",
    "MMUCache",
    "MMUCacheConfig",
]
