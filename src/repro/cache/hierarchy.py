"""Three-level cache hierarchy sized like the paper's Intel Core i7.

The hierarchy serves two access streams:

* page-table entries: per the paper (Section 4.1.1, following Barr et
  al.), "the LLC is the highest cache level for page table entries" --
  PTE fetches probe the LLC directly and fall through to DRAM;
* ordinary data: probes L1 -> L2 -> LLC -> DRAM. The TLB study does not
  need per-datum results, but routing the workload's data stream through
  the hierarchy keeps LLC contents (and therefore PTE-fetch latency)
  realistic, since data lines compete with PTE lines for LLC capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import (
    DEFAULT_DRAM_LATENCY,
    DEFAULT_L1_CACHE_BYTES,
    DEFAULT_L1_CACHE_WAYS,
    DEFAULT_L1_LATENCY,
    DEFAULT_L2_CACHE_BYTES,
    DEFAULT_L2_CACHE_WAYS,
    DEFAULT_L2_LATENCY,
    DEFAULT_LLC_BYTES,
    DEFAULT_LLC_LATENCY,
    DEFAULT_LLC_WAYS,
)
from repro.common.statistics import CounterSet
from repro.cache.cache import Cache, CacheConfig


@dataclass(frozen=True)
class HierarchyConfig:
    """Sizes and latencies of the three levels plus DRAM."""

    l1: CacheConfig = CacheConfig(
        "l1d", DEFAULT_L1_CACHE_BYTES, DEFAULT_L1_CACHE_WAYS, DEFAULT_L1_LATENCY
    )
    l2: CacheConfig = CacheConfig(
        "l2", DEFAULT_L2_CACHE_BYTES, DEFAULT_L2_CACHE_WAYS, DEFAULT_L2_LATENCY
    )
    llc: CacheConfig = CacheConfig(
        "llc", DEFAULT_LLC_BYTES, DEFAULT_LLC_WAYS, DEFAULT_LLC_LATENCY
    )
    dram_latency: int = DEFAULT_DRAM_LATENCY


class CacheHierarchy:
    """L1/L2/LLC + DRAM with simple inclusive fills."""

    def __init__(self, config: HierarchyConfig = HierarchyConfig()) -> None:
        self.config = config
        self.l1 = Cache(config.l1)
        self.l2 = Cache(config.l2)
        self.llc = Cache(config.llc)
        self.counters = CounterSet(
            ["data_accesses", "pte_accesses", "dram_accesses"]
        )

    # ------------------------------------------------------------------
    # Page-table entry stream (LLC-only, per the paper).
    # ------------------------------------------------------------------

    def access_pte(self, paddr: int) -> int:
        """Fetch a PTE line; returns the access latency in cycles."""
        self.counters.increment("pte_accesses")
        latency = self.config.llc.latency
        if not self.llc.access(paddr):
            latency += self.config.dram_latency
            self.counters.increment("dram_accesses")
            self.llc.fill(paddr)
        return latency

    # ------------------------------------------------------------------
    # Data stream.
    # ------------------------------------------------------------------

    def access_data(self, paddr: int) -> int:
        """Load/store a data address; returns the access latency."""
        self.counters.increment("data_accesses")
        latency = self.config.l1.latency
        if self.l1.access(paddr):
            return latency
        latency += self.config.l2.latency
        if self.l2.access(paddr):
            self.l1.fill(paddr)
            return latency
        latency += self.config.llc.latency
        if self.llc.access(paddr):
            self.l2.fill(paddr)
            self.l1.fill(paddr)
            return latency
        latency += self.config.dram_latency
        self.counters.increment("dram_accesses")
        self.llc.fill(paddr)
        self.l2.fill(paddr)
        self.l1.fill(paddr)
        return latency

    def flush(self) -> None:
        """Reset to cold caches (used between experiment phases)."""
        self.__init__(self.config)
