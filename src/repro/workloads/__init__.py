"""Workload models: pattern primitives, benchmark profiles, traces."""

from repro.workloads.benchmarks import (
    BENCHMARKS,
    TABLE1_ORDER,
    TABLE1_PAPER_MPMI,
    BenchmarkProfile,
    RegionSpec,
    all_benchmarks,
    get_benchmark,
)
from repro.workloads.patterns import PATTERNS, PhaseSpec, generate_phase
from repro.workloads.trace import Trace, generate_trace, scaled_region_pages

__all__ = [
    "BENCHMARKS",
    "BenchmarkProfile",
    "PATTERNS",
    "PhaseSpec",
    "RegionSpec",
    "TABLE1_ORDER",
    "TABLE1_PAPER_MPMI",
    "Trace",
    "all_benchmarks",
    "generate_phase",
    "generate_trace",
    "get_benchmark",
    "scaled_region_pages",
]
