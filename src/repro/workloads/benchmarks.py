"""Calibrated models of the paper's 14 evaluation workloads (Table 1).

The paper drives its TLB simulator with Simics traces of SPEC 2006 and
BioBench programs. Those traces are not redistributable, so each
benchmark is modelled by the properties that determine its TLB behaviour
and its page-allocation contiguity:

* a *memory plan*: the regions it maps, their sizes, whether they are
  allocated up-front in large mallocs (mcf's hash structures, sjeng's
  transposition table) or demand-faulted piecemeal (xalancbmk's DOM
  nodes), and whether they are anonymous or file-backed (BioBench's
  genome inputs) -- this is what sets its contiguity profile (Figs 7-15);
* a *three-tier access mixture* calibrated against Table 1: a small hot
  working set that lives in the L1 TLB, a mid-size working set around
  the L2 TLB's reach (the source of Table 1's large L1-vs-L2 MPMI gaps,
  and of CoLT's biggest wins when coalescing pulls it within reach),
  and a "far" phase -- pointer chasing, streaming, or uniform references
  over the full footprint -- whose misses defeat the whole hierarchy.
  Tier weights are derived from the paper's measured MPMI
  (``weight = pattern_page_rate * target_miss_rate``), so the baseline
  simulation lands near Table 1 by construction and everything else
  (CoLT eliminations, THS deltas) is emergent;
* a core model (base CPI, instructions per access) for the performance
  interpolation of Figure 21 -- memory-bound codes like mcf get the high
  CPIs they are famous for.

Region sizes are expressed for the default 2**16-frame (256MB) machine
and scaled by the simulation's ``scale`` factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.errors import WorkloadError
from repro.core.performance import CoreModel
from repro.osmem.vma import VMAKind
from repro.workloads.patterns import PhaseSpec


@dataclass(frozen=True)
class RegionSpec:
    """One mapped region of a benchmark's address space.

    Attributes:
        name: referenced by phases.
        pages: size at scale 1.0.
        kind: anonymous (heap/mmap) or file-backed (inputs, page cache).
        populate: True = allocated up-front with one large request (the
            paper's "malloc calls that simultaneously request a number of
            physical pages together"); False = demand-faulted during the
            access stream.
        fault_batch: pages the fault path populates per demand fault for
            touches of this region (an allocator that builds one node at
            a time effectively faults one page at a time).
        thp_eligible: False models a brk-grown heap of tiny objects whose
            VMA never presents a wholly-unpopulated 2MB chunk to THP.
    """

    name: str
    pages: int
    kind: VMAKind = VMAKind.ANONYMOUS
    populate: bool = False
    fault_batch: int = 16
    thp_eligible: bool = True

    def __post_init__(self) -> None:
        if self.pages < 1:
            raise WorkloadError(f"region {self.name} must have >= 1 page")
        if self.fault_batch < 1:
            raise WorkloadError("fault_batch must be >= 1")


@dataclass(frozen=True)
class BenchmarkProfile:
    """Complete model of one evaluation workload."""

    name: str
    suite: str  # "spec" or "biobench"
    regions: Tuple[RegionSpec, ...]
    phases: Tuple[PhaseSpec, ...]
    core: CoreModel = CoreModel()
    description: str = ""

    def __post_init__(self) -> None:
        region_names = {r.name for r in self.regions}
        if len(region_names) != len(self.regions):
            raise WorkloadError(f"{self.name}: duplicate region names")
        for phase in self.phases:
            if phase.region not in region_names:
                raise WorkloadError(
                    f"{self.name}: phase references unknown region "
                    f"{phase.region!r}"
                )

    @property
    def total_pages(self) -> int:
        return sum(r.pages for r in self.regions)

    def region(self, name: str) -> RegionSpec:
        for region in self.regions:
            if region.name == name:
                return region
        raise WorkloadError(f"{self.name}: no region {name!r}")


def _subset(region, weight, frac, appp, offset=0.0):
    """Uniform references over a ``frac`` slice of a region.

    Implemented as a zipf phase whose hot subset receives every access:
    the working-set tiers (hot set in the L1 TLB, mid set around the L2
    TLB's reach) are slices of a region, placed at ``offset`` so they
    need not coincide with the region's (often hugepage-backed) start.
    """
    return PhaseSpec(
        "zipf", region, weight=weight, accesses_per_page=appp,
        hot_fraction=frac, hot_weight=1.0, region_offset=offset,
    )


def _profile(name, suite, regions, phases, base_cpi, ipa, description):
    return BenchmarkProfile(
        name=name,
        suite=suite,
        regions=tuple(regions),
        phases=tuple(phases),
        core=CoreModel(base_cpi=base_cpi, instructions_per_access=ipa),
        description=description,
    )


BENCHMARKS: Dict[str, BenchmarkProfile] = {}


def _add(profile: BenchmarkProfile) -> None:
    BENCHMARKS[profile.name] = profile


_add(_profile(
    "mcf", "spec",
    regions=[
        RegionSpec("arcs", 20000, populate=True, fault_batch=64),
        RegionSpec("nodes", 6000, populate=True, fault_batch=64),
    ],
    phases=[
        PhaseSpec("pointer_chase", "arcs", weight=0.160, accesses_per_page=2),
        PhaseSpec("random", "arcs", weight=0.050, accesses_per_page=2),
        PhaseSpec("random", "nodes", weight=0.036, accesses_per_page=2),
        _subset("arcs", 0.232, 0.0055, 2, offset=0.97),  # ~110-page mid tier
        _subset("arcs", 0.522, 0.0008, 6, offset=0.95),  # ~16-page hot tier
    ],
    base_cpi=6.7, ipa=2.5,
    description=(
        "Network-simplex solver: giant arc/node arrays malloc'd at start "
        "(high contiguity) chased with little locality -- the worst TLB "
        "stress in Table 1 and a famously memory-bound CPI."
    ),
))

_add(_profile(
    "tigr", "biobench",
    regions=[
        RegionSpec("genome", 12000, kind=VMAKind.FILE_BACKED, populate=True,
                   fault_batch=64),
        RegionSpec("index", 5000, populate=True, fault_batch=64),
    ],
    phases=[
        PhaseSpec("random", "genome", weight=0.065, accesses_per_page=2),
        PhaseSpec("random", "index", weight=0.029, accesses_per_page=2),
        _subset("genome", 0.040, 0.0067, 2, offset=0.5),
        _subset("genome", 0.866, 0.00133, 6),
    ],
    base_cpi=4.6, ipa=2.5,
    description=(
        "Genome assembler over file-backed (never THP-eligible) input: "
        "large contiguity but scattered reuse, so coalescing helps less "
        "than contiguity alone suggests (Section 7.1.1's Tigr remark)."
    ),
))

_add(_profile(
    "mummer", "biobench",
    regions=[
        RegionSpec("suffix_tree", 11000, populate=True, fault_batch=32,
                   thp_eligible=False),
        RegionSpec("query", 3000, kind=VMAKind.FILE_BACKED, populate=True,
                   fault_batch=32),
    ],
    phases=[
        PhaseSpec("pointer_chase", "suffix_tree", weight=0.065,
                  accesses_per_page=2),
        _subset("suffix_tree", 0.009, 0.0182, 2, offset=0.5),
        _subset("suffix_tree", 0.600, 0.0015, 6),
        _subset("query", 0.326, 0.0053, 6),
    ],
    base_cpi=3.5, ipa=2.5,
    description=("Suffix-tree aligner: pointer chasing over a tree built "
     "node by node (brk-grown, never THP-backed -- Table 1 shows THS "
     "barely helps it)."),
))

_add(_profile(
    "cactusadm", "spec",
    regions=[
        RegionSpec("grid", 12000, populate=True, fault_batch=512),
    ],
    phases=[
        PhaseSpec("strided", "grid", weight=0.024, accesses_per_page=3,
                  stride=16),
        PhaseSpec("sequential", "grid", weight=0.024, accesses_per_page=3),
        _subset("grid", 0.0135, 0.0292, 3, offset=0.6),
        _subset("grid", 0.9245, 0.00133, 6),
    ],
    base_cpi=2.4, ipa=3.0,
    description=(
        "ADM stencil over one huge grid allocated in a single mmap: the "
        "paper's highest-contiguity workload (legend 149.7 in Fig 7)."
    ),
))

_add(_profile(
    "astar", "spec",
    regions=[
        RegionSpec("graph", 7000, populate=True, fault_batch=2),
        RegionSpec("open_list", 1500, populate=True, fault_batch=2),
    ],
    phases=[
        PhaseSpec("random", "graph", weight=0.050, accesses_per_page=2),
        PhaseSpec("pointer_chase", "graph", weight=0.027, accesses_per_page=2),
        _subset("graph", 0.037, 0.0357, 2, offset=0.6),
        _subset("open_list", 0.896, 0.0107, 6),
    ],
    base_cpi=1.6, ipa=3.0,
    description=(
        "Pathfinder allocating nodes piecemeal (2-page demand faults -> "
        "little contiguity, legend 3.89/1.69) whose mid working set "
        "slightly overflows the L2 TLB -- which is why modest coalescing "
        "nearly perfects its TLB in Figure 18."
    ),
))

_add(_profile(
    "omnetpp", "spec",
    regions=[
        RegionSpec("event_heap", 6000, populate=True, fault_batch=32),
        RegionSpec("messages", 3000, populate=True, fault_batch=32),
    ],
    phases=[
        PhaseSpec("pointer_chase", "messages", weight=0.0485,
                  accesses_per_page=2),
        _subset("event_heap", 0.1558, 0.0183, 2, offset=0.5),
        _subset("event_heap", 0.7957, 0.00267, 6),
    ],
    base_cpi=0.8, ipa=3.0,
    description="Discrete-event simulator with a skewed event working set.",
))

_add(_profile(
    "xalancbmk", "spec",
    regions=[
        RegionSpec("dom", 6000, populate=True, fault_batch=1),
        RegionSpec("stylesheet", 1000, populate=True, fault_batch=1),
    ],
    phases=[
        PhaseSpec("pointer_chase", "dom", weight=0.0147, accesses_per_page=2),
        _subset("dom", 0.0841, 0.0167, 2, offset=0.5),
        _subset("dom", 0.700, 0.00267, 6),
        _subset("stylesheet", 0.2012, 0.016, 6),
    ],
    base_cpi=0.35, ipa=3.5,
    description=(
        "XSLT processor building its DOM one node at a time (1-page "
        "faults, legend contiguity 1.88). Its very fast core makes TLB "
        "overhead a huge runtime fraction -- the paper's outsized 115% "
        "perfect-TLB headroom and ~60% CoLT gains (Fig 21)."
    ),
))

_add(_profile(
    "povray", "spec",
    regions=[
        RegionSpec("scene", 2500, populate=True, fault_batch=2,
                   thp_eligible=False),
    ],
    phases=[
        PhaseSpec("random", "scene", weight=0.0044, accesses_per_page=2),
        _subset("scene", 0.0468, 0.040, 2, offset=0.5),
        _subset("scene", 0.9488, 0.0064, 6),
    ],
    base_cpi=0.6, ipa=3.5,
    description="Ray tracer with a small, hot scene graph.",
))

_add(_profile(
    "gemsfdtd", "spec",
    regions=[
        RegionSpec("fields", 9000, populate=True, fault_batch=64),
    ],
    phases=[
        PhaseSpec("sequential", "fields", weight=0.0434, accesses_per_page=4),
        _subset("fields", 0.0397, 0.0111, 3, offset=0.6),
        _subset("fields", 0.9169, 0.00178, 6),
    ],
    base_cpi=1.0, ipa=3.0,
    description="FDTD solver sweeping large field arrays.",
))

_add(_profile(
    "gobmk", "spec",
    regions=[
        RegionSpec("board_cache", 2000, fault_batch=8),
    ],
    phases=[
        PhaseSpec("random", "board_cache", weight=0.0062, accesses_per_page=2),
        _subset("board_cache", 0.00832, 0.050, 2, offset=0.5),
        _subset("board_cache", 0.9876, 0.008, 6),
    ],
    base_cpi=1.0, ipa=4.0,
    description="Go engine: small hot working set, little TLB stress.",
))

_add(_profile(
    "fastaprot", "biobench",
    regions=[
        RegionSpec("sequences", 1500, kind=VMAKind.FILE_BACKED, populate=True,
                   fault_batch=16),
        RegionSpec("scores", 500, fault_batch=4),
    ],
    phases=[
        PhaseSpec("sequential", "sequences", weight=0.0049, accesses_per_page=4),
        _subset("sequences", 0.0037, 0.0427, 3, offset=0.5),
        _subset("scores", 0.9914, 0.032, 6),
    ],
    base_cpi=1.0, ipa=4.0,
    description="Protein-sequence scan: tiny footprint, lowest MPMI tier.",
))

_add(_profile(
    "sjeng", "spec",
    regions=[
        RegionSpec("tt", 5500, populate=True, fault_batch=512),
    ],
    phases=[
        PhaseSpec("random", "tt", weight=0.00176, accesses_per_page=1),
        _subset("tt", 0.01368, 0.0182, 1, offset=0.9),
        _subset("tt", 0.98456, 0.0029, 6, offset=0.85),
    ],
    base_cpi=0.9, ipa=4.0,
    description=(
        "Chess engine whose transposition table is one giant malloc "
        "(legend contiguity 104-117 across configs) but whose probes "
        "concentrate on few pages -> low MPMI despite the footprint."
    ),
))

_add(_profile(
    "bzip2", "spec",
    regions=[
        RegionSpec("blocks", 4500, populate=True, fault_batch=256),
    ],
    phases=[
        PhaseSpec("sequential", "blocks", weight=0.0038, accesses_per_page=4),
        _subset("blocks", 0.0719, 0.0222, 3, offset=0.85),
        _subset("blocks", 0.9243, 0.00356, 6, offset=0.8),
    ],
    base_cpi=0.9, ipa=3.5,
    description="Block compressor: contiguous buffers, block-local reuse.",
))

_add(_profile(
    "milc", "spec",
    regions=[
        RegionSpec("lattice", 8000, populate=True, fault_batch=256),
    ],
    phases=[
        PhaseSpec("sequential", "lattice", weight=0.0437, accesses_per_page=8),
        _subset("lattice", 0.0234, 0.0125, 4, offset=0.6),
        _subset("lattice", 0.9329, 0.002, 6),
    ],
    base_cpi=1.3, ipa=3.0,
    description=(
        "Lattice QCD streaming over one contiguous lattice with heavy "
        "per-site work -- near-zero MPMI with THS on (Table 1's 120/90)."
    ),
))

#: Table 1's benchmark order (highest to lowest THS-on L2 MPMI).
TABLE1_ORDER: Tuple[str, ...] = (
    "mcf", "tigr", "mummer", "cactusadm", "astar", "omnetpp", "xalancbmk",
    "povray", "gemsfdtd", "gobmk", "fastaprot", "sjeng", "bzip2", "milc",
)

#: Paper-reported Table 1 values: name -> (L1 on, L2 on, L1 off, L2 off).
TABLE1_PAPER_MPMI: Dict[str, Tuple[int, int, int, int]] = {
    "mcf": (56550, 28600, 95600, 49230),
    "tigr": (19000, 18150, 26950, 18860),
    "mummer": (12910, 11450, 14760, 12970),
    "cactusadm": (6610, 8140, 8420, 6930),
    "astar": (8480, 4660, 17390, 11240),
    "omnetpp": (8410, 2730, 34040, 8080),
    "xalancbmk": (2670, 2150, 14120, 2100),
    "povray": (7010, 630, 7310, 630),
    "gemsfdtd": (1300, 620, 8030, 3620),
    "gobmk": (710, 410, 1550, 510),
    "fastaprot": (460, 300, 610, 300),
    "sjeng": (1840, 200, 3860, 440),
    "bzip2": (4070, 150, 7120, 270),
    "milc": (120, 90, 3780, 1820),
}

#: Average contiguity legends from Figures 7-15 (name -> THS on, THS off,
#: THS off + low compaction), for EXPERIMENTS.md comparisons.
CONTIGUITY_PAPER_AVG: Dict[str, Tuple[float, float, float]] = {
    "mcf": (20.3, 11.14, 5.01),
    "tigr": (55.55, 2.71, 2.71),
    "mummer": (6.2, 8.1, 1.3),
    "cactusadm": (149.7, 1.79, 1.6),
    "astar": (3.89, 1.69, 1.26),
    "omnetpp": (32.05, 48.5, 1.2),
    "xalancbmk": (1.88, 2.23, 1.775),
    "povray": (1.85, 1.64, 1.82),
    "gemsfdtd": (8.1, 12.1, 8.4),
    "gobmk": (8.9, 1.83, 1.68),
    "fastaprot": (4.79, 1.013, 1.1),
    "sjeng": (116.75, 104.0, 96.6),
    "bzip2": (82.74, 59.55, 89.09),
    "milc": (84.09, 1.88, 1.88),
}


def get_benchmark(name: str) -> BenchmarkProfile:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}"
        ) from None


def all_benchmarks() -> Tuple[BenchmarkProfile, ...]:
    return tuple(BENCHMARKS[name] for name in TABLE1_ORDER)
