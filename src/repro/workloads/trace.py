"""Trace generation and replay.

A trace is the page-granular access stream of one benchmark run: a numpy
array of virtual page numbers (plus the mapping from the profile's named
regions to their runtime base VPNs). Traces can be generated directly
from a :class:`~repro.workloads.benchmarks.BenchmarkProfile`, saved to
``.npz`` and replayed later -- mirroring the paper's trace-driven
methodology (its Simics traces play the role our generated traces play).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict

import numpy as np

from repro.common.errors import WorkloadError
from repro.workloads.benchmarks import BenchmarkProfile
from repro.workloads.patterns import generate_phase, interleave_phases


@dataclass(frozen=True)
class Trace:
    """A generated access stream.

    Attributes:
        benchmark: profile name the trace came from.
        vpns: the access stream, one VPN per reference.
        region_bases: region name -> base VPN used during generation.
        region_pages: region name -> scaled page count.
    """

    benchmark: str
    vpns: np.ndarray
    region_bases: Dict[str, int]
    region_pages: Dict[str, int]

    def __post_init__(self) -> None:
        if self.vpns.ndim != 1:
            raise WorkloadError("trace must be a 1-D VPN array")

    def __len__(self) -> int:
        return len(self.vpns)

    @property
    def unique_pages(self) -> int:
        return int(np.unique(self.vpns).size)

    def save(self, path: Path) -> None:
        """Persist to an .npz archive."""
        np.savez_compressed(
            path,
            vpns=self.vpns,
            meta=np.frombuffer(
                json.dumps(
                    {
                        "benchmark": self.benchmark,
                        "region_bases": self.region_bases,
                        "region_pages": self.region_pages,
                    }
                ).encode("utf-8"),
                dtype=np.uint8,
            ),
        )

    @classmethod
    def load(cls, path: Path) -> "Trace":
        archive = np.load(path)
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        return cls(
            benchmark=meta["benchmark"],
            vpns=archive["vpns"],
            region_bases={k: int(v) for k, v in meta["region_bases"].items()},
            region_pages={k: int(v) for k, v in meta["region_pages"].items()},
        )


def scaled_region_pages(
    profile: BenchmarkProfile, scale: float
) -> Dict[str, int]:
    """Region page counts at a given footprint scale."""
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")
    return {
        region.name: max(1, int(region.pages * scale))
        for region in profile.regions
    }


def generate_trace(
    profile: BenchmarkProfile,
    region_bases: Dict[str, int],
    accesses: int,
    rng: np.random.Generator,
    scale: float = 1.0,
) -> Trace:
    """Build a ``Trace`` for a profile whose regions live at given bases.

    Per-phase streams are generated with each phase's pattern and then
    interleaved in coarse bursts (see
    :func:`~repro.workloads.patterns.interleave_phases`).
    """
    if accesses < 1:
        raise WorkloadError("accesses must be >= 1")
    pages = scaled_region_pages(profile, scale)
    missing = set(pages) - set(region_bases)
    if missing:
        raise WorkloadError(f"missing region bases for {sorted(missing)}")

    total_weight = sum(p.weight for p in profile.phases)
    streams: Dict[int, np.ndarray] = {}
    weights: Dict[int, float] = {}
    for index, phase in enumerate(profile.phases):
        share = phase.weight / total_weight
        # Generate a modest surplus so bursty interleaving never starves.
        count = int(accesses * share * 1.25) + 1
        offsets = generate_phase(phase, pages[phase.region], count, rng)
        streams[index] = offsets + region_bases[phase.region]
        weights[index] = phase.weight

    vpns = interleave_phases(streams, weights, accesses, rng)
    return Trace(
        benchmark=profile.name,
        vpns=vpns,
        region_bases=dict(region_bases),
        region_pages=pages,
    )
