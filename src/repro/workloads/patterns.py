"""Access-pattern primitives for synthetic benchmark models.

Each generator produces a numpy array of page *offsets* within a region;
the system simulator adds the region's runtime base VPN. The five
primitives span the locality spectrum the paper's benchmarks cover:

* ``sequential`` -- streaming sweeps (milc's lattice, bzip2's blocks);
  maximal spatial locality, the best case for coalesced entries.
* ``strided`` -- fixed-stride traversals (stencils such as CactusADM).
* ``random`` -- uniform references over the footprint (hash tables);
  spatial locality only by accident.
* ``zipf`` -- skewed working-set reuse (gobmk, povray); a configurable
  fraction of accesses concentrates on a hot subset of pages.
* ``pointer_chase`` -- a fixed random permutation cycle (mcf's lists,
  mummer's suffix trees): strong temporal regularity, no spatial
  locality, the worst case for coalescing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.common.errors import WorkloadError

#: Registry of generator callables, keyed by pattern name.
PATTERNS = {}


def _register(name):
    def wrap(fn):
        PATTERNS[name] = fn
        return fn

    return wrap


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a benchmark's access behaviour.

    Attributes:
        pattern: one of :data:`PATTERNS`.
        region: name of the region the phase touches.
        weight: share of the benchmark's accesses spent in this phase.
        accesses_per_page: consecutive references issued to a page before
            moving on (spatial density; higher values lower the MPMI).
        stride: page stride for the ``strided`` pattern.
        hot_fraction: for ``zipf``: fraction of the region that is hot.
        hot_weight: for ``zipf``: fraction of accesses landing on the hot
            subset.
        sweep_fraction: fraction of the region a ``sequential`` sweep
            covers before wrapping.
        region_offset: rotate the phase's footprint by this fraction of
            the region. Lets a hot/mid working set live at the *end* of a
            region (e.g. the most recently grown part of a heap) instead
            of the start.
    """

    pattern: str
    region: str
    weight: float = 1.0
    accesses_per_page: int = 4
    stride: int = 8
    hot_fraction: float = 0.1
    hot_weight: float = 0.9
    sweep_fraction: float = 1.0
    region_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise WorkloadError(
                f"unknown pattern {self.pattern!r}; known: {sorted(PATTERNS)}"
            )
        if self.weight <= 0:
            raise WorkloadError("phase weight must be positive")
        if self.accesses_per_page < 1:
            raise WorkloadError("accesses_per_page must be >= 1")


def generate_phase(
    spec: PhaseSpec,
    region_pages: int,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate ``count`` page offsets for one phase."""
    if region_pages < 1:
        raise WorkloadError("region must have at least one page")
    if count < 1:
        return np.empty(0, dtype=np.int64)
    offsets = PATTERNS[spec.pattern](spec, region_pages, count, rng)
    if spec.region_offset:
        shift = int(spec.region_offset * region_pages)
        offsets = (offsets + shift) % region_pages
    return offsets


def _densify(pages: np.ndarray, accesses_per_page: int) -> np.ndarray:
    """Repeat each page reference ``accesses_per_page`` times in place."""
    if accesses_per_page == 1:
        return pages
    return np.repeat(pages, accesses_per_page)


@_register("sequential")
def _sequential(spec, region_pages, count, rng):
    span = max(1, int(region_pages * spec.sweep_fraction))
    unique = -(-count // spec.accesses_per_page)  # ceil division
    start = int(rng.integers(0, region_pages))
    pages = (start + np.arange(unique, dtype=np.int64)) % span
    return _densify(pages, spec.accesses_per_page)[:count]


@_register("strided")
def _strided(spec, region_pages, count, rng):
    unique = -(-count // spec.accesses_per_page)
    start = int(rng.integers(0, region_pages))
    pages = (start + spec.stride * np.arange(unique, dtype=np.int64)) % region_pages
    return _densify(pages, spec.accesses_per_page)[:count]


@_register("random")
def _random(spec, region_pages, count, rng):
    unique = -(-count // spec.accesses_per_page)
    pages = rng.integers(0, region_pages, size=unique, dtype=np.int64)
    return _densify(pages, spec.accesses_per_page)[:count]


@_register("zipf")
def _zipf(spec, region_pages, count, rng):
    unique = -(-count // spec.accesses_per_page)
    hot_pages = max(1, int(region_pages * spec.hot_fraction))
    is_hot = rng.random(unique) < spec.hot_weight
    hot = rng.integers(0, hot_pages, size=unique, dtype=np.int64)
    cold = rng.integers(0, region_pages, size=unique, dtype=np.int64)
    pages = np.where(is_hot, hot, cold)
    return _densify(pages, spec.accesses_per_page)[:count]


@_register("pointer_chase")
def _pointer_chase(spec, region_pages, count, rng):
    unique = -(-count // spec.accesses_per_page)
    # One fixed random permutation, walked cyclically: every page is
    # revisited at a fixed period (temporal regularity) but neighbours in
    # time are never neighbours in space.
    order = rng.permutation(region_pages).astype(np.int64)
    reps = -(-unique // region_pages)
    pages = np.tile(order, reps)[:unique]
    return _densify(pages, spec.accesses_per_page)[:count]


def interleave_phases(
    streams: Dict[int, np.ndarray],
    weights: Dict[int, float],
    total: int,
    rng: np.random.Generator,
    chunk: int = 256,
) -> np.ndarray:
    """Interleave per-phase streams into one trace of ``total`` entries.

    Phases alternate in ``chunk``-sized bursts chosen with probability
    proportional to weight -- coarse-grained phase interleaving, like a
    program alternating between data structures, rather than per-access
    shuffling (which would destroy each pattern's locality).

    ``streams[i]`` must hold at least ``weights``-share of ``total``
    entries; any surplus is ignored.
    """
    ids = sorted(streams)
    weight_arr = np.array([weights[i] for i in ids], dtype=float)
    weight_arr = weight_arr / weight_arr.sum()
    positions = {i: 0 for i in ids}
    out = np.empty(total, dtype=np.int64)
    filled = 0
    while filled < total:
        phase = ids[int(rng.choice(len(ids), p=weight_arr))]
        stream = streams[phase]
        pos = positions[phase]
        take = min(chunk, total - filled, len(stream) - pos)
        if take <= 0:
            # Stream exhausted: wrap around (patterns are cyclic anyway).
            positions[phase] = 0
            continue
        out[filled : filled + take] = stream[pos : pos + take]
        positions[phase] = pos + take
        filled += take
    return out
