"""TLB entry formats, including CoLT's coalesced entries.

Two entry shapes cover every TLB in the paper:

* :class:`CoalescedEntry` -- the CoLT-SA format (Figure 4, top): a
  naturally-aligned group of up to ``2**shift`` consecutive VPNs shares
  one entry; per-slot valid bits record which translations are present;
  the stored base PPN corresponds to the first set valid bit, and "PPN
  generation logic" (here, integer addition) reconstructs the rest. A
  baseline (non-coalescing) TLB is simply the ``shift = 0`` special case
  with a single valid bit.

* :class:`RangeEntry` -- the CoLT-FA format (Figure 5, top): a base VPN,
  a coalescing-length field, and a base PPN; range-check logic detects
  hits anywhere in ``[base_vpn, base_vpn + span)``. Superpage entries use
  the same shape with ``span = 512`` and the superpage flag set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.common.constants import SUPERPAGE_PAGES
from repro.common.errors import ConfigurationError
from repro.common.types import PageAttributes, Translation


@dataclass
class CoalescedEntry:
    """A CoLT-SA set-associative TLB entry.

    Attributes:
        group_base_vpn: first VPN of the aligned group the entry covers
            (``vpn & ~(group_size - 1)``); tag + index bits derive from it.
        group_size: ``2**shift`` slots covered by the entry.
        valid: per-slot valid bits; the set bits are always one contiguous
            run, because only contiguous translations coalesce.
        base_ppn: PPN of the slot at the *first set valid bit*.
        attributes: single attribute set shared by all coalesced
            translations (Section 4.1.5).
    """

    group_base_vpn: int
    group_size: int
    valid: List[bool]
    base_ppn: int
    attributes: PageAttributes

    def __post_init__(self) -> None:
        if self.group_size < 1 or self.group_size & (self.group_size - 1):
            raise ConfigurationError(
                f"group_size must be a power of two, got {self.group_size}"
            )
        if self.group_base_vpn % self.group_size != 0:
            raise ConfigurationError(
                f"group base {self.group_base_vpn} misaligned for size "
                f"{self.group_size}"
            )
        if len(self.valid) != self.group_size:
            raise ConfigurationError("valid bit count != group size")
        if not any(self.valid):
            raise ConfigurationError("entry must have at least one valid bit")
        run = self._valid_run()
        if run is None:
            raise ConfigurationError(
                "valid bits must form one contiguous run (only contiguous "
                "translations coalesce)"
            )

    def _valid_run(self) -> Optional[Tuple[int, int]]:
        """(first, last) set-bit indices, or None if non-contiguous."""
        first = self.valid.index(True)
        last = self.group_size - 1 - self.valid[::-1].index(True)
        if all(self.valid[first : last + 1]):
            return first, last
        return None

    @classmethod
    def from_run(
        cls,
        translations: Sequence[Translation],
        group_size: int,
    ) -> "CoalescedEntry":
        """Build an entry from a contiguous run inside one aligned group."""
        if not translations:
            raise ConfigurationError("empty translation run")
        first = translations[0]
        base = first.vpn - (first.vpn % group_size)
        valid = [False] * group_size
        for offset, translation in enumerate(translations):
            expected_vpn = first.vpn + offset
            if translation.vpn != expected_vpn:
                raise ConfigurationError("run is not VPN-contiguous")
            if translation.pfn != first.pfn + offset:
                raise ConfigurationError("run is not PFN-contiguous")
            slot = translation.vpn - base
            if not 0 <= slot < group_size:
                raise ConfigurationError("run crosses the aligned group")
            valid[slot] = True
        return cls(base, group_size, valid, first.pfn, first.attributes)

    @property
    def coalesced_count(self) -> int:
        return sum(self.valid)

    @property
    def first_valid_slot(self) -> int:
        return self.valid.index(True)

    def covers(self, vpn: int) -> bool:
        """Hit check: group match + valid bit set (Figure 4 steps a, b)."""
        slot = vpn - self.group_base_vpn
        return 0 <= slot < self.group_size and self.valid[slot]

    def ppn_for(self, vpn: int) -> int:
        """PPN generation logic: base PPN + distance from first valid slot."""
        slot = vpn - self.group_base_vpn
        if not (0 <= slot < self.group_size and self.valid[slot]):
            raise ConfigurationError(f"vpn {vpn} not covered by entry")
        return self.base_ppn + (slot - self.first_valid_slot)

    def translation_for(self, vpn: int) -> Translation:
        return Translation(vpn, self.ppn_for(vpn), self.attributes)

    def slice_for_group(self, vpn: int, group_size: int) -> Optional["CoalescedEntry"]:
        """Project this entry onto a smaller aligned group containing ``vpn``.

        Used when copying an L2 entry into an L1 TLB whose index shift is
        smaller: only the sub-group's translations survive. Returns None
        when no valid slot falls inside the target group.
        """
        if group_size > self.group_size:
            raise ConfigurationError("cannot widen an entry by slicing")
        target_base = vpn - (vpn % group_size)
        translations = [
            self.translation_for(target_base + i)
            for i in range(group_size)
            if self.covers(target_base + i)
        ]
        if not translations:
            return None
        return CoalescedEntry.from_run(translations, group_size)


@dataclass
class RangeEntry:
    """A CoLT-FA fully-associative TLB entry (also superpage entries).

    Attributes:
        base_vpn: first virtual page covered.
        span: number of consecutive translations coalesced (the paper's
            coalescing-length field; 512 for a superpage entry).
        base_ppn: physical frame of ``base_vpn``.
        attributes: shared attribute bits.
        is_superpage: a bona fide 2MB mapping rather than coalesced 4KB
            pages (affects invalidation semantics, not lookup).
    """

    base_vpn: int
    span: int
    base_ppn: int
    attributes: PageAttributes
    is_superpage: bool = False

    def __post_init__(self) -> None:
        if self.span < 1:
            raise ConfigurationError(f"span must be >= 1, got {self.span}")
        if self.is_superpage and self.span != SUPERPAGE_PAGES:
            raise ConfigurationError("superpage entries span exactly 512 pages")

    @classmethod
    def from_run(cls, translations: Sequence[Translation]) -> "RangeEntry":
        """Build a range entry from a contiguous run of translations."""
        if not translations:
            raise ConfigurationError("empty translation run")
        first = translations[0]
        for offset, translation in enumerate(translations):
            if (
                translation.vpn != first.vpn + offset
                or translation.pfn != first.pfn + offset
            ):
                raise ConfigurationError("run is not contiguous")
        return cls(first.vpn, len(translations), first.pfn, first.attributes)

    @classmethod
    def from_superpage(cls, translation: Translation) -> "RangeEntry":
        if not translation.is_superpage:
            raise ConfigurationError("translation is not a superpage")
        return cls(
            translation.vpn,
            SUPERPAGE_PAGES,
            translation.pfn,
            translation.attributes,
            is_superpage=True,
        )

    @property
    def end_vpn(self) -> int:
        return self.base_vpn + self.span

    def covers(self, vpn: int) -> bool:
        """Range-check logic (Figure 5 step a)."""
        return self.base_vpn <= vpn < self.end_vpn

    def ppn_for(self, vpn: int) -> int:
        """PPN generation logic (Figure 5 step b): offset addition."""
        if not self.covers(vpn):
            raise ConfigurationError(f"vpn {vpn} not covered by entry")
        return self.base_ppn + (vpn - self.base_vpn)

    def translation_for(self, vpn: int) -> Translation:
        return Translation(
            vpn, self.ppn_for(vpn), self.attributes, self.is_superpage
        )

    def mergeable_with(self, other: "RangeEntry", max_span: int) -> bool:
        """Can this entry and ``other`` fuse into one larger range?

        Requires: both non-superpage, adjacency in both VPN and PPN
        space, matching attributes, and a fused span within the length
        field's capacity.
        """
        if self.is_superpage or other.is_superpage:
            return False
        if self.attributes.coalescing_key() != other.attributes.coalescing_key():
            return False
        lo, hi = (self, other) if self.base_vpn <= other.base_vpn else (other, self)
        return (
            lo.end_vpn == hi.base_vpn
            and lo.base_ppn + lo.span == hi.base_ppn
            and lo.span + hi.span <= max_span
        )

    def merged(self, other: "RangeEntry", max_span: int) -> "RangeEntry":
        if not self.mergeable_with(other, max_span):
            raise ConfigurationError("entries are not mergeable")
        lo, hi = (self, other) if self.base_vpn <= other.base_vpn else (other, self)
        return RangeEntry(
            lo.base_vpn, lo.span + hi.span, lo.base_ppn, lo.attributes
        )
