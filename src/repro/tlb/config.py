"""Configuration dataclasses for the TLB hierarchy."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import (
    COLT_FA_MAX_SPAN,
    DEFAULT_L1_TLB_ENTRIES,
    DEFAULT_L1_TLB_WAYS,
    DEFAULT_L2_TLB_ENTRIES,
    DEFAULT_L2_TLB_WAYS,
    DEFAULT_SUPERPAGE_TLB_ENTRIES,
)
from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class SetAssociativeTLBConfig:
    """Geometry of a set-associative TLB.

    Attributes:
        entries: total entry count.
        ways: associativity.
        index_shift: CoLT-SA's left shift of the set-index bits
            (Section 4.1.2). ``0`` is a conventional TLB; shift ``k``
            maps groups of ``2**k`` consecutive VPNs to the same set and
            allows up to ``2**k`` translations per entry.
        graceful_invalidation: the paper's Section 4.1.5 future-work
            idea: instead of flushing a whole coalesced entry on a
            single-page shootdown, shrink it around the victim page.
        coalescing_aware_replacement: the other Section 4.1.5 idea:
            prefer evicting entries that coalesce fewer translations.
        name: label used in counters/reporting.
    """

    entries: int
    ways: int
    index_shift: int = 0
    graceful_invalidation: bool = False
    coalescing_aware_replacement: bool = False
    name: str = "tlb"

    def __post_init__(self) -> None:
        if self.entries < 1 or self.ways < 1:
            raise ConfigurationError(
                f"{self.name}: entries and ways must both be >= 1 "
                f"(got entries={self.entries}, ways={self.ways})"
            )
        if self.ways > self.entries:
            raise ConfigurationError(
                f"{self.name}: associativity {self.ways} exceeds the "
                f"{self.entries} total entries -- a {self.ways}-way TLB "
                f"needs at least {self.ways} entries"
            )
        if self.entries % self.ways != 0:
            raise ConfigurationError(
                f"{self.name}: {self.entries} entries not divisible by "
                f"{self.ways} ways"
            )
        num_sets = self.entries // self.ways
        if num_sets & (num_sets - 1):
            raise ConfigurationError(
                f"{self.name}: set count {num_sets} must be a power of two"
            )
        if not 0 <= self.index_shift <= 3:
            # The coalescing window is one 8-PTE cache line, so shifts
            # beyond 3 (group size 8) buy nothing (Section 4.1.4).
            raise ConfigurationError(
                f"index_shift must be in [0, 3], got {self.index_shift}"
            )

    @property
    def num_sets(self) -> int:
        return self.entries // self.ways

    @property
    def group_size(self) -> int:
        """Consecutive VPNs mapping to one set (= max coalescing)."""
        return 1 << self.index_shift


@dataclass(frozen=True)
class FullyAssociativeTLBConfig:
    """Geometry of the fully-associative (superpage / CoLT-FA) TLB.

    Attributes:
        entries: entry count (16 baseline; 8 for CoLT-FA/All,
            Section 4.2.4's conservative sizing).
        allow_coalesced: accept coalesced base-page range entries, not
            just superpages (True for CoLT-FA / CoLT-All).
        merge_on_insert: attempt insertion-time merging with resident
            entries (Section 4.2.1's secondary coalescing).
        max_span: capacity of the coalescing-length field.
        graceful_invalidation: shrink/split range entries around an
            invalidated page instead of dropping them (Section 4.2.3
            notes whole-entry invalidation hurts more "for larger
            amounts of coalescing" -- this is the obvious fix).
        name: label used in counters/reporting.
    """

    entries: int = DEFAULT_SUPERPAGE_TLB_ENTRIES
    allow_coalesced: bool = False
    merge_on_insert: bool = False
    max_span: int = COLT_FA_MAX_SPAN
    graceful_invalidation: bool = False
    name: str = "sp_tlb"

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ConfigurationError("FA TLB needs >= 1 entry")
        if self.max_span < 8:
            raise ConfigurationError("max_span must cover a cache line (8)")


def default_l1_config(index_shift: int = 0) -> SetAssociativeTLBConfig:
    """Paper's simulated L1: 32-entry, 4-way (Section 5.2.1)."""
    return SetAssociativeTLBConfig(
        DEFAULT_L1_TLB_ENTRIES, DEFAULT_L1_TLB_WAYS, index_shift, name="l1_tlb"
    )


def default_l2_config(
    index_shift: int = 0, ways: int = DEFAULT_L2_TLB_WAYS
) -> SetAssociativeTLBConfig:
    """Paper's simulated L2: 128-entry, 4-way (8-way in Figure 20)."""
    return SetAssociativeTLBConfig(
        DEFAULT_L2_TLB_ENTRIES, ways, index_shift, name="l2_tlb"
    )
