"""Set-associative TLB with CoLT-SA's shifted set indexing.

Set selection (Section 4.1.2): a conventional TLB with ``S`` sets indexes
with ``VPN[log2(S)-1 : 0]``, mapping consecutive VPNs to consecutive sets
and precluding coalescing. CoLT-SA left-shifts the index field by ``k``
bits -- ``VPN[k + log2(S) - 1 : k]`` -- so each aligned group of ``2**k``
consecutive VPNs shares a set and may share one coalesced entry. The low
``k`` bits select among the entry's valid bits on lookup (Figure 4).

Note that a group is *allowed* to occupy several ways at once: when the
group's translations are not physically contiguous they cannot share one
entry's base-PPN arithmetic, so they live in separate ways carrying the
same tag with disjoint valid bits -- exactly what the hardware's
tag-match + valid-bit-select lookup supports.

The same class implements the baseline TLB (``index_shift = 0``).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.common.lru import LRUTracker
from repro.common.statistics import CounterSet
from repro.common.types import Translation
from repro.tlb.config import SetAssociativeTLBConfig
from repro.tlb.entries import CoalescedEntry


class SetAssociativeTLB:
    """L1/L2 TLB storing (possibly coalesced) entries with LRU per set."""

    def __init__(self, config: SetAssociativeTLBConfig) -> None:
        self.config = config
        #: Optional sanitizer hook (see ``repro.analysis.sanitizers``);
        #: when attached, every insert is incrementally validated.
        self.sanitizer = None
        # Per set: entry-id -> entry, plus an LRU tracker over entry ids.
        # Ids (not group bases) key the ways, because one group may
        # legitimately occupy several ways (see module docstring).
        self._sets: List[Dict[int, CoalescedEntry]] = [
            {} for _ in range(config.num_sets)
        ]
        self._lru: List[LRUTracker[int]] = [
            LRUTracker(config.ways) for _ in range(config.num_sets)
        ]
        self._ids = itertools.count()
        self.counters = CounterSet(
            [
                "lookups",
                "hits",
                "misses",
                "fills",
                "evictions",
                "invalidations",
                "coalesced_translations",
            ]
        )

    # ------------------------------------------------------------------
    # Indexing.
    # ------------------------------------------------------------------

    def set_index_for(self, vpn: int) -> int:
        """Set selection with the shifted index field."""
        return (vpn >> self.config.index_shift) % self.config.num_sets

    def group_base_for(self, vpn: int) -> int:
        return vpn - (vpn % self.config.group_size)

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------

    def probe(self, vpn: int, update_lru: bool = True) -> Optional[int]:
        """Probe the TLB; returns the PPN on hit, else None.

        The fast path used by the simulators -- identical bookkeeping to
        :meth:`lookup` without materialising a Translation object.
        """
        self.counters.increment("lookups")
        set_index = self.set_index_for(vpn)
        for entry_id, entry in self._sets[set_index].items():
            if entry.covers(vpn):
                if update_lru:
                    self._lru[set_index].touch(entry_id)
                self.counters.increment("hits")
                return entry.ppn_for(vpn)
        self.counters.increment("misses")
        return None

    def lookup(self, vpn: int, update_lru: bool = True) -> Optional[Translation]:
        """Probe the TLB; returns the translation on hit, else None."""
        ppn = self.probe(vpn, update_lru)
        if ppn is None:
            return None
        entry = self.entry_for(vpn)
        return Translation(vpn, ppn, entry.attributes)

    def entry_for(self, vpn: int) -> Optional[CoalescedEntry]:
        """The resident entry covering ``vpn`` (no stats side effects)."""
        set_index = self.set_index_for(vpn)
        for entry in self._sets[set_index].values():
            if entry.covers(vpn):
                return entry
        return None

    # ------------------------------------------------------------------
    # Fill.
    # ------------------------------------------------------------------

    def insert(self, entry: CoalescedEntry) -> List[CoalescedEntry]:
        """Install an entry; returns any entries displaced.

        Resident entries whose valid bits overlap the incoming entry are
        replaced (the walk's data is fresher and includes the demanded
        page); same-group entries with disjoint valid bits coexist in
        other ways. The LRU way is evicted when the set is full.
        """
        if entry.group_size != self.config.group_size:
            raise ValueError(
                f"entry group size {entry.group_size} != TLB group size "
                f"{self.config.group_size}"
            )
        set_index = self.set_index_for(entry.group_base_vpn)
        bucket = self._sets[set_index]
        lru = self._lru[set_index]
        displaced: List[CoalescedEntry] = []
        # Drop overlapping residents (stale copies of the same pages).
        for entry_id, resident in list(bucket.items()):
            if resident.group_base_vpn == entry.group_base_vpn and any(
                a and b for a, b in zip(resident.valid, entry.valid)
            ):
                displaced.append(bucket.pop(entry_id))
                lru.remove(entry_id)
        if lru.is_full:
            victim_id = self._choose_victim(set_index)
            lru.remove(victim_id)
            displaced.append(bucket.pop(victim_id))
            self.counters.increment("evictions")
        entry_id = next(self._ids)
        bucket[entry_id] = entry
        lru.touch(entry_id)
        self.counters.increment("fills")
        self.counters.increment("coalesced_translations", entry.coalesced_count)
        if self.sanitizer is not None:
            self.sanitizer.after_insert(self, entry)
        return displaced

    def _choose_victim(self, set_index: int) -> int:
        """Pick the entry id to evict from a full set.

        Standard LRU by default. With coalescing-aware replacement
        (Section 4.1.5 future work) the victim is the least-recently-used
        entry among those covering the fewest translations: an entry
        representing four pages is worth more than a singleton of equal
        recency.
        """
        lru = self._lru[set_index]
        if not self.config.coalescing_aware_replacement:
            return lru.victim()
        bucket = self._sets[set_index]
        min_count = min(e.coalesced_count for e in bucket.values())
        for entry_id in lru:  # LRU -> MRU order
            if bucket[entry_id].coalesced_count == min_count:
                return entry_id
        return lru.victim()  # pragma: no cover - loop always returns

    def insert_translation(self, translation: Translation) -> None:
        """Install a single (uncoalesced) translation."""
        group = self.config.group_size
        base = translation.vpn - (translation.vpn % group)
        valid = [False] * group
        valid[translation.vpn - base] = True
        self.insert(
            CoalescedEntry(
                base, group, valid, translation.pfn, translation.attributes
            )
        )

    # ------------------------------------------------------------------
    # Invalidation.
    # ------------------------------------------------------------------

    def invalidate(self, vpn: int) -> bool:
        """Shootdown for one page.

        Default behaviour per Section 4.1.5: CoLT "flush[es] out entire
        coalesced entries, losing information for pages that would be
        unaffected in standard TLBs". With graceful invalidation (the
        section's future-work idea) the entry is instead shrunk around
        the victim page, keeping the unaffected translations resident.
        """
        set_index = self.set_index_for(vpn)
        bucket = self._sets[set_index]
        lru = self._lru[set_index]
        dropped = False
        for entry_id, entry in list(bucket.items()):
            if not entry.covers(vpn):
                continue
            del bucket[entry_id]
            lru.remove(entry_id)
            self.counters.increment("invalidations")
            dropped = True
            if self.config.graceful_invalidation:
                for survivor in self._shrink_around(entry, vpn):
                    new_id = next(self._ids)
                    bucket[new_id] = survivor
                    lru.touch(new_id)
                    self.counters.increment("graceful_splits")
        return dropped

    @staticmethod
    def _shrink_around(entry: CoalescedEntry, vpn: int) -> List[CoalescedEntry]:
        """The surviving sub-entries after removing one page from ``entry``.

        A coalesced entry's valid bits form one contiguous run; removing
        an interior page yields at most two runs (left and right of it).
        """
        survivors: List[CoalescedEntry] = []
        slot = vpn - entry.group_base_vpn
        first = entry.first_valid_slot
        last = first + entry.coalesced_count - 1
        attrs = entry.attributes
        if slot > first:
            survivors.append(
                CoalescedEntry.from_run(
                    [
                        Translation(
                            entry.group_base_vpn + s,
                            entry.base_ppn + (s - first),
                            attrs,
                        )
                        for s in range(first, slot)
                    ],
                    entry.group_size,
                )
            )
        if slot < last:
            survivors.append(
                CoalescedEntry.from_run(
                    [
                        Translation(
                            entry.group_base_vpn + s,
                            entry.base_ppn + (s - first),
                            attrs,
                        )
                        for s in range(slot + 1, last + 1)
                    ],
                    entry.group_size,
                )
            )
        return survivors

    def flush(self) -> None:
        for bucket in self._sets:
            bucket.clear()
        for lru in self._lru:
            lru.clear()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    def resident_translations(self) -> int:
        """Total VPNs covered (> occupancy when entries are coalesced)."""
        return sum(
            entry.coalesced_count
            for bucket in self._sets
            for entry in bucket.values()
        )

    def entries(self) -> List[CoalescedEntry]:
        return [e for bucket in self._sets for e in bucket.values()]

    def iter_sets(self):
        """Yield ``(set_index, entries)`` pairs; sanitizer introspection."""
        for set_index, bucket in enumerate(self._sets):
            yield set_index, list(bucket.values())

    def set_entries(self, set_index: int) -> List[CoalescedEntry]:
        """The entries resident in one set; sanitizer introspection."""
        return list(self._sets[set_index].values())
