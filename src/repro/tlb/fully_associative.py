"""Fully-associative TLB: superpage entries and CoLT-FA range entries.

The baseline configuration caches only superpages (the small structure
x86 processors pair with their set-associative TLBs). CoLT-FA
(Section 4.2) reuses it for coalesced base-page ranges: each entry holds
a base VPN, a coalescing length, and a base PPN; lookups range-check the
requested VPN against every entry (comparator + adder logic in hardware,
Figure 5).

Insertion-time merging (Section 4.2.1): when a freshly-coalesced entry is
adjacent -- in both VPN and PPN space -- to a resident entry, the two fuse
into one longer range. This is how CoLT-FA spans multiple PTE cache
lines, which the paper uses to explain why CoLT-FA sometimes beats
CoLT-All (Section 7.1.1).
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.common.lru import LRUTracker
from repro.common.statistics import CounterSet
from repro.common.types import Translation
from repro.tlb.config import FullyAssociativeTLBConfig
from repro.tlb.entries import RangeEntry


class FullyAssociativeTLB:
    """Small FA TLB with LRU replacement and range-check lookups."""

    def __init__(self, config: FullyAssociativeTLBConfig) -> None:
        self.config = config
        #: Optional sanitizer hook (see ``repro.analysis.sanitizers``);
        #: when attached, every insert is incrementally validated.
        self.sanitizer = None
        self._entries: dict = {}  # id -> RangeEntry
        self._lru: LRUTracker[int] = LRUTracker(config.entries)
        self._ids = itertools.count()
        self.counters = CounterSet(
            [
                "lookups",
                "hits",
                "misses",
                "fills",
                "evictions",
                "merges",
                "invalidations",
            ]
        )

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------

    def probe(self, vpn: int, update_lru: bool = True) -> Optional[int]:
        """Range-check every entry; returns the PPN on hit, else None."""
        self.counters.increment("lookups")
        for entry_id, entry in self._entries.items():
            if entry.covers(vpn):
                if update_lru:
                    self._lru.touch(entry_id)
                self.counters.increment("hits")
                return entry.base_ppn + (vpn - entry.base_vpn)
        self.counters.increment("misses")
        return None

    def lookup(self, vpn: int, update_lru: bool = True) -> Optional[Translation]:
        """Range-check every entry; returns the translation on hit."""
        ppn = self.probe(vpn, update_lru)
        if ppn is None:
            return None
        entry = self.covering_entry(vpn)
        return entry.translation_for(vpn)

    def covering_entry(self, vpn: int) -> Optional[RangeEntry]:
        for entry in self._entries.values():
            if entry.covers(vpn):
                return entry
        return None

    # ------------------------------------------------------------------
    # Fill.
    # ------------------------------------------------------------------

    def insert(self, entry: RangeEntry) -> Optional[RangeEntry]:
        """Install an entry; returns the LRU victim if one was evicted.

        With ``merge_on_insert`` enabled, the incoming entry is first
        fused with any adjacent resident entries (repeatedly -- the new
        range may bridge two residents). The merged entry becomes MRU.
        The paper implements this without a second TLB scan by reusing
        the initial lookup's resident-candidate matches (Section 4.2.4);
        the architectural outcome is the same.
        """
        if entry.is_superpage and not self._superpage_valid(entry):
            raise ValueError("overlapping superpage entry")
        if self.config.merge_on_insert and not entry.is_superpage:
            entry = self._merge_with_residents(entry)
        victim = None
        if self._lru.is_full:
            victim_id = self._lru.evict()
            victim = self._entries.pop(victim_id)
            self.counters.increment("evictions")
        entry_id = next(self._ids)
        self._entries[entry_id] = entry
        self._lru.touch(entry_id)
        self.counters.increment("fills")
        if self.sanitizer is not None:
            self.sanitizer.after_insert(self, entry)
        return victim

    def insert_superpage(self, translation: Translation) -> Optional[RangeEntry]:
        return self.insert(RangeEntry.from_superpage(translation))

    def _superpage_valid(self, entry: RangeEntry) -> bool:
        return all(
            existing.end_vpn <= entry.base_vpn
            or entry.end_vpn <= existing.base_vpn
            or not existing.is_superpage
            for existing in self._entries.values()
        )

    def _merge_with_residents(self, entry: RangeEntry) -> RangeEntry:
        """Fuse ``entry`` with adjacent residents until none remain."""
        merged = True
        while merged:
            merged = False
            for entry_id, resident in list(self._entries.items()):
                if entry.mergeable_with(resident, self.config.max_span):
                    entry = entry.merged(resident, self.config.max_span)
                    del self._entries[entry_id]
                    self._lru.remove(entry_id)
                    self.counters.increment("merges")
                    merged = True
                    break
        return entry

    # ------------------------------------------------------------------
    # Invalidation.
    # ------------------------------------------------------------------

    def invalidate(self, vpn: int) -> bool:
        """Shootdown for one page.

        Whole-entry invalidation by default (Section 4.2.3). With
        graceful invalidation, a coalesced range entry is split into the
        (up to two) sub-ranges around the victim page; superpage entries
        are always dropped whole -- the hardware mapping itself is gone.
        """
        dropped = False
        for entry_id, entry in list(self._entries.items()):
            if not entry.covers(vpn):
                continue
            del self._entries[entry_id]
            self._lru.remove(entry_id)
            self.counters.increment("invalidations")
            dropped = True
            if self.config.graceful_invalidation and not entry.is_superpage:
                for survivor in self._split_around(entry, vpn):
                    new_id = next(self._ids)
                    self._entries[new_id] = survivor
                    self._lru.touch(new_id)
                    self.counters.increment("graceful_splits")
        return dropped

    @staticmethod
    def _split_around(entry: RangeEntry, vpn: int) -> List[RangeEntry]:
        """Sub-ranges of ``entry`` surviving the removal of ``vpn``."""
        survivors: List[RangeEntry] = []
        left_span = vpn - entry.base_vpn
        if left_span > 0:
            survivors.append(
                RangeEntry(
                    entry.base_vpn, left_span, entry.base_ppn,
                    entry.attributes,
                )
            )
        right_span = entry.end_vpn - vpn - 1
        if right_span > 0:
            survivors.append(
                RangeEntry(
                    vpn + 1,
                    right_span,
                    entry.base_ppn + (vpn + 1 - entry.base_vpn),
                    entry.attributes,
                )
            )
        return survivors

    def flush(self) -> None:
        self._entries.clear()
        self._lru.clear()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def entries(self) -> List[RangeEntry]:
        return list(self._entries.values())

    def resident_translations(self) -> int:
        return sum(entry.span for entry in self._entries.values())
