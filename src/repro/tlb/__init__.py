"""TLB structures: set-associative, fully-associative, and their entries."""

from repro.tlb.config import (
    FullyAssociativeTLBConfig,
    SetAssociativeTLBConfig,
    default_l1_config,
    default_l2_config,
)
from repro.tlb.entries import CoalescedEntry, RangeEntry
from repro.tlb.fully_associative import FullyAssociativeTLB
from repro.tlb.set_associative import SetAssociativeTLB

__all__ = [
    "CoalescedEntry",
    "FullyAssociativeTLB",
    "FullyAssociativeTLBConfig",
    "RangeEntry",
    "SetAssociativeTLB",
    "SetAssociativeTLBConfig",
    "default_l1_config",
    "default_l2_config",
]
