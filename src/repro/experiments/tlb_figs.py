"""Figures 18-21: CoLT's TLB miss eliminations and performance gains.

All four figures run on the simulation environment (fresh kernel per
benchmark, Section 5.2) with the paper's simulated hierarchy: 32/128
-entry 4-way L1/L2 TLBs, 16-entry superpage TLB (8 for CoLT-FA/All).

* Figure 18 -- % of baseline L1 and L2 misses eliminated by CoLT-SA,
  CoLT-FA and CoLT-All.
* Figure 19 -- CoLT-SA with the index field left-shifted by 1, 2, 3.
* Figure 20 -- fixed-size L2 associativity study: 4-way CoLT-SA vs
  8-way without CoLT vs 8-way CoLT-SA.
* Figure 21 -- runtime improvement over the baseline for a perfect TLB
  and each CoLT design, via the serialised-walk interpolation model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.statistics import percent_eliminated
from repro.core.mmu import CoLTDesign, make_mmu_config
from repro.sim.runner import ExperimentRunner
from repro.experiments.environments import simulation_config
from repro.experiments.scale import ExperimentScale

#: Figure 18 / 21 design order.
COLT_DESIGNS = (CoLTDesign.COLT_SA, CoLTDesign.COLT_FA, CoLTDesign.COLT_ALL)


@dataclass(frozen=True)
class Fig18Row:
    benchmark: str
    l1_eliminated: Dict[str, float]  # design value -> %
    l2_eliminated: Dict[str, float]


@dataclass(frozen=True)
class Fig18Result:
    rows: Tuple[Fig18Row, ...]

    def average(self, level: str, design: CoLTDesign) -> float:
        key = design.value
        values = [
            (row.l1_eliminated if level == "l1" else row.l2_eliminated)[key]
            for row in self.rows
        ]
        return sum(values) / len(values)

    def format_table(self) -> str:
        header = (
            f"{'Benchmark':11s} "
            f"{'SA L1%':>7s} {'FA L1%':>7s} {'All L1%':>8s}   "
            f"{'SA L2%':>7s} {'FA L2%':>7s} {'All L2%':>8s}"
        )
        lines = ["Fig 18: % baseline TLB misses eliminated", header,
                 "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.benchmark:11s} "
                f"{row.l1_eliminated['colt_sa']:7.1f} "
                f"{row.l1_eliminated['colt_fa']:7.1f} "
                f"{row.l1_eliminated['colt_all']:8.1f}   "
                f"{row.l2_eliminated['colt_sa']:7.1f} "
                f"{row.l2_eliminated['colt_fa']:7.1f} "
                f"{row.l2_eliminated['colt_all']:8.1f}"
            )
        lines.append(
            f"{'Average':11s} "
            f"{self.average('l1', CoLTDesign.COLT_SA):7.1f} "
            f"{self.average('l1', CoLTDesign.COLT_FA):7.1f} "
            f"{self.average('l1', CoLTDesign.COLT_ALL):8.1f}   "
            f"{self.average('l2', CoLTDesign.COLT_SA):7.1f} "
            f"{self.average('l2', CoLTDesign.COLT_FA):7.1f} "
            f"{self.average('l2', CoLTDesign.COLT_ALL):8.1f}"
        )
        return "\n".join(lines)


def run_fig18(
    scale: ExperimentScale, runner: Optional[ExperimentRunner] = None
) -> Fig18Result:
    runner = runner or ExperimentRunner()
    # Prefetch the whole figure in one batch: one capture per benchmark,
    # replays fanned across the runner's workers.
    runner.run_batch([
        simulation_config(benchmark, scale).with_updates(design=design)
        for benchmark in scale.benchmarks
        for design in (CoLTDesign.BASELINE,) + COLT_DESIGNS
    ])
    rows: List[Fig18Row] = []
    for benchmark in scale.benchmarks:
        base_cfg = simulation_config(benchmark, scale)
        results = runner.run_designs(
            base_cfg, (CoLTDesign.BASELINE,) + COLT_DESIGNS
        )
        baseline = results[CoLTDesign.BASELINE]
        l1 = {
            d.value: percent_eliminated(
                baseline.l1_misses, results[d].l1_misses
            )
            for d in COLT_DESIGNS
        }
        l2 = {
            d.value: percent_eliminated(
                baseline.l2_misses, results[d].l2_misses
            )
            for d in COLT_DESIGNS
        }
        rows.append(Fig18Row(benchmark, l1, l2))
    return Fig18Result(tuple(rows))


@dataclass(frozen=True)
class Fig19Row:
    benchmark: str
    l1_eliminated: Dict[int, float]  # shift -> %
    l2_eliminated: Dict[int, float]


@dataclass(frozen=True)
class Fig19Result:
    rows: Tuple[Fig19Row, ...]
    shifts: Tuple[int, ...] = (1, 2, 3)

    def format_table(self) -> str:
        header = (
            f"{'Benchmark':11s} "
            + " ".join(f"L1 s={s:>1d}%".rjust(8) for s in self.shifts)
            + "   "
            + " ".join(f"L2 s={s:>1d}%".rjust(8) for s in self.shifts)
        )
        lines = ["Fig 19: CoLT-SA index left-shift sweep", header,
                 "-" * len(header)]
        for row in self.rows:
            l1 = " ".join(f"{row.l1_eliminated[s]:8.1f}" for s in self.shifts)
            l2 = " ".join(f"{row.l2_eliminated[s]:8.1f}" for s in self.shifts)
            lines.append(f"{row.benchmark:11s} {l1}   {l2}")
        return "\n".join(lines)


def run_fig19(
    scale: ExperimentScale,
    runner: Optional[ExperimentRunner] = None,
    shifts: Tuple[int, ...] = (1, 2, 3),
) -> Fig19Result:
    runner = runner or ExperimentRunner()
    runner.run_batch([
        cfg
        for benchmark in scale.benchmarks
        for base in (simulation_config(benchmark, scale),)
        for cfg in (base,) + tuple(
            base.with_updates(
                design=CoLTDesign.COLT_SA,
                mmu=make_mmu_config(CoLTDesign.COLT_SA, sa_shift=shift),
            )
            for shift in shifts
        )
    ])
    rows: List[Fig19Row] = []
    for benchmark in scale.benchmarks:
        base_cfg = simulation_config(benchmark, scale)
        baseline = runner.run(base_cfg)
        l1: Dict[int, float] = {}
        l2: Dict[int, float] = {}
        for shift in shifts:
            cfg = base_cfg.with_updates(
                design=CoLTDesign.COLT_SA,
                mmu=make_mmu_config(CoLTDesign.COLT_SA, sa_shift=shift),
            )
            result = runner.run(cfg)
            l1[shift] = percent_eliminated(
                baseline.l1_misses, result.l1_misses
            )
            l2[shift] = percent_eliminated(
                baseline.l2_misses, result.l2_misses
            )
        rows.append(Fig19Row(benchmark, l1, l2))
    return Fig19Result(tuple(rows), shifts)


@dataclass(frozen=True)
class Fig20Row:
    """% of the 4-way baseline's L2 misses eliminated by each variant."""

    benchmark: str
    colt_sa_4way: float
    no_colt_8way: float
    colt_sa_8way: float


@dataclass(frozen=True)
class Fig20Result:
    rows: Tuple[Fig20Row, ...]

    def averages(self) -> Tuple[float, float, float]:
        n = len(self.rows)
        return (
            sum(r.colt_sa_4way for r in self.rows) / n,
            sum(r.no_colt_8way for r in self.rows) / n,
            sum(r.colt_sa_8way for r in self.rows) / n,
        )

    def format_table(self) -> str:
        header = (
            f"{'Benchmark':11s} {'4way CoLT-SA%':>14s} "
            f"{'8way no CoLT%':>14s} {'8way CoLT-SA%':>14s}"
        )
        lines = ["Fig 20: L2 misses eliminated vs 4-way baseline",
                 header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.benchmark:11s} {row.colt_sa_4way:14.1f} "
                f"{row.no_colt_8way:14.1f} {row.colt_sa_8way:14.1f}"
            )
        avg = self.averages()
        lines.append(
            f"{'Average':11s} {avg[0]:14.1f} {avg[1]:14.1f} {avg[2]:14.1f}"
        )
        return "\n".join(lines)


def run_fig20(
    scale: ExperimentScale, runner: Optional[ExperimentRunner] = None
) -> Fig20Result:
    runner = runner or ExperimentRunner()

    def fig20_variants(base_cfg):
        return {
            "colt_sa_4way": base_cfg.with_updates(
                design=CoLTDesign.COLT_SA,
                mmu=make_mmu_config(CoLTDesign.COLT_SA, l2_ways=4),
            ),
            "no_colt_8way": base_cfg.with_updates(
                design=CoLTDesign.BASELINE,
                mmu=make_mmu_config(CoLTDesign.BASELINE, l2_ways=8),
            ),
            "colt_sa_8way": base_cfg.with_updates(
                design=CoLTDesign.COLT_SA,
                mmu=make_mmu_config(CoLTDesign.COLT_SA, l2_ways=8),
            ),
        }

    runner.run_batch([
        cfg
        for benchmark in scale.benchmarks
        for base in (simulation_config(benchmark, scale),)
        for cfg in (base,) + tuple(fig20_variants(base).values())
    ])
    rows: List[Fig20Row] = []
    for benchmark in scale.benchmarks:
        base_cfg = simulation_config(benchmark, scale)
        baseline = runner.run(base_cfg)  # 4-way, no CoLT
        variants = fig20_variants(base_cfg)
        eliminated = {
            key: percent_eliminated(
                baseline.l2_misses, runner.run(cfg).l2_misses
            )
            for key, cfg in variants.items()
        }
        rows.append(Fig20Row(benchmark, **eliminated))
    return Fig20Result(tuple(rows))


@dataclass(frozen=True)
class Fig21Row:
    benchmark: str
    improvements: Dict[str, float]  # design value (incl. "perfect") -> %


@dataclass(frozen=True)
class Fig21Result:
    rows: Tuple[Fig21Row, ...]

    def average(self, design: str) -> float:
        return sum(r.improvements[design] for r in self.rows) / len(self.rows)

    def format_table(self) -> str:
        designs = ("perfect", "colt_sa", "colt_fa", "colt_all")
        header = f"{'Benchmark':11s} " + " ".join(
            f"{d:>9s}" for d in designs
        )
        lines = ["Fig 21: runtime improvement over baseline (%)",
                 header, "-" * len(header)]
        for row in self.rows:
            vals = " ".join(f"{row.improvements[d]:9.1f}" for d in designs)
            lines.append(f"{row.benchmark:11s} {vals}")
        avgs = " ".join(f"{self.average(d):9.1f}" for d in designs)
        lines.append(f"{'Average':11s} {avgs}")
        return "\n".join(lines)


def run_fig21(
    scale: ExperimentScale, runner: Optional[ExperimentRunner] = None
) -> Fig21Result:
    runner = runner or ExperimentRunner()
    fig21_designs = (
        CoLTDesign.BASELINE,
        CoLTDesign.PERFECT,
    ) + COLT_DESIGNS
    runner.run_batch([
        simulation_config(benchmark, scale).with_updates(design=design)
        for benchmark in scale.benchmarks
        for design in fig21_designs
    ])
    rows: List[Fig21Row] = []
    for benchmark in scale.benchmarks:
        base_cfg = simulation_config(benchmark, scale)
        perf_rows = runner.performance_improvements(base_cfg)
        rows.append(
            Fig21Row(
                benchmark,
                {row.design: row.improvement_pct for row in perf_rows},
            )
        )
    return Fig21Result(tuple(rows))
