"""The paper's two experimental environments, as configuration factories.

Sections 5.1/6 (contiguity characterisation) measure a *real, loaded
machine*: two months of uptime, live background processes, optional
memhog. Sections 5.2/7 (TLB simulation) replay benchmark traces captured
on *freshly-booted simulated kernels*: mild fragmentation, no competing
load. The two environments produce very different contiguity -- which is
why the characterisation averages are tens of pages while the TLB
results exploit runs of hundreds -- so each experiment must pick the one
its paper section used.
"""

from __future__ import annotations

from repro.core.mmu import CoLTDesign
from repro.osmem.kernel import KernelConfig
from repro.osmem.memhog import CHARACTERIZATION_AGING, SIMULATION_AGING
from repro.sim.system import SimulationConfig
from repro.experiments.scale import ExperimentScale


def characterization_config(
    benchmark: str,
    scale: ExperimentScale,
    ths_enabled: bool = True,
    defrag_enabled: bool = True,
    memhog_fraction: float = 0.0,
) -> SimulationConfig:
    """A Section 5.1-style run: aged, loaded, live-churning machine.

    The five kernel settings of the paper map to:
      1. THS on,  defrag on,  no memhog (Linux default)
      2. THS off, defrag on,  no memhog
      3. THS off, defrag off, no memhog (low compaction)
      4. THS on,  defrag on,  memhog 25% / 50%
      5. THS off, defrag on,  memhog 25% / 50%
    """
    return SimulationConfig(
        benchmark=benchmark,
        design=CoLTDesign.BASELINE,
        kernel=KernelConfig(
            num_frames=scale.num_frames,
            ths_enabled=ths_enabled,
            defrag_enabled=defrag_enabled,
        ),
        memhog_fraction=memhog_fraction,
        accesses=scale.accesses,
        scale=scale.footprint_scale,
        seed=scale.seed,
        aging=CHARACTERIZATION_AGING,
        churn_every=48,
    )


def simulation_config(
    benchmark: str,
    scale: ExperimentScale,
    design: CoLTDesign = CoLTDesign.BASELINE,
) -> SimulationConfig:
    """A Section 5.2-style run: fresh kernel, benchmark alone.

    THS and compaction stay at their Linux defaults (the paper's sim
    kernel config), but uptime has consumed the machine's order-9 blocks,
    so superpages are sparse and the contiguity CoLT leverages is
    base-page contiguity.
    """
    return SimulationConfig(
        benchmark=benchmark,
        design=design,
        kernel=KernelConfig(
            num_frames=scale.num_frames,
            thp_fault_compaction_budget=128,
        ),
        accesses=scale.accesses,
        scale=scale.footprint_scale,
        seed=scale.seed,
        aging=SIMULATION_AGING,
        churn_every=0,
    )
