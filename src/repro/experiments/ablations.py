"""Ablations the paper discusses in prose.

* ``abl_l2fill`` -- Section 7.1.3: CoLT-FA / CoLT-All with and without
  the L2 echo fill. The paper reports the echo is worth an extra 10-20%
  of miss eliminations.
* ``abl_window`` -- Section 4.1.4: the coalescing window is bounded by
  the 8-PTE cache line; we sweep hypothetical windows of 4, 8 and 16 to
  show how much of CoLT's benefit the free cache-line fetch captures.
* ``abl_fasize`` -- Section 4.2.4: the paper conservatively halves the
  fully-associative TLB for CoLT-FA; this ablation shows what a
  full-size 16-entry CoLT-FA would deliver.
* ``abl_futurework`` -- Section 4.1.5 defers two refinements to future
  work: gracefully uncoalescing entries on invalidation instead of
  flushing them whole, and replacement that prefers evicting entries
  with less coalescing. Both are implemented behind flags; this
  ablation measures what the paper left on the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.statistics import percent_eliminated
from repro.core.mmu import CoLTDesign, make_mmu_config
from repro.sim.runner import ExperimentRunner
from repro.experiments.environments import simulation_config
from repro.experiments.scale import ExperimentScale


@dataclass(frozen=True)
class AblationRow:
    benchmark: str
    variants: Dict[str, float]  # variant name -> % of baseline L2 misses
                                # eliminated


@dataclass(frozen=True)
class AblationResult:
    name: str
    variant_names: Tuple[str, ...]
    rows: Tuple[AblationRow, ...]

    def average(self, variant: str) -> float:
        return sum(r.variants[variant] for r in self.rows) / len(self.rows)

    def format_table(self) -> str:
        header = f"{'Benchmark':11s} " + " ".join(
            f"{v:>18s}" for v in self.variant_names
        )
        lines = [f"Ablation: {self.name} (L2 miss elimination %)",
                 header, "-" * len(header)]
        for row in self.rows:
            vals = " ".join(
                f"{row.variants[v]:18.1f}" for v in self.variant_names
            )
            lines.append(f"{row.benchmark:11s} {vals}")
        avgs = " ".join(
            f"{self.average(v):18.1f}" for v in self.variant_names
        )
        lines.append(f"{'Average':11s} {avgs}")
        return "\n".join(lines)


def _sweep(
    name: str,
    variants: Dict[str, tuple],
    scale: ExperimentScale,
    runner: Optional[ExperimentRunner],
) -> AblationResult:
    """Run (design, mmu-config) variants and report L2 eliminations."""
    runner = runner or ExperimentRunner()
    runner.run_batch([
        cfg
        for benchmark in scale.benchmarks
        for base in (simulation_config(benchmark, scale),)
        for cfg in (base,) + tuple(
            base.with_updates(design=design, mmu=mmu)
            for design, mmu in variants.values()
        )
    ])
    rows: List[AblationRow] = []
    for benchmark in scale.benchmarks:
        base_cfg = simulation_config(benchmark, scale)
        baseline = runner.run(base_cfg)
        measured = {}
        for variant, (design, mmu) in variants.items():
            cfg = base_cfg.with_updates(design=design, mmu=mmu)
            measured[variant] = percent_eliminated(
                baseline.l2_misses, runner.run(cfg).l2_misses
            )
        rows.append(AblationRow(benchmark, measured))
    return AblationResult(name, tuple(variants), tuple(rows))


def run_l2fill_ablation(
    scale: ExperimentScale, runner: Optional[ExperimentRunner] = None
) -> AblationResult:
    """Section 7.1.3: the L2 echo fill of CoLT-FA / CoLT-All."""
    variants = {
        "fa_with_l2fill": (
            CoLTDesign.COLT_FA,
            make_mmu_config(CoLTDesign.COLT_FA, fa_fill_l2=True),
        ),
        "fa_no_l2fill": (
            CoLTDesign.COLT_FA,
            make_mmu_config(CoLTDesign.COLT_FA, fa_fill_l2=False),
        ),
        "all_with_l2fill": (
            CoLTDesign.COLT_ALL,
            make_mmu_config(CoLTDesign.COLT_ALL, fa_fill_l2=True),
        ),
        "all_no_l2fill": (
            CoLTDesign.COLT_ALL,
            make_mmu_config(CoLTDesign.COLT_ALL, fa_fill_l2=False),
        ),
    }
    return _sweep("L2 echo fill (Section 7.1.3)", variants, scale, runner)


def run_window_ablation(
    scale: ExperimentScale, runner: Optional[ExperimentRunner] = None
) -> AblationResult:
    """Section 4.1.4: the cache-line coalescing window bound."""
    variants = {
        f"fa_window_{w}": (
            CoLTDesign.COLT_FA,
            make_mmu_config(CoLTDesign.COLT_FA, coalescing_window=w),
        )
        for w in (2, 4, 8)
    }
    return _sweep(
        "coalescing window (Section 4.1.4)", variants, scale, runner
    )


def run_futurework_ablation(
    scale: ExperimentScale, runner: Optional[ExperimentRunner] = None
) -> AblationResult:
    """Section 4.1.5: the paper's deferred refinements, measured."""
    variants = {
        "all_paper": (
            CoLTDesign.COLT_ALL,
            make_mmu_config(CoLTDesign.COLT_ALL),
        ),
        "all_graceful_inval": (
            CoLTDesign.COLT_ALL,
            make_mmu_config(CoLTDesign.COLT_ALL, graceful_invalidation=True),
        ),
        "all_aware_replace": (
            CoLTDesign.COLT_ALL,
            make_mmu_config(
                CoLTDesign.COLT_ALL, coalescing_aware_replacement=True
            ),
        ),
        "all_both": (
            CoLTDesign.COLT_ALL,
            make_mmu_config(
                CoLTDesign.COLT_ALL,
                graceful_invalidation=True,
                coalescing_aware_replacement=True,
            ),
        ),
    }
    return _sweep(
        "future-work mechanisms (Section 4.1.5)", variants, scale, runner
    )


def run_fasize_ablation(
    scale: ExperimentScale, runner: Optional[ExperimentRunner] = None
) -> AblationResult:
    """Section 4.2.4: CoLT-FA's conservative 8-entry FA TLB vs 16."""
    variants = {
        "fa_8_entries": (
            CoLTDesign.COLT_FA,
            make_mmu_config(CoLTDesign.COLT_FA, superpage_entries=8),
        ),
        "fa_16_entries": (
            CoLTDesign.COLT_FA,
            make_mmu_config(CoLTDesign.COLT_FA, superpage_entries=16),
        ),
    }
    return _sweep("FA TLB size (Section 4.2.4)", variants, scale, runner)
