"""Table 1: baseline L1/L2 TLB MPMI with THS enabled and disabled.

The paper's Table 1 is measured with on-chip performance counters on the
real, loaded machine; we run the same configurations (THS on vs off,
normal compaction, no memhog) on the characterisation environment and
report the baseline TLB hierarchy's misses per million instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.sim.runner import ExperimentRunner
from repro.workloads.benchmarks import TABLE1_PAPER_MPMI, get_benchmark
from repro.experiments.environments import characterization_config
from repro.experiments.scale import ExperimentScale


@dataclass(frozen=True)
class Table1Row:
    """One benchmark's measured-vs-paper MPMI."""

    benchmark: str
    suite: str
    l1_mpmi_ths_on: float
    l2_mpmi_ths_on: float
    l1_mpmi_ths_off: float
    l2_mpmi_ths_off: float
    paper: Tuple[int, int, int, int]


@dataclass(frozen=True)
class Table1Result:
    rows: Tuple[Table1Row, ...]

    def format_table(self) -> str:
        header = (
            f"{'Benchmark':11s} {'Suite':8s} "
            f"{'L1on':>8s} {'(paper)':>8s} {'L2on':>8s} {'(paper)':>8s} "
            f"{'L1off':>8s} {'(paper)':>8s} {'L2off':>8s} {'(paper)':>8s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            p = row.paper
            lines.append(
                f"{row.benchmark:11s} {row.suite:8s} "
                f"{row.l1_mpmi_ths_on:8.0f} {p[0]:8d} "
                f"{row.l2_mpmi_ths_on:8.0f} {p[1]:8d} "
                f"{row.l1_mpmi_ths_off:8.0f} {p[2]:8d} "
                f"{row.l2_mpmi_ths_off:8.0f} {p[3]:8d}"
            )
        return "\n".join(lines)


def run_table1(
    scale: ExperimentScale, runner: ExperimentRunner = None
) -> Table1Result:
    """Regenerate Table 1 at the given scale."""
    runner = runner or ExperimentRunner()
    runner.run_batch([
        characterization_config(benchmark, scale, ths_enabled=ths)
        for benchmark in scale.benchmarks
        for ths in (True, False)
    ])
    rows: List[Table1Row] = []
    for benchmark in scale.benchmarks:
        on = runner.run(characterization_config(benchmark, scale, ths_enabled=True))
        off = runner.run(characterization_config(benchmark, scale, ths_enabled=False))
        rows.append(
            Table1Row(
                benchmark=benchmark,
                suite=get_benchmark(benchmark).suite,
                l1_mpmi_ths_on=on.l1_mpmi,
                l2_mpmi_ths_on=on.l2_mpmi,
                l1_mpmi_ths_off=off.l1_mpmi,
                l2_mpmi_ths_off=off.l2_mpmi,
                paper=TABLE1_PAPER_MPMI[benchmark],
            )
        )
    return Table1Result(tuple(rows))
