"""Experiment scale presets.

The paper's experiments ran 1-billion-instruction SimPoints on a 3GB
machine; a pure-Python reproduction scales that down. All scale knobs
live here so every harness and benchmark derives from one place:

* ``QUICK``  -- seconds per experiment; CI and pytest-benchmark default.
* ``DEFAULT`` -- the scale the committed EXPERIMENTS.md numbers use.
* ``FULL``   -- closest to the paper (longer traces, bigger memory).

Select with the ``REPRO_SCALE`` environment variable (``quick`` /
``default`` / ``full``) or pass an :class:`ExperimentScale` explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Tuple

from repro.workloads.benchmarks import TABLE1_ORDER


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs every experiment derives its configuration from.

    Attributes:
        accesses: trace length per run.
        num_frames: simulated physical memory, in 4KB frames.
        footprint_scale: multiplier on benchmark region sizes.
        benchmarks: which benchmarks to run.
        seed: root seed (experiments are deterministic given it).
    """

    accesses: int = 60_000
    num_frames: int = 1 << 16
    footprint_scale: float = 1.0
    benchmarks: Tuple[str, ...] = TABLE1_ORDER
    seed: int = 42

    def with_updates(self, **kwargs) -> "ExperimentScale":
        return replace(self, **kwargs)


QUICK = ExperimentScale(
    accesses=30_000,
    num_frames=1 << 15,
    footprint_scale=0.3,
    benchmarks=("mcf", "astar", "xalancbmk", "bzip2", "milc"),
)

DEFAULT = ExperimentScale()

FULL = ExperimentScale(accesses=250_000)

_PRESETS = {"quick": QUICK, "default": DEFAULT, "full": FULL}


def scale_from_env(default: ExperimentScale = DEFAULT) -> ExperimentScale:
    """Resolve the preset named by ``REPRO_SCALE`` (default otherwise)."""
    name = os.environ.get("REPRO_SCALE", "").lower()
    if not name:
        return default
    if name not in _PRESETS:
        raise ValueError(
            f"REPRO_SCALE={name!r}; expected one of {sorted(_PRESETS)}"
        )
    return _PRESETS[name]
