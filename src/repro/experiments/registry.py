"""Experiment registry: every table and figure, runnable by id."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ExperimentError
from repro.obs.trace import span
from repro.sim.runner import ExperimentRunner
from repro.experiments.ablations import (
    run_fasize_ablation,
    run_futurework_ablation,
    run_l2fill_ablation,
    run_window_ablation,
)
from repro.experiments.contiguity_figs import (
    run_contiguity_cdfs,
    run_memhog_figure,
)
from repro.experiments.scale import ExperimentScale
from repro.experiments.table1 import run_table1
from repro.experiments.tlb_figs import (
    run_fig18,
    run_fig19,
    run_fig20,
    run_fig21,
)


@dataclass(frozen=True)
class Experiment:
    """One registered paper artefact."""

    id: str
    title: str
    runner: Callable

    def run(
        self, scale: ExperimentScale, runner: Optional[ExperimentRunner] = None
    ):
        with span(
            f"experiment.{self.id}", cat="experiment", accesses=scale.accesses
        ):
            return self.runner(scale, runner)


EXPERIMENTS: Dict[str, Experiment] = {
    exp.id: exp
    for exp in (
        Experiment(
            "table1",
            "Table 1: baseline L1/L2 TLB MPMI, THS on vs off",
            lambda scale, runner=None: run_table1(scale, runner),
        ),
        Experiment(
            "fig7_9",
            "Figures 7-9: contiguity CDFs, THS on + normal compaction",
            lambda scale, runner=None: run_contiguity_cdfs(
                "fig7_9", scale, runner
            ),
        ),
        Experiment(
            "fig10_12",
            "Figures 10-12: contiguity CDFs, THS off + normal compaction",
            lambda scale, runner=None: run_contiguity_cdfs(
                "fig10_12", scale, runner
            ),
        ),
        Experiment(
            "fig13_15",
            "Figures 13-15: contiguity CDFs, THS off + low compaction",
            lambda scale, runner=None: run_contiguity_cdfs(
                "fig13_15", scale, runner
            ),
        ),
        Experiment(
            "fig16",
            "Figure 16: average contiguity vs memhog load, THS on",
            lambda scale, runner=None: run_memhog_figure(
                "fig16", scale, runner
            ),
        ),
        Experiment(
            "fig17",
            "Figure 17: average contiguity vs memhog load, THS off",
            lambda scale, runner=None: run_memhog_figure(
                "fig17", scale, runner
            ),
        ),
        Experiment(
            "fig18",
            "Figure 18: % baseline TLB misses eliminated by CoLT designs",
            lambda scale, runner=None: run_fig18(scale, runner),
        ),
        Experiment(
            "fig19",
            "Figure 19: CoLT-SA index left-shift sweep (1, 2, 3 bits)",
            lambda scale, runner=None: run_fig19(scale, runner),
        ),
        Experiment(
            "fig20",
            "Figure 20: L2 associativity study (4/8-way, with/without CoLT)",
            lambda scale, runner=None: run_fig20(scale, runner),
        ),
        Experiment(
            "fig21",
            "Figure 21: runtime improvement (perfect / SA / FA / All)",
            lambda scale, runner=None: run_fig21(scale, runner),
        ),
        Experiment(
            "abl_l2fill",
            "Ablation (Section 7.1.3): CoLT-FA/All L2 echo fill",
            lambda scale, runner=None: run_l2fill_ablation(scale, runner),
        ),
        Experiment(
            "abl_window",
            "Ablation (Section 4.1.4): coalescing window 2/4/8",
            lambda scale, runner=None: run_window_ablation(scale, runner),
        ),
        Experiment(
            "abl_futurework",
            "Ablation (Section 4.1.5): graceful uncoalescing + "
            "coalescing-aware replacement",
            lambda scale, runner=None: run_futurework_ablation(scale, runner),
        ),
        Experiment(
            "abl_fasize",
            "Ablation (Section 4.2.4): CoLT-FA TLB 8 vs 16 entries",
            lambda scale, runner=None: run_fasize_ablation(scale, runner),
        ),
    )
}


def experiment_ids() -> Tuple[str, ...]:
    """Every registered experiment id, in paper-artefact order."""
    return tuple(EXPERIMENTS)


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None


def resolve_experiments(ids: Sequence[str]) -> Tuple[Experiment, ...]:
    """Resolve experiment ids (or the single id ``all``) to entries.

    Unknown ids raise :class:`ExperimentError` before anything runs, so
    a typo in the last id of a long command fails fast instead of after
    an hour of simulation.
    """
    if list(ids) == ["all"]:
        return tuple(EXPERIMENTS.values())
    return tuple(get_experiment(experiment_id) for experiment_id in ids)


def run_experiments(
    ids: Sequence[str],
    scale,
    runner: Optional[ExperimentRunner] = None,
) -> List[Tuple[Experiment, object]]:
    """Run experiments in order, sharing one runner (and its caches)."""
    experiments = resolve_experiments(ids)
    runner = runner or ExperimentRunner()
    return [
        (experiment, experiment.run(scale, runner))
        for experiment in experiments
    ]
