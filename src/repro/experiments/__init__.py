"""Experiment harnesses regenerating every table and figure of the paper."""

from repro.experiments.registry import EXPERIMENTS, Experiment, get_experiment
from repro.experiments.scale import (
    DEFAULT,
    FULL,
    QUICK,
    ExperimentScale,
    scale_from_env,
)
from repro.experiments.environments import (
    characterization_config,
    simulation_config,
)

__all__ = [
    "DEFAULT",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentScale",
    "FULL",
    "QUICK",
    "characterization_config",
    "get_experiment",
    "scale_from_env",
    "simulation_config",
]
