"""Command-line entry point: ``python -m repro.experiments <id> [...]``.

Runs one or more experiments (or ``all``) at the scale selected by
``REPRO_SCALE`` (quick / default / full) and prints each one's table.

The elapsed-time stamps printed here are display-only terminal feedback
(monotonic ``perf_counter``); they are never serialized into experiment
results, which stay a pure function of configuration and seed. This
file is on the lint's wall-clock allow-list for exactly that scope.
"""

from __future__ import annotations

import sys
import time

from repro.sim.runner import ExperimentRunner
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.scale import scale_from_env


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.experiments <experiment-id>... | all")
        print("\nAvailable experiments:")
        for experiment in EXPERIMENTS.values():
            print(f"  {experiment.id:10s} {experiment.title}")
        print("\nScale: set REPRO_SCALE=quick|default|full")
        return 0

    ids = list(EXPERIMENTS) if argv == ["all"] else argv
    scale = scale_from_env()
    runner = ExperimentRunner()
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        started = time.perf_counter()
        result = experiment.run(scale, runner)
        elapsed = time.perf_counter() - started
        print(f"\n=== {experiment.title} ({elapsed:.1f}s) ===")
        print(result.format_table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
