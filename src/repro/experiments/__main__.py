"""Command-line entry point: ``python -m repro.experiments <id> [...]``.

Runs one or more experiments (or ``all``) at the scale selected by
``REPRO_SCALE`` (quick / default / full) and prints each one's table.

Simulations fan out across ``--jobs`` worker processes (default: all
CPUs) -- one OS capture per scenario, one TLB replay per design -- and
results persist in an on-disk store (``.colt-cache/`` or
``$COLT_RESULT_CACHE``; see ``repro.sim.store``) so repeated
invocations only pay for configurations they have not seen.

Observability (``repro.obs``) is wired here:

* ``--trace [FILE]`` records a Chrome/Perfetto trace of the run
  (spans for boot/capture/replay/store, sampled TLB events) plus a
  ``<FILE stem>.metrics.json`` snapshot;
* ``--profile`` collects the metrics snapshot without event tracing;
* ``--report [FILE]`` prints (or writes) the human run report;
* ``-q`` / ``-v`` control the library log level.

Resilience (``repro.sim.resilience``) is configurable per run:
``--retries`` / ``--task-timeout`` override the ``COLT_RETRIES`` /
``COLT_TASK_TIMEOUT`` environment defaults, and a ``COLT_FAULTS`` plan
(see ``repro.sim.faults``) injects deterministic worker crashes, task
exceptions, delays and store corruption for chaos testing. When the
resilience layer absorbed anything, a summary line reports it.

The elapsed-time stamps printed here are display-only terminal feedback
(monotonic ``perf_counter``); they are never serialized into experiment
results, which stay a pure function of configuration and seed. This
file is on the lint's wall-clock allow-list for exactly that scope.
"""

from __future__ import annotations

import argparse
import os
import time
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.export import write_chrome_trace, write_metrics_json
from repro.obs.logging import configure_logging
from repro.obs.registry import get_registry
from repro.obs.report import RunReport
from repro.obs.trace import PROFILE_ENV, TRACE_ENV, reset_tracing
from repro.sim.resilience import RetryPolicy
from repro.sim.runner import ExperimentRunner
from repro.sim.store import ResultStore
from repro.experiments.registry import EXPERIMENTS, resolve_experiments
from repro.experiments.scale import scale_from_env


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
        epilog="Scale: set REPRO_SCALE=quick|default|full",
    )
    parser.add_argument(
        "ids", nargs="*", metavar="experiment-id",
        help="experiment ids to run, or 'all'",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for capture/replay fan-out "
             "(default: os.cpu_count())",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result store",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-store directory (default: $COLT_RESULT_CACHE "
             "or .colt-cache)",
    )
    parser.add_argument(
        "--clear-cache", action="store_true",
        help="clear the result store before running",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max resubmissions per failed capture/replay task "
             "(default: $COLT_RETRIES or 2)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task deadline for pooled execution; 0 disables "
             "(default: $COLT_TASK_TIMEOUT or none)",
    )
    parser.add_argument(
        "--trace", nargs="?", const="colt-trace.json", default=None,
        metavar="FILE",
        help="record a Chrome/Perfetto trace to FILE (default "
             "colt-trace.json) plus a FILE-stem .metrics.json snapshot",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="collect the metrics snapshot without event tracing",
    )
    parser.add_argument(
        "--report", nargs="?", const="-", default=None, metavar="FILE",
        help="print the run report ('-' or no value: stdout; else "
             "write to FILE); implies --profile",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress summary lines; library logs at ERROR only",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="library log level: -v INFO, -vv DEBUG",
    )
    return parser


def _list_experiments() -> None:
    print("usage: python -m repro.experiments <experiment-id>... | all")
    print("\nAvailable experiments:")
    for experiment in EXPERIMENTS.values():
        print(f"  {experiment.id:10s} {experiment.title}")
    print("\nScale: set REPRO_SCALE=quick|default|full")


def _enable_obs(args) -> bool:
    """Export the obs env vars (workers inherit them); True when active.

    The variables must be set before the runner -- and therefore before
    its store and any pool worker -- is created, because components
    resolve the tracer once at construction.
    """
    active = False
    if args.trace is not None:
        os.environ[TRACE_ENV] = "1"
        active = True
    if args.profile or args.report is not None:
        os.environ[PROFILE_ENV] = "1"
        active = True
    if active:
        reset_tracing()
    return active


def _emit_obs(args, runner: ExperimentRunner) -> None:
    """Write/print the requested trace, metrics and report artifacts."""
    events = runner.trace_events()
    snapshot = get_registry().snapshot()
    if args.trace is not None:
        trace_path = Path(args.trace)
        write_chrome_trace(
            trace_path, events,
            metadata={"tool": "repro.experiments", "ids": list(args.ids)},
        )
        metrics_path = trace_path.with_suffix(".metrics.json")
        write_metrics_json(metrics_path, snapshot)
        if not args.quiet:
            print(
                f"trace: {len(events)} events -> {trace_path} "
                f"(metrics: {metrics_path})"
            )
    if args.report is not None:
        report = RunReport.build(
            events, snapshot, dropped_events=runner.dropped_events()
        )
        if args.report == "-":
            print()
            print(report.render(), end="")
        else:
            Path(args.report).write_text(report.render(), encoding="utf-8")
            if not args.quiet:
                print(f"report -> {args.report}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if not args.ids:
        _list_experiments()
        return 0

    configure_logging(-1 if args.quiet else args.verbose)
    obs_enabled = _enable_obs(args)

    experiments = resolve_experiments(args.ids)
    scale = scale_from_env()
    store = None
    if not args.no_cache:
        if args.cache_dir is not None:
            store = ResultStore(args.cache_dir)
        else:
            store = ResultStore.from_env()
    if args.clear_cache and store is not None:
        removed = store.clear()
        print(f"cleared {removed} cached results from {store.root}")

    jobs = args.jobs if args.jobs is not None else os.cpu_count() or 1
    policy = RetryPolicy.from_env()
    if args.retries is not None:
        policy = replace(policy, max_retries=max(0, args.retries))
    if args.task_timeout is not None:
        policy = replace(
            policy,
            timeout_s=args.task_timeout if args.task_timeout > 0 else None,
        )
    runner = ExperimentRunner(jobs=jobs, store=store, policy=policy)
    for experiment in experiments:
        started = time.perf_counter()
        result = experiment.run(scale, runner)
        elapsed = time.perf_counter() - started
        if not args.quiet:
            print(f"\n=== {experiment.title} ({elapsed:.1f}s) ===")
            print(result.format_table())

    summary = runner.store_summary()
    if summary is not None and not args.quiet:
        print(
            f"\nstore: {summary['hits']:.0f} hits, "
            f"{summary['misses']:.0f} misses, "
            f"{summary['evictions']:.0f} evictions, "
            f"{summary['saves']:.0f} saves "
            f"({summary['hit_ratio']:.0%} hit ratio)"
        )
    resilience = runner.resilience_summary()
    if resilience is not None and not args.quiet:
        parts = [
            f"{value} {name}" for name, value in resilience.items() if value
        ]
        print("resilience: " + ", ".join(parts))
    if obs_enabled:
        _emit_obs(args, runner)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
