"""Command-line entry point: ``python -m repro.experiments <id> [...]``.

Runs one or more experiments (or ``all``) at the scale selected by
``REPRO_SCALE`` (quick / default / full) and prints each one's table.

Simulations fan out across ``--jobs`` worker processes (default: all
CPUs) -- one OS capture per scenario, one TLB replay per design -- and
results persist in an on-disk store (``.colt-cache/`` or
``$COLT_RESULT_CACHE``; see ``repro.sim.store``) so repeated
invocations only pay for configurations they have not seen.
``--engine vector`` replays through the epoch-batched vectorized
engine (``repro.sim.engine``); results are bit-identical to the
default scalar oracle, just faster.

Observability (``repro.obs``) is wired here:

* ``--trace [FILE]`` records a Chrome/Perfetto trace of the run
  (spans for boot/capture/replay/store, sampled TLB events) plus a
  ``<FILE stem>.metrics.json`` snapshot;
* ``--profile`` collects the metrics snapshot without event tracing;
* ``--report [FILE]`` prints (or writes) the human run report;
* ``-q`` / ``-v`` control the library log level.

Resilience (``repro.sim.resilience``) is configurable per run:
``--retries`` / ``--task-timeout`` override the ``COLT_RETRIES`` /
``COLT_TASK_TIMEOUT`` environment defaults, and a ``COLT_FAULTS`` plan
(see ``repro.sim.faults``) injects deterministic worker crashes, task
exceptions, delays and store corruption for chaos testing. When the
resilience layer absorbed anything, a summary line reports it.

Campaigns (``repro.sim.campaign``): ``--campaign`` runs the requested
experiments under a crash-safe write-ahead journal
(``<cache>/campaign/manifest.json``) with per-experiment table dumps;
``--resume`` continues an interrupted campaign, skipping journaled
``done`` experiments bit-identically. SIGINT/SIGTERM are handled
two-stage in both modes: the first signal winds the run down gracefully
(checkpoint, journal, flush obs artifacts) and exits with status 75;
a second signal hard-aborts. ``--stall-timeout`` / ``--mem-budget`` /
``--dump-dir`` arm the stall/memory watchdog
(``repro.sim.watchdog``).

The elapsed-time stamps printed here are display-only terminal feedback
(monotonic ``perf_counter``); they are never serialized into experiment
results, which stay a pure function of configuration and seed. This
file is on the lint's wall-clock allow-list for exactly that scope.
"""

from __future__ import annotations

import argparse
import os
import time
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from repro.common.errors import (
    CampaignError,
    MemoryBudgetError,
    ShutdownRequested,
)
from repro.obs.export import write_chrome_trace, write_metrics_json
from repro.obs.history import (
    build_record,
    append_record,
    history_enabled,
    history_path,
)
from repro.obs.live import get_progress
from repro.obs.logging import configure_logging
from repro.obs.registry import get_registry
from repro.obs.report import RunReport
from repro.obs.serve import TelemetryServer, telemetry_port_from_env
from repro.obs.trace import PROFILE_ENV, TRACE_ENV, reset_tracing
from repro.sim.campaign import (
    SHUTDOWN_EXIT_CODE,
    CampaignManifest,
    CampaignRunner,
    ShutdownCoordinator,
    campaign_fingerprint,
)
from repro.sim.dist import workers_from_env
from repro.sim.dist.coordinator import DistributedRunner
from repro.sim.engine import ENGINE_ENV, ENGINES, resolve_engine
from repro.sim.faults import FaultPlan
from repro.sim.resilience import RetryPolicy
from repro.sim.runner import ExperimentRunner
from repro.sim.store import ResultStore
from repro.sim.watchdog import Watchdog
from repro.experiments.registry import EXPERIMENTS, resolve_experiments
from repro.experiments.scale import scale_from_env


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
        epilog="Scale: set REPRO_SCALE=quick|default|full",
    )
    parser.add_argument(
        "ids", nargs="*", metavar="experiment-id",
        help="experiment ids to run, or 'all'",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for capture/replay fan-out "
             "(default: os.cpu_count())",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard scenario groups across N worker subprocesses "
             "(the distributed coordinator/worker layer; each worker "
             "gets its own store shard and write-ahead journal; "
             "default: $COLT_WORKERS or off)",
    )
    parser.add_argument(
        "--engine", choices=list(ENGINES), default=None,
        help="replay engine: the scalar oracle or the epoch-batched "
             "vectorized engine (bit-identical results; default: "
             f"${ENGINE_ENV} or scalar)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result store",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-store directory (default: $COLT_RESULT_CACHE "
             "or .colt-cache)",
    )
    parser.add_argument(
        "--clear-cache", action="store_true",
        help="clear the result store before running",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max resubmissions per failed capture/replay task "
             "(default: $COLT_RETRIES or 2)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task deadline for pooled execution; 0 disables "
             "(default: $COLT_TASK_TIMEOUT or none)",
    )
    parser.add_argument(
        "--campaign", action="store_true",
        help="run under the resumable campaign journal "
             "(<cache>/campaign/manifest.json) with per-experiment "
             "table dumps; a graceful interruption exits with status "
             f"{SHUTDOWN_EXIT_CODE} and --resume continues it",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted --campaign run from its journal, "
             "skipping experiments already journaled as done "
             "(implies --campaign)",
    )
    parser.add_argument(
        "--stall-timeout", type=float, default=None, metavar="SECONDS",
        help="watchdog: seconds without any task completion before "
             "all-thread stacks are dumped and the stuck task is "
             "requeued (default: $COLT_STALL_TIMEOUT or off)",
    )
    parser.add_argument(
        "--mem-budget", type=float, default=None, metavar="MIB",
        help="watchdog: RSS budget in MiB for this process tree; over "
             "budget the runner degrades (shrink pool -> no prefetch "
             "-> clean abort) (default: $COLT_MEM_BUDGET or off)",
    )
    parser.add_argument(
        "--dump-dir", default=None, metavar="DIR",
        help="stack-dump directory for the watchdog and per-task "
             "deadline dumps (default: $COLT_DUMP_DIR or "
             ".colt-cache/dumps)",
    )
    parser.add_argument(
        "--telemetry-port", type=int, default=None, metavar="PORT",
        help="serve live telemetry over HTTP on 127.0.0.1:PORT while "
             "the run is in flight (/metrics Prometheus text, "
             "/progress JSON, /healthz); 0 picks an ephemeral port; "
             "implies --profile (default: $COLT_TELEMETRY_PORT or off)",
    )
    parser.add_argument(
        "--trace", nargs="?", const="colt-trace.json", default=None,
        metavar="FILE",
        help="record a Chrome/Perfetto trace to FILE (default "
             "colt-trace.json) plus a FILE-stem .metrics.json snapshot",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="collect the metrics snapshot without event tracing",
    )
    parser.add_argument(
        "--report", nargs="?", const="-", default=None, metavar="FILE",
        help="print the run report ('-' or no value: stdout; else "
             "write to FILE); implies --profile",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress summary lines; library logs at ERROR only",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="library log level: -v INFO, -vv DEBUG",
    )
    return parser


def _list_experiments() -> None:
    print("usage: python -m repro.experiments <experiment-id>... | all")
    print("\nAvailable experiments:")
    for experiment in EXPERIMENTS.values():
        print(f"  {experiment.id:10s} {experiment.title}")
    print("\nScale: set REPRO_SCALE=quick|default|full")


def _enable_obs(args) -> bool:
    """Export the obs env vars (workers inherit them); True when active.

    The variables must be set before the runner -- and therefore before
    its store and any pool worker -- is created, because components
    resolve the tracer once at construction.
    """
    active = False
    if args.trace is not None:
        os.environ[TRACE_ENV] = "1"
        active = True
    if args.profile or args.report is not None or \
            args.telemetry_port is not None:
        # Telemetry implies profiling: /metrics and the history record
        # need populated counters, and profiling is the CI-proven
        # bit-identity-safe mode.
        os.environ[PROFILE_ENV] = "1"
        active = True
    if active:
        reset_tracing()
    return active


def _emit_obs(args, runner: ExperimentRunner) -> None:
    """Write/print the requested trace, metrics and report artifacts."""
    events = runner.trace_events()
    snapshot = get_registry().snapshot()
    if args.trace is not None:
        trace_path = Path(args.trace)
        write_chrome_trace(
            trace_path, events,
            metadata={"tool": "repro.experiments", "ids": list(args.ids)},
        )
        metrics_path = trace_path.with_suffix(".metrics.json")
        write_metrics_json(metrics_path, snapshot)
        if not args.quiet:
            print(
                f"trace: {len(events)} events -> {trace_path} "
                f"(metrics: {metrics_path})"
            )
    if args.report is not None:
        report = RunReport.build(
            events, snapshot, dropped_events=runner.dropped_events()
        )
        if args.report == "-":
            print()
            print(report.render(), end="")
        else:
            Path(args.report).write_text(report.render(), encoding="utf-8")
            if not args.quiet:
                print(f"report -> {args.report}")


def _print_summaries(args, runner: ExperimentRunner) -> None:
    summary = runner.store_summary()
    if summary is not None and not args.quiet:
        print(
            f"\nstore: {summary['hits']:.0f} hits, "
            f"{summary['misses']:.0f} misses, "
            f"{summary['evictions']:.0f} evictions, "
            f"{summary['saves']:.0f} saves "
            f"({summary['hit_ratio']:.0%} hit ratio)"
        )
    resilience = runner.resilience_summary()
    if resilience is not None and not args.quiet:
        parts = [
            f"{value} {name}" for name, value in resilience.items() if value
        ]
        print("resilience: " + ", ".join(parts))


def _run_plain(args, experiments, scale, runner: ExperimentRunner,
               phase_wall=None) -> int:
    for experiment in experiments:
        started = time.perf_counter()
        result = experiment.run(scale, runner)
        elapsed = time.perf_counter() - started
        if phase_wall is not None:
            phase_wall[experiment.id] = elapsed
        if not args.quiet:
            print(f"\n=== {experiment.title} ({elapsed:.1f}s) ===")
            print(result.format_table())
    return 0


def _run_campaign(
    args, experiments, scale,
    runner: ExperimentRunner,
    store: ResultStore,
    shutdown: ShutdownCoordinator,
    watchdog: Optional[Watchdog],
    faults: Optional[FaultPlan],
    phase_wall=None,
) -> int:
    ids = [experiment.id for experiment in experiments]
    fingerprint = campaign_fingerprint(scale, ids)
    campaign_dir = Path(store.root) / "campaign"
    manifest_path = campaign_dir / "manifest.json"
    if args.resume:
        manifest = CampaignManifest.load(manifest_path)
        if manifest.fingerprint != fingerprint:
            raise CampaignError(
                f"journal {manifest_path} was written for a different "
                "scale preset, experiment list, or constants build; "
                "refusing to mix results -- delete it (or rerun the "
                "original command) to proceed"
            )
        if not args.quiet:
            counts = manifest.counts()
            print(
                f"resuming campaign: {counts['done']} done, "
                f"{len(manifest.pending_ids())} to run "
                f"(journal {manifest_path})"
            )
    else:
        manifest = CampaignManifest.fresh(manifest_path, ids, fingerprint)
        if not args.quiet:
            print(
                f"campaign of {len(ids)} experiment(s); journal "
                f"{manifest_path}"
            )
    marks = {"last": time.perf_counter()}

    def _note_experiment(exp_id: str) -> None:
        now = time.perf_counter()
        if phase_wall is not None:
            phase_wall[exp_id] = now - marks["last"]
        marks["last"] = now

    campaign = CampaignRunner(
        manifest,
        runner,
        scale,
        tables_dir=campaign_dir / "tables",
        shutdown=shutdown,
        watchdog=watchdog,
        faults=faults,
        on_experiment=_note_experiment,
    )
    status = campaign.run()
    if not args.quiet:
        for experiment in experiments:
            table = status.tables.get(experiment.id)
            if table is None:
                continue
            skipped = " [journaled]" if experiment.id in status.skipped \
                else ""
            print(f"\n=== {experiment.title}{skipped} ===")
            print(table, end="" if table.endswith("\n") else "\n")
        counts = manifest.counts()
        print(
            f"\ncampaign: {len(status.completed)} run, "
            f"{len(status.skipped)} skipped (journaled), "
            f"{len(status.failed)} failed; journal now "
            f"{counts['done']}/{len(ids)} done"
        )
    if status.interrupted is not None:
        print(
            f"interrupted by {status.interrupted}; journal is "
            f"consistent -- resume with: python -m repro.experiments "
            f"{' '.join(args.ids)} --campaign --resume"
        )
        return SHUTDOWN_EXIT_CODE
    return 0 if not status.failed else 1


def _append_history(args, experiments, runner, store, scale, engine,
                    jobs, code, phase_wall, total_wall) -> None:
    """Append the run's ``colt-history-v1`` record (best-effort).

    Every store-backed run leaves one record -- including interrupted
    (exit 75) and failed ones, so the trend tables show crashes too.
    """
    if store is None or not history_enabled():
        return
    ids = [experiment.id for experiment in experiments]
    if code == 0:
        status = "ok"
    elif code == SHUTDOWN_EXIT_CODE:
        status = "interrupted"
    else:
        status = "failed"
    snapshot = get_registry().snapshot()
    counters = {
        name: snapshot.counter_total(name)
        for name, entry in snapshot.instruments.items()
        if entry["kind"] == "counter"
    }
    wall = dict(phase_wall)
    wall["total"] = total_wall
    record = build_record(
        ts=time.time(),
        status=status,
        figure="+".join(ids),
        scale=os.environ.get("REPRO_SCALE", "").lower() or "default",
        engine=engine,
        fingerprint=campaign_fingerprint(scale, ids),
        wall=wall,
        counters=counters,
        store=runner.store_summary(),
        campaign=bool(args.campaign),
        telemetry=args.telemetry_port is not None,
        jobs=jobs,
    )
    try:
        path = append_record(history_path(store.root), record)
    except OSError as exc:
        print(f"history: could not append run record: {exc}")
        return
    if not args.quiet:
        print(f"history: {status} record appended to {path}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if not args.ids:
        _list_experiments()
        return 0
    if args.resume:
        args.campaign = True
    if args.telemetry_port is None:
        args.telemetry_port = telemetry_port_from_env()

    configure_logging(-1 if args.quiet else args.verbose)
    engine = resolve_engine(args.engine)
    # Exported so any machinery that re-resolves from the environment
    # (tools, nested runners) agrees with the flag; the runner itself
    # threads the resolved name into its replay tasks explicitly.
    os.environ[ENGINE_ENV] = engine
    obs_enabled = _enable_obs(args)
    if args.dump_dir is not None:
        # Exported so pool workers (deadline dumps) agree on the dir.
        os.environ["COLT_DUMP_DIR"] = args.dump_dir

    experiments = resolve_experiments(args.ids)
    scale = scale_from_env()
    store = None
    if not args.no_cache:
        if args.cache_dir is not None:
            store = ResultStore(args.cache_dir)
        else:
            store = ResultStore.from_env()
    if args.campaign and store is None:
        print("--campaign needs the result store; drop --no-cache")
        return 2
    if args.clear_cache and store is not None:
        removed = store.clear()
        print(f"cleared {removed} cached results from {store.root}")

    jobs = args.jobs if args.jobs is not None else os.cpu_count() or 1
    policy = RetryPolicy.from_env()
    if args.retries is not None:
        policy = replace(policy, max_retries=max(0, args.retries))
    if args.task_timeout is not None:
        policy = replace(
            policy,
            timeout_s=args.task_timeout if args.task_timeout > 0 else None,
        )
    faults = FaultPlan.from_env()
    shutdown = ShutdownCoordinator().install()
    watchdog = Watchdog.from_env(
        stall_timeout_s=args.stall_timeout,
        mem_budget_mib=args.mem_budget,
        dump_dir=args.dump_dir,
    )
    if watchdog is not None:
        watchdog.start()
    workers = args.workers if args.workers is not None else workers_from_env()
    if workers is not None and workers > 1:
        runner = DistributedRunner(
            workers=workers, jobs=jobs, store=store, policy=policy,
            faults=faults, shutdown=shutdown, watchdog=watchdog,
            engine=engine,
        )
    else:
        runner = ExperimentRunner(
            jobs=jobs, store=store, policy=policy, faults=faults,
            shutdown=shutdown, watchdog=watchdog, engine=engine,
        )

    get_progress().update(
        phase="starting",
        ids=[experiment.id for experiment in experiments],
        engine=engine,
        scale=os.environ.get("REPRO_SCALE", "").lower() or "default",
        jobs=jobs,
        campaign=bool(args.campaign),
    )
    telemetry = None
    if args.telemetry_port is not None:
        telemetry = TelemetryServer(args.telemetry_port)
        bound_port = telemetry.start()
        # Always printed (not gated on --quiet): with port 0 this line
        # is the only way callers learn the ephemeral port.
        print(
            f"telemetry: http://127.0.0.1:{bound_port}/ "
            "(/metrics /progress /healthz)"
        )

    code = 1
    phase_wall = {}
    run_started = time.perf_counter()
    try:
        try:
            if args.campaign:
                code = _run_campaign(
                    args, experiments, scale, runner, store,
                    shutdown, watchdog, faults, phase_wall=phase_wall,
                )
            else:
                code = _run_plain(
                    args, experiments, scale, runner, phase_wall=phase_wall
                )
        except ShutdownRequested as exc:
            # First signal outside the campaign loop: completed results
            # are already checkpointed in the store; finish artifacts
            # and exit with the resumable status.
            print(
                f"interrupted by {exc.signal_name}; completed results "
                "are checkpointed in the store"
            )
            code = SHUTDOWN_EXIT_CODE
        except CampaignError as exc:
            print(f"campaign error: {exc}")
            code = 2
        except MemoryBudgetError as exc:
            print(f"memory budget exhausted: {exc}")
            code = 1
        finally:
            if isinstance(runner, DistributedRunner):
                runner.close()
            if watchdog is not None:
                watchdog.stop()
            shutdown.restore()

        get_progress().update(phase="finished", exit_code=code)
        _print_summaries(args, runner)
        if obs_enabled:
            _emit_obs(args, runner)
        _append_history(
            args, experiments, runner, store, scale, engine, jobs,
            code, phase_wall, time.perf_counter() - run_started,
        )
    finally:
        if telemetry is not None:
            telemetry.stop()
    return code


if __name__ == "__main__":
    raise SystemExit(main())
