"""Command-line entry point: ``python -m repro.experiments <id> [...]``.

Runs one or more experiments (or ``all``) at the scale selected by
``REPRO_SCALE`` (quick / default / full) and prints each one's table.

Simulations fan out across ``--jobs`` worker processes (default: all
CPUs) -- one OS capture per scenario, one TLB replay per design -- and
results persist in an on-disk store (``.colt-cache/`` or
``$COLT_RESULT_CACHE``; see ``repro.sim.store``) so repeated
invocations only pay for configurations they have not seen.

The elapsed-time stamps printed here are display-only terminal feedback
(monotonic ``perf_counter``); they are never serialized into experiment
results, which stay a pure function of configuration and seed. This
file is on the lint's wall-clock allow-list for exactly that scope.
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Optional, Sequence

from repro.sim.runner import ExperimentRunner
from repro.sim.store import ResultStore
from repro.experiments.registry import EXPERIMENTS, resolve_experiments
from repro.experiments.scale import scale_from_env


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
        epilog="Scale: set REPRO_SCALE=quick|default|full",
    )
    parser.add_argument(
        "ids", nargs="*", metavar="experiment-id",
        help="experiment ids to run, or 'all'",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for capture/replay fan-out "
             "(default: os.cpu_count())",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result store",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-store directory (default: $COLT_RESULT_CACHE "
             "or .colt-cache)",
    )
    parser.add_argument(
        "--clear-cache", action="store_true",
        help="clear the result store before running",
    )
    return parser


def _list_experiments() -> None:
    print("usage: python -m repro.experiments <experiment-id>... | all")
    print("\nAvailable experiments:")
    for experiment in EXPERIMENTS.values():
        print(f"  {experiment.id:10s} {experiment.title}")
    print("\nScale: set REPRO_SCALE=quick|default|full")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if not args.ids:
        _list_experiments()
        return 0

    experiments = resolve_experiments(args.ids)
    scale = scale_from_env()
    store = None
    if not args.no_cache:
        if args.cache_dir is not None:
            store = ResultStore(args.cache_dir)
        else:
            store = ResultStore.from_env()
    if args.clear_cache and store is not None:
        removed = store.clear()
        print(f"cleared {removed} cached results from {store.root}")

    jobs = args.jobs if args.jobs is not None else os.cpu_count() or 1
    runner = ExperimentRunner(jobs=jobs, store=store)
    for experiment in experiments:
        started = time.perf_counter()
        result = experiment.run(scale, runner)
        elapsed = time.perf_counter() - started
        print(f"\n=== {experiment.title} ({elapsed:.1f}s) ===")
        print(result.format_table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
