"""Figures 7-17: page-allocation contiguity characterisation.

Figures 7-9, 10-12 and 13-15 plot per-benchmark CDFs of contiguity under
three kernel settings; their legends carry the page-weighted average
contiguity. Figures 16 and 17 plot how that average responds to memhog
load (0/25/50%) with THS on and off respectively.

All of these run on the characterisation environment (aged, loaded
machine), and all statistics cover *non-superpage* pages only, exactly
as the paper's scanner reports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.cdfs import PAPER_CDF_POINTS
from repro.sim.runner import ExperimentRunner
from repro.workloads.benchmarks import CONTIGUITY_PAPER_AVG
from repro.experiments.environments import characterization_config
from repro.experiments.scale import ExperimentScale

#: The three kernel settings of Figures 7-15, keyed by experiment id.
CDF_CONFIGS: Dict[str, Tuple[bool, bool]] = {
    # id -> (ths_enabled, defrag_enabled)
    "fig7_9": (True, True),     # THS on, normal compaction (Linux default)
    "fig10_12": (False, True),  # THS off, normal compaction
    "fig13_15": (False, False), # THS off, low compaction (worst case)
}

#: Index into CONTIGUITY_PAPER_AVG tuples for each configuration.
_PAPER_INDEX = {"fig7_9": 0, "fig10_12": 1, "fig13_15": 2}


@dataclass(frozen=True)
class ContiguityCDFRow:
    """One benchmark's contiguity distribution (one CDF curve)."""

    benchmark: str
    average_contiguity: float
    paper_average: float
    cdf_points: Dict[int, float]
    superpage_pages: int
    total_pages: int


@dataclass(frozen=True)
class ContiguityCDFResult:
    config_id: str
    ths_enabled: bool
    defrag_enabled: bool
    rows: Tuple[ContiguityCDFRow, ...]

    @property
    def average_of_averages(self) -> float:
        """The figure legends' 'Average(...)' entry."""
        return sum(r.average_contiguity for r in self.rows) / len(self.rows)

    def format_table(self) -> str:
        points = (1, 4, 16, 64, 256, 1024)
        header = (
            f"{'Benchmark':11s} {'avg':>8s} {'paper':>8s}  "
            + " ".join(f"<={p:<5d}" for p in points)
        )
        lines = [
            f"Contiguity CDFs [{self.config_id}]: THS "
            f"{'on' if self.ths_enabled else 'off'}, "
            f"{'normal' if self.defrag_enabled else 'low'} compaction",
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            cdf = " ".join(f"{row.cdf_points[p]:6.2f}" for p in points)
            lines.append(
                f"{row.benchmark:11s} {row.average_contiguity:8.1f} "
                f"{row.paper_average:8.2f}  {cdf}"
            )
        lines.append(
            f"{'Average':11s} {self.average_of_averages:8.1f}"
        )
        return "\n".join(lines)


def run_contiguity_cdfs(
    config_id: str,
    scale: ExperimentScale,
    runner: Optional[ExperimentRunner] = None,
) -> ContiguityCDFResult:
    """Regenerate one of the three CDF figure groups."""
    ths, defrag = CDF_CONFIGS[config_id]
    paper_index = _PAPER_INDEX[config_id]
    runner = runner or ExperimentRunner()
    runner.run_batch([
        characterization_config(
            benchmark, scale, ths_enabled=ths, defrag_enabled=defrag
        )
        for benchmark in scale.benchmarks
    ])
    rows: List[ContiguityCDFRow] = []
    for benchmark in scale.benchmarks:
        result = runner.run(
            characterization_config(
                benchmark, scale, ths_enabled=ths, defrag_enabled=defrag
            )
        )
        report = result.contiguity
        rows.append(
            ContiguityCDFRow(
                benchmark=benchmark,
                average_contiguity=report.average_contiguity,
                paper_average=CONTIGUITY_PAPER_AVG[benchmark][paper_index],
                cdf_points=report.cdf().evaluate(PAPER_CDF_POINTS),
                superpage_pages=report.superpage_pages,
                total_pages=report.total_pages,
            )
        )
    return ContiguityCDFResult(config_id, ths, defrag, tuple(rows))


@dataclass(frozen=True)
class MemhogRow:
    """One benchmark's average contiguity across memhog loads."""

    benchmark: str
    no_memhog: float
    memhog_25: float
    memhog_50: float


@dataclass(frozen=True)
class MemhogResult:
    figure: str  # "fig16" (THS on) or "fig17" (THS off)
    ths_enabled: bool
    rows: Tuple[MemhogRow, ...]

    def averages(self) -> Tuple[float, float, float]:
        n = len(self.rows)
        return (
            sum(r.no_memhog for r in self.rows) / n,
            sum(r.memhog_25 for r in self.rows) / n,
            sum(r.memhog_50 for r in self.rows) / n,
        )

    def format_table(self) -> str:
        header = (
            f"{'Benchmark':11s} {'no memhog':>10s} {'memhog 25%':>11s} "
            f"{'memhog 50%':>11s}"
        )
        lines = [
            f"Average contiguity vs load [{self.figure}]: THS "
            f"{'on' if self.ths_enabled else 'off'}",
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            lines.append(
                f"{row.benchmark:11s} {row.no_memhog:10.1f} "
                f"{row.memhog_25:11.1f} {row.memhog_50:11.1f}"
            )
        avg = self.averages()
        lines.append(
            f"{'Average':11s} {avg[0]:10.1f} {avg[1]:11.1f} {avg[2]:11.1f}"
        )
        return "\n".join(lines)


def run_memhog_figure(
    figure: str,
    scale: ExperimentScale,
    runner: Optional[ExperimentRunner] = None,
) -> MemhogResult:
    """Regenerate Figure 16 (THS on) or Figure 17 (THS off)."""
    if figure not in ("fig16", "fig17"):
        raise ValueError(f"figure must be fig16 or fig17, got {figure!r}")
    ths = figure == "fig16"
    runner = runner or ExperimentRunner()
    runner.run_batch([
        characterization_config(
            benchmark, scale, ths_enabled=ths, memhog_fraction=fraction
        )
        for benchmark in scale.benchmarks
        for fraction in (0.0, 0.25, 0.50)
    ])
    rows: List[MemhogRow] = []
    for benchmark in scale.benchmarks:
        values = []
        for fraction in (0.0, 0.25, 0.50):
            result = runner.run(
                characterization_config(
                    benchmark, scale, ths_enabled=ths,
                    memhog_fraction=fraction,
                )
            )
            values.append(result.contiguity.average_contiguity)
        rows.append(MemhogRow(benchmark, *values))
    return MemhogResult(figure, ths, tuple(rows))
