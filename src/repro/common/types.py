"""Core value types shared across the simulator.

The simulator passes around a small set of immutable value objects:
translations (one VPN -> PFN mapping with attribute bits), memory accesses,
and contiguity runs. Keeping these as frozen dataclasses makes the data
flow between the OS substrate, the page walker, and the TLB models explicit
and easy to test.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.common.constants import PAGE_SHIFT


class AccessType(enum.Enum):
    """Kind of memory access issued by a workload."""

    READ = "read"
    WRITE = "write"


class PageAttributes(enum.IntFlag):
    """Page-table attribute bits relevant to coalescing.

    The paper requires contiguous translations to share the same page
    attributes and flags before they may be coalesced (Section 5.1.1), and
    a coalesced TLB entry carries a single set of attribute bits
    (Section 4.1.5). We model the attribute bits that commonly differ
    between neighbouring Linux PTEs.
    """

    NONE = 0
    PRESENT = 1
    WRITABLE = 2
    USER = 4
    ACCESSED = 8
    DIRTY = 16
    NO_EXECUTE = 32
    GLOBAL = 64

    @classmethod
    def default_user(cls) -> "PageAttributes":
        """Attributes of a freshly-faulted anonymous user page."""
        return cls.PRESENT | cls.WRITABLE | cls.USER | cls.NO_EXECUTE

    def coalescing_key(self) -> int:
        """Bits that must match for two translations to coalesce.

        ACCESSED/DIRTY are hardware-managed and excluded: real CoLT
        hardware coalesces around the demand translation whose A/D bits
        the walk itself just set, so they are not a differentiator.
        """
        mask = ~(PageAttributes.ACCESSED | PageAttributes.DIRTY)
        return int(self) & int(mask)


@dataclass(frozen=True)
class Translation:
    """A single virtual-to-physical page translation.

    Attributes:
        vpn: virtual page number.
        pfn: physical frame number.
        attributes: PTE attribute bits.
        is_superpage: True if this translation covers a 2MB superpage, in
            which case ``vpn``/``pfn`` name the first 4KB page of the
            superpage and the mapping spans 512 consecutive pages.
    """

    vpn: int
    pfn: int
    attributes: PageAttributes = PageAttributes.default_user()
    is_superpage: bool = False

    def __post_init__(self) -> None:
        if self.vpn < 0 or self.pfn < 0:
            raise ValueError(
                f"negative page number in translation ({self.vpn}, {self.pfn})"
            )

    @property
    def virtual_address(self) -> int:
        """Byte address of the first byte of the virtual page."""
        return self.vpn << PAGE_SHIFT

    @property
    def physical_address(self) -> int:
        """Byte address of the first byte of the physical frame."""
        return self.pfn << PAGE_SHIFT

    def is_contiguous_with(self, other: "Translation") -> bool:
        """True if ``other`` immediately follows this translation.

        Contiguity per the paper's definition (Section 3.1) requires both
        the virtual and the physical page numbers to advance together, and
        (Section 5.1.1) the attribute bits to match.
        """
        return (
            other.vpn == self.vpn + 1
            and other.pfn == self.pfn + 1
            and other.attributes.coalescing_key()
            == self.attributes.coalescing_key()
            and not self.is_superpage
            and not other.is_superpage
        )


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference issued by a workload.

    Attributes:
        vpn: virtual page number touched.
        access_type: read or write.
        offset: byte offset within the page (used by the data-cache model).
    """

    vpn: int
    access_type: AccessType = AccessType.READ
    offset: int = 0

    @property
    def virtual_address(self) -> int:
        return (self.vpn << PAGE_SHIFT) | self.offset


@dataclass(frozen=True)
class ContiguityRun:
    """A maximal run of contiguous translations found by the scanner.

    Attributes:
        start_vpn: first virtual page of the run.
        start_pfn: first physical frame of the run.
        length: number of pages in the run (>= 1).
        from_superpage: True when the run is a bona fide superpage mapping
            (these are excluded from the paper's contiguity CDFs, which
            report non-superpage pages only).
    """

    start_vpn: int
    start_pfn: int
    length: int
    from_superpage: bool = False

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"run length must be >= 1, got {self.length}")

    @property
    def end_vpn(self) -> int:
        """One past the last virtual page in the run."""
        return self.start_vpn + self.length

    def contains_vpn(self, vpn: int) -> bool:
        return self.start_vpn <= vpn < self.end_vpn


@dataclass
class WalkResult:
    """Outcome of a page-table walk.

    Carries the requested translation plus the other translations that
    shared its PTE cache line -- the only candidates CoLT may coalesce
    without extra memory references (Section 4.1.4).
    """

    translation: Translation
    cache_line_translations: tuple = ()
    latency: int = 0
    memory_accesses: int = 0

    def neighbours(self) -> tuple:
        """Translations from the cache line other than the requested one."""
        return tuple(
            t for t in self.cache_line_translations
            if t.vpn != self.translation.vpn
        )


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a TLB hierarchy lookup for a single access."""

    translation: Optional[Translation]
    hit_level: str  # "l1", "superpage", "l2", "walk"
    latency: int = 0

    @property
    def was_walk(self) -> bool:
        return self.hit_level == "walk"
