"""Least-recently-used tracking used by every TLB and cache in the model.

The paper assumes standard LRU replacement for the set-associative TLBs,
the fully-associative superpage TLB, the caches, and the MMU caches
(Sections 4.1.5, 4.2.3, 5.2.1). ``LRUTracker`` provides exact LRU over a
small, bounded population -- which is all that hardware structures need --
with O(1) touch/evict via an ordered dict.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, Optional, TypeVar

K = TypeVar("K", bound=Hashable)


class LRUTracker(Generic[K]):
    """Tracks recency of a bounded set of keys.

    The tracker does not store payloads; structures keep their own entry
    storage and consult the tracker for victim selection. This keeps the
    replacement policy reusable across TLB sets, fully-associative TLBs,
    cache sets, and MMU caches.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._order: "OrderedDict[K, None]" = OrderedDict()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: K) -> bool:
        return key in self._order

    def __iter__(self) -> Iterator[K]:
        """Iterate keys from least- to most-recently used."""
        return iter(self._order)

    @property
    def is_full(self) -> bool:
        return len(self._order) >= self._capacity

    def touch(self, key: K) -> None:
        """Mark ``key`` as most-recently used, inserting it if absent.

        Raises:
            ValueError: inserting a new key into a full tracker; callers
                must evict first so the eviction is explicit.
        """
        if key in self._order:
            self._order.move_to_end(key)
            return
        if self.is_full:
            raise ValueError(
                "LRU tracker full; evict before inserting a new key"
            )
        self._order[key] = None

    def victim(self) -> K:
        """Return the least-recently-used key without removing it."""
        if not self._order:
            raise ValueError("LRU tracker is empty; no victim")
        return next(iter(self._order))

    def evict(self) -> K:
        """Remove and return the least-recently-used key."""
        if not self._order:
            raise ValueError("LRU tracker is empty; nothing to evict")
        key, _ = self._order.popitem(last=False)
        return key

    def remove(self, key: K) -> None:
        """Remove ``key`` (e.g. on invalidation). Missing keys are errors."""
        del self._order[key]

    def discard(self, key: K) -> None:
        """Remove ``key`` if present."""
        self._order.pop(key, None)

    def mru(self) -> Optional[K]:
        """Most-recently-used key, or None when empty."""
        if not self._order:
            return None
        return next(reversed(self._order))

    def clear(self) -> None:
        self._order.clear()
