"""Lightweight counters and summary statistics used throughout the model.

Simulator components expose their behaviour through ``CounterSet``
instances (named monotonically-increasing counters) so that experiments
can snapshot, diff, and report them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping


class CounterSet:
    """A named collection of integer event counters."""

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._counters: Dict[str, int] = {name: 0 for name in names}

    def increment(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"cannot increment {name!r} by {amount}")
        self._counters[name] = self._counters.get(name, 0) + amount

    def __getitem__(self, name: str) -> int:
        return self._counters.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counters)

    def snapshot(self) -> "CounterSnapshot":
        return CounterSnapshot(dict(self._counters))

    def reset(self) -> None:
        for name in self._counters:
            self._counters[name] = 0

    def merge(self, other: "CounterSet") -> None:
        """Add every counter from ``other`` into this set."""
        for name, value in other.as_dict().items():
            self.increment(name, value)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"CounterSet({inner})"


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable snapshot of a CounterSet, supporting deltas."""

    values: Mapping[str, int]

    def __getitem__(self, name: str) -> int:
        return self.values.get(name, 0)

    def delta(self, later: "CounterSnapshot") -> Dict[str, int]:
        """Per-counter difference ``later - self``."""
        keys = set(self.values) | set(later.values)
        return {k: later[k] - self[k] for k in keys}


@dataclass
class RunningStat:
    """Streaming mean/min/max over a sequence of observations."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def merge(self, other: "RunningStat") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


def misses_per_million(misses: int, instructions: int) -> float:
    """Misses per million instructions (MPMI), the paper's Table 1 metric."""
    if instructions <= 0:
        raise ValueError("instruction count must be positive")
    return misses * 1_000_000.0 / instructions


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty sequence."""
    vals = list(values)
    if not vals:
        raise ValueError("mean of empty sequence")
    return sum(vals) / len(vals)


def percent_eliminated(baseline: int, improved: int) -> float:
    """Percentage of baseline events eliminated by an optimisation.

    Negative values mean the optimisation *added* events (e.g. CoLT-SA
    conflict misses with an overly aggressive index shift, Figure 19).
    A baseline of zero events yields 0.0 -- there was nothing to
    eliminate -- so callers comparing against an already-perfect
    baseline (PERFECT designs, tiny traces) never divide by zero.
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def speedup_percent(baseline_cycles: float, improved_cycles: float) -> float:
    """Runtime improvement percentage: how much faster the improved run is."""
    if improved_cycles <= 0:
        raise ValueError("cycle counts must be positive")
    return 100.0 * (baseline_cycles - improved_cycles) / improved_cycles


def geometric_mean(values: Iterable[float]) -> float:
    vals: List[float] = [v for v in values]
    if not vals:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    log_sum = 0.0
    import math

    for v in vals:
        log_sum += math.log(v)
    return math.exp(log_sum / len(vals))
