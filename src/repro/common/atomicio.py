"""Atomic artifact writes: temp file -> fsync -> ``os.replace``.

Every JSON/CSV/text artifact the toolchain persists (campaign
journals, trace exports, metrics snapshots, run reports, experiment
result dumps, store entries) goes through these helpers so that a kill
-- SIGKILL, OOM, power loss -- at any instant leaves either the
complete old file or the complete new file, never a torn hybrid:

1. the payload is written to a same-directory temp file
   (``.<name>.<pid>.tmp`` -- same filesystem, so the final rename
   cannot degrade to a copy);
2. the temp file is flushed and ``os.fsync``-ed, so the bytes are
   durable before they become visible;
3. ``os.replace`` atomically installs it over the destination;
4. best-effort, the containing directory is fsynced so the rename
   itself survives a crash (skipped silently where directories cannot
   be opened, e.g. some network filesystems and Windows).

A crash between (1) and (3) leaves a stale ``.tmp`` beside an intact
destination; writers that raise clean their temp file up, killed
writers leave it for the next atomic write of the same name (same pid)
or a manual sweep -- it is never loaded, because readers only ever see
the destination path.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union


def _temp_path(path: Path) -> Path:
    """Same-directory temp name (pid-tagged: concurrent writers never
    collide, and a leftover from a killed run is overwritten by the
    same pid's next attempt rather than accumulating)."""
    return path.with_name(f".{path.name}.{os.getpid()}.tmp")


def _fsync_directory(path: Path) -> None:
    """Best-effort fsync of ``path``'s directory (rename durability)."""
    try:
        fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Union[str, Path], data: bytes, fsync: bool = True
) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path.

    Raises ``OSError`` on failure, with the destination untouched and
    the temp file removed.
    """
    path = Path(path)
    temp = _temp_path(path)
    try:
        with temp.open("wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temp, path)
    except OSError:
        temp.unlink(missing_ok=True)
        raise
    if fsync:
        _fsync_directory(path)
    return path


def atomic_write_text(
    path: Union[str, Path],
    text: str,
    encoding: str = "utf-8",
    fsync: bool = True,
) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path."""
    return atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_write_json(
    path: Union[str, Path],
    obj,
    indent=None,
    sort_keys: bool = False,
    fsync: bool = True,
) -> Path:
    """Atomically replace ``path`` with ``obj`` serialised as JSON."""
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys)
    return atomic_write_text(path, text + "\n", fsync=fsync)
