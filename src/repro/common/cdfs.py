"""Cumulative-distribution utilities for the contiguity studies.

Figures 7-15 of the paper plot CDFs of page-allocation contiguity on a
log-scaled x axis (1, 4, 16, 64, 256, 1024). This module provides a small
weighted-CDF type plus helpers to evaluate it at the paper's tick points
and to compute the per-benchmark average contiguity shown in the figure
legends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

#: The x-axis tick points used by the paper's contiguity CDFs.
PAPER_CDF_POINTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class WeightedCDF:
    """A CDF over integer values with integer weights.

    For contiguity, the value is the run length and the weight is the
    number of pages in the run -- the paper's CDFs are over *pages*, i.e.
    "what fraction of pages live in runs of length <= x".
    """

    support: Tuple[int, ...]
    cumulative: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.support) != len(self.cumulative):
            raise ValueError("support and cumulative lengths differ")
        if list(self.support) != sorted(set(self.support)):
            raise ValueError("support must be strictly increasing")
        prev = 0.0
        for c in self.cumulative:
            if c < prev - 1e-12 or c > 1.0 + 1e-9:
                raise ValueError("cumulative values must be nondecreasing in [0,1]")
            prev = c

    @classmethod
    def from_weighted_values(
        cls, pairs: Iterable[Tuple[int, float]]
    ) -> "WeightedCDF":
        """Build from (value, weight) pairs. Weights need not be sorted."""
        totals: Dict[int, float] = {}
        for value, weight in pairs:
            if weight < 0:
                raise ValueError("weights must be nonnegative")
            if weight == 0:
                continue
            totals[value] = totals.get(value, 0.0) + weight
        if not totals:
            raise ValueError("cannot build a CDF from zero total weight")
        support = tuple(sorted(totals))
        grand_total = sum(totals.values())
        cumulative: List[float] = []
        running = 0.0
        for value in support:
            running += totals[value]
            cumulative.append(running / grand_total)
        return cls(support, tuple(cumulative))

    def at(self, x: int) -> float:
        """P(value <= x)."""
        result = 0.0
        for value, cum in zip(self.support, self.cumulative):
            if value <= x:
                result = cum
            else:
                break
        return result

    def evaluate(self, points: Sequence[int] = PAPER_CDF_POINTS) -> Dict[int, float]:
        """Evaluate the CDF at each tick point (the paper's plot series)."""
        return {p: self.at(p) for p in points}

    def quantile(self, q: float) -> int:
        """Smallest value v with P(value <= v) >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        for value, cum in zip(self.support, self.cumulative):
            if cum >= q - 1e-12:
                return value
        return self.support[-1]


def average_contiguity(run_lengths: Iterable[int]) -> float:
    """Page-weighted average contiguity, as in the figure legends.

    Each page that belongs to an N-page run experiences contiguity N, so
    the average over pages weights each run by its own length. This is the
    quantity the paper reports ("on average, pages are in 41-contiguity
    groupings").
    """
    total_pages = 0
    weighted = 0
    for length in run_lengths:
        if length < 1:
            raise ValueError("run lengths must be >= 1")
        total_pages += length
        weighted += length * length
    if total_pages == 0:
        return 0.0
    return weighted / total_pages


def contiguity_cdf(run_lengths: Iterable[int]) -> WeightedCDF:
    """Page-weighted CDF of run lengths (the paper's Figures 7-15)."""
    return WeightedCDF.from_weighted_values(
        (length, float(length)) for length in run_lengths
    )
