"""Shared primitives: constants, value types, LRU, RNG, statistics, CDFs."""

from repro.common.constants import (
    CACHE_LINE_SIZE,
    MAX_ORDER,
    PAGE_SHIFT,
    PAGE_SIZE,
    PTES_PER_CACHE_LINE,
    SUPERPAGE_PAGES,
    SUPERPAGE_SIZE,
)
from repro.common.errors import (
    AllocationError,
    ConfigurationError,
    ExperimentError,
    OutOfMemoryError,
    PageFaultError,
    ReproError,
    TranslationError,
    WorkloadError,
)
from repro.common.lru import LRUTracker
from repro.common.rng import SeedSequencer, derive_seed, make_rng
from repro.common.statistics import (
    CounterSet,
    CounterSnapshot,
    RunningStat,
    misses_per_million,
    percent_eliminated,
    speedup_percent,
)
from repro.common.types import (
    AccessType,
    ContiguityRun,
    LookupResult,
    MemoryAccess,
    PageAttributes,
    Translation,
    WalkResult,
)
from repro.common.cdfs import (
    PAPER_CDF_POINTS,
    WeightedCDF,
    average_contiguity,
    contiguity_cdf,
)

__all__ = [
    "AccessType",
    "AllocationError",
    "CACHE_LINE_SIZE",
    "ConfigurationError",
    "ContiguityRun",
    "CounterSet",
    "CounterSnapshot",
    "ExperimentError",
    "LRUTracker",
    "LookupResult",
    "MAX_ORDER",
    "MemoryAccess",
    "OutOfMemoryError",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PAPER_CDF_POINTS",
    "PTES_PER_CACHE_LINE",
    "PageAttributes",
    "PageFaultError",
    "ReproError",
    "RunningStat",
    "SUPERPAGE_PAGES",
    "SUPERPAGE_SIZE",
    "SeedSequencer",
    "Translation",
    "TranslationError",
    "WalkResult",
    "WeightedCDF",
    "WorkloadError",
    "average_contiguity",
    "contiguity_cdf",
    "derive_seed",
    "make_rng",
    "misses_per_million",
    "percent_eliminated",
    "speedup_percent",
]
