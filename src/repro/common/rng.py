"""Deterministic random-number management.

Every stochastic component of the simulator (workload generators, memhog,
background churn) draws from a seeded ``numpy.random.Generator``. To keep
experiments reproducible while letting components evolve independently,
seeds are derived from a root seed plus a textual stream name, so adding a
new consumer never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, stream: str) -> int:
    """Derive a stable 63-bit seed for ``stream`` from ``root_seed``.

    Uses SHA-256 so the mapping is stable across Python versions and
    processes (the builtin ``hash`` is salted per-process).
    """
    payload = f"{root_seed}:{stream}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def make_rng(root_seed: int, stream: str) -> np.random.Generator:
    """Create an independent generator for the named stream."""
    return np.random.default_rng(derive_seed(root_seed, stream))


class SeedSequencer:
    """Hands out independent generators derived from one root seed.

    Example:
        >>> seeds = SeedSequencer(42)
        >>> workload_rng = seeds.rng("workload.mcf")
        >>> memhog_rng = seeds.rng("memhog")
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def seed(self, stream: str) -> int:
        return derive_seed(self._root_seed, stream)

    def rng(self, stream: str) -> np.random.Generator:
        return make_rng(self._root_seed, stream)

    def child(self, stream: str) -> "SeedSequencer":
        """A sequencer whose streams are namespaced under ``stream``."""
        return SeedSequencer(self.seed(stream))
