"""Exception hierarchy for the CoLT reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. Subclasses are grouped by the
subsystem that raises them.
"""

from __future__ import annotations

from typing import Dict, Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class OutOfMemoryError(ReproError):
    """The simulated physical memory could not satisfy an allocation."""


class PageFaultError(ReproError):
    """An access touched virtual memory with no backing VMA (a SIGSEGV)."""


class TranslationError(ReproError):
    """A page-table lookup failed or produced an inconsistent translation."""


class AllocationError(ReproError):
    """The buddy allocator was asked for an impossible block."""


class WorkloadError(ReproError):
    """A workload definition or trace is malformed."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with an unknown id or bad config."""


class SanitizerError(ReproError):
    """A runtime sanitizer detected a violated simulator invariant."""


class SimulationError(ReproError):
    """A full-system run lost internal consistency (e.g. replay desync)."""


class InjectedFaultError(ReproError):
    """A fault deliberately injected by a ``COLT_FAULTS`` plan.

    Raised by :class:`repro.sim.faults.FaultPlan` at the scheduled
    injection site; never raised by real simulator logic, so tests can
    assert that a failure was the planned one.
    """


class TaskExecutionError(SimulationError):
    """A runner task kept failing after every configured retry.

    Carries the offending task's configuration attribution (benchmark,
    seed, designs) in ``context`` so a crashed batch names the scenario
    that sank it instead of a bare worker traceback.
    """

    def __init__(self, message: str, context: Optional[Dict[str, object]] = None):
        super().__init__(message)
        self.context = dict(context or {})


class DeterminismError(ReproError):
    """Two same-seed simulations diverged (hidden nondeterminism)."""


class CampaignError(ReproError):
    """A campaign journal is unusable (wrong version, foreign
    fingerprint, or unresumable state)."""


class ShutdownRequested(ReproError):
    """The first SIGINT/SIGTERM asked for a graceful shutdown.

    Raised at the runner's next safe point (between tasks, or while
    waiting on a pooled future) after pending work has been cancelled;
    everything already completed has been yielded -- and therefore
    checkpointed -- before this propagates. Carries the triggering
    signal's name for the exit message.
    """

    def __init__(self, signal_name: str = "SIGINT"):
        super().__init__(f"graceful shutdown requested by {signal_name}")
        self.signal_name = signal_name


class StallError(SimulationError):
    """The stall watchdog saw no task complete within its timeout.

    Treated by the executor exactly like a blown per-task deadline:
    the stuck task is cancelled and requeued through the retry
    machinery, after the watchdog dumped all-thread stacks for the
    post-mortem.
    """


class MemoryBudgetError(ReproError):
    """RSS exceeded ``COLT_MEM_BUDGET`` after every degradation rung
    (pool shrink, prefetch disable) had already been applied."""
