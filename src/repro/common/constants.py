"""Architectural constants shared across the CoLT reproduction.

All address arithmetic in the simulator is expressed in terms of these
constants. They mirror the x86-64 platform assumed by the paper: 4KB base
pages, 2MB superpages, 64-byte cache lines, and 8-byte page-table entries
(so one cache line holds exactly eight PTEs -- the coalescing window of
CoLT, Section 4.1.4 of the paper).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Page geometry (x86-64).
# ---------------------------------------------------------------------------

#: Size of a base page in bytes (4KB on x86-64).
PAGE_SIZE = 4096

#: log2 of the base page size; the number of page-offset bits.
PAGE_SHIFT = 12

#: Number of base pages backing one 2MB superpage (512 on x86-64).
SUPERPAGE_PAGES = 512

#: Size of a 2MB superpage in bytes.
SUPERPAGE_SIZE = PAGE_SIZE * SUPERPAGE_PAGES

#: log2 of the superpage size.
SUPERPAGE_SHIFT = 21

# ---------------------------------------------------------------------------
# Page-table geometry (x86-64 4-level radix tree).
# ---------------------------------------------------------------------------

#: Bytes per page-table entry.
PTE_SIZE = 8

#: Number of entries per page-table node (one 4KB page of 8-byte PTEs).
PTES_PER_TABLE = PAGE_SIZE // PTE_SIZE

#: Number of radix levels in an x86-64 page table (PML4, PDPT, PD, PT).
PAGE_TABLE_LEVELS = 4

#: Bits of virtual page number consumed per radix level.
BITS_PER_LEVEL = 9

#: Number of virtual-address bits (canonical x86-64 uses 48).
VIRTUAL_ADDRESS_BITS = 48

#: Number of virtual-page-number bits (48 - 12).
VPN_BITS = VIRTUAL_ADDRESS_BITS - PAGE_SHIFT

# ---------------------------------------------------------------------------
# Cache geometry.
# ---------------------------------------------------------------------------

#: Cache-line size in bytes, shared by all cache levels.
CACHE_LINE_SIZE = 64

#: log2 of the cache-line size.
CACHE_LINE_SHIFT = 6

#: Number of PTEs that share one cache line. A page walk that fetches the
#: cache line containing a PTE therefore observes this many neighbouring
#: translations "for free" -- the hard upper bound on CoLT coalescing
#: (paper Section 4.1.4).
PTES_PER_CACHE_LINE = CACHE_LINE_SIZE // PTE_SIZE

# ---------------------------------------------------------------------------
# Buddy-allocator geometry (Linux mm/page_alloc.c uses MAX_ORDER = 11).
# ---------------------------------------------------------------------------

#: Number of buddy free lists: orders 0..MAX_ORDER-1 track blocks of
#: 2**order contiguous page frames.
MAX_ORDER = 11

#: Largest block the buddy allocator manages (2**10 = 1024 pages = 4MB).
MAX_ORDER_PAGES = 1 << (MAX_ORDER - 1)

# ---------------------------------------------------------------------------
# Default hardware parameters (paper Section 5.2.1).
# ---------------------------------------------------------------------------

#: Simulated L1 TLB: 32 entries, 4-way set-associative.
DEFAULT_L1_TLB_ENTRIES = 32
DEFAULT_L1_TLB_WAYS = 4

#: Simulated L2 TLB: 128 entries, 4-way set-associative.
DEFAULT_L2_TLB_ENTRIES = 128
DEFAULT_L2_TLB_WAYS = 4

#: Baseline fully-associative superpage TLB: 16 entries.
DEFAULT_SUPERPAGE_TLB_ENTRIES = 16

#: CoLT-FA / CoLT-All conservatively halve the superpage TLB (Section 4.2.4).
COLT_FA_TLB_ENTRIES = 8

#: MMU page-walk cache entries (Section 5.2.1).
DEFAULT_MMU_CACHE_ENTRIES = 22

#: Cache hierarchy sized like an Intel Core i7 (Section 5.2.1).
DEFAULT_L1_CACHE_BYTES = 32 * 1024
DEFAULT_L2_CACHE_BYTES = 256 * 1024
DEFAULT_LLC_BYTES = 4 * 1024 * 1024

DEFAULT_L1_CACHE_WAYS = 8
DEFAULT_L2_CACHE_WAYS = 8
DEFAULT_LLC_WAYS = 16

#: Access latencies in cycles (L1 / L2 / LLC / DRAM), typical of an i7.
DEFAULT_L1_LATENCY = 4
DEFAULT_L2_LATENCY = 12
DEFAULT_LLC_LATENCY = 36
DEFAULT_DRAM_LATENCY = 200

#: MMU-cache hit latency (one cycle per skipped level is typical).
DEFAULT_MMU_CACHE_LATENCY = 1

# ---------------------------------------------------------------------------
# CoLT defaults.
# ---------------------------------------------------------------------------

#: Default index-bit left shift for CoLT-SA: shifting by two maps four
#: consecutive VPNs to the same set (paper Section 7.1.2 concludes two is
#: the sweet spot).
DEFAULT_COLT_SA_SHIFT = 2

#: Bits used for the CoLT-FA coalescing-length field; 5 bits suffices for
#: the paper (Section 4.2.2 -- "captures a contiguity of 1024 pages" when
#: scaled by further merging; we store lengths up to 2**5 * 32).
COLT_FA_LENGTH_BITS = 5

#: Maximum number of translations one CoLT-FA entry may represent after
#: insertion-time merging with resident entries.
COLT_FA_MAX_SPAN = 1024
