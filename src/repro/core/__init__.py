"""The paper's contribution: coalescing logic, CoLT MMU designs, timing."""

from repro.core.coalescing import (
    clip_to_group,
    contiguous_run_around,
    run_length_around,
)
from repro.core.mmu import MMU, CoLTDesign, MMUConfig, make_mmu_config
from repro.core.performance import (
    CoreModel,
    PerformanceResult,
    evaluate_performance,
    mpmi,
    perfect_tlb_result,
)

__all__ = [
    "CoLTDesign",
    "CoreModel",
    "MMU",
    "MMUConfig",
    "PerformanceResult",
    "clip_to_group",
    "contiguous_run_around",
    "evaluate_performance",
    "make_mmu_config",
    "mpmi",
    "perfect_tlb_result",
    "run_length_around",
]
