"""Performance interpolation model (paper Section 5.2.1).

The paper measures miss rates with a trace-driven TLB simulator, then
interpolates performance using the argument that page walks are
serialised and sit on the execution's critical path: every cycle a walk
takes is a cycle added to the program's runtime. We implement exactly
that model:

    cycles = instructions * base_cpi            (everything else)
           + l2_hits * l2_hit_latency           (L1-miss, L2-hit stalls)
           + sum(walk latencies)                (TLB-miss page walks)
           - compulsory_discount                (see below)

The compulsory discount removes the DRAM cost of each PTE line's *first*
fetch. Those compulsory misses are identical across TLB designs (no TLB
organisation can avoid them) and are a vanishing fraction of the paper's
1-billion-instruction traces, but a large fraction of a scaled-down
trace; leaving them in would dilute every design's improvement by a
trace-length artefact rather than an architectural effect.

``base_cpi`` comes from the benchmark profile (a 4-way out-of-order core
per the paper's CMP$im configuration); the TLB overhead terms come from
the MMU's counters. A perfect TLB (Figure 21's upper bound) has zero
overhead cycles. Like the paper, the model is conservative: it ignores
the instruction replays a real machine also pays on TLB misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.statistics import misses_per_million, speedup_percent
from repro.core.mmu import MMU


@dataclass(frozen=True)
class CoreModel:
    """The non-TLB part of the processor's timing.

    Attributes:
        base_cpi: average cycles per instruction with TLB overheads
            excluded (captures the OoO core, caches, branch prediction).
        instructions_per_access: how many instructions retire per memory
            reference in the workload (controls how TLB misses translate
            to MPMI).
    """

    base_cpi: float = 1.0
    instructions_per_access: float = 3.0

    def __post_init__(self) -> None:
        if self.base_cpi <= 0 or self.instructions_per_access <= 0:
            raise ConfigurationError(f"invalid core model {self}")


@dataclass(frozen=True)
class PerformanceResult:
    """Cycle breakdown for one simulated run."""

    instructions: float
    base_cycles: float
    l2_hit_cycles: float
    walk_cycles: float

    @property
    def tlb_overhead_cycles(self) -> float:
        return self.l2_hit_cycles + self.walk_cycles

    @property
    def total_cycles(self) -> float:
        return self.base_cycles + self.tlb_overhead_cycles

    @property
    def cpi(self) -> float:
        return self.total_cycles / self.instructions

    def improvement_over(self, baseline: "PerformanceResult") -> float:
        """Runtime improvement (%) of this run relative to ``baseline``.

        The number Figure 21 reports: how much faster the application
        runs with this TLB organisation than with the baseline one.
        """
        return speedup_percent(baseline.total_cycles, self.total_cycles)


def evaluate_performance(
    mmu: MMU,
    accesses: int,
    core: CoreModel,
    compulsory_discount_cycles: float = 0.0,
) -> PerformanceResult:
    """Interpolate runtime from an MMU's accumulated statistics.

    Args:
        compulsory_discount_cycles: cycles to subtract from the walk
            total for compulsory PTE-line fetches (same for every design;
            see the module docstring).
    """
    if accesses <= 0:
        raise ConfigurationError("accesses must be positive")
    instructions = accesses * core.instructions_per_access
    walk_cycles = max(
        0.0, float(mmu.total_walk_cycles) - compulsory_discount_cycles
    )
    return PerformanceResult(
        instructions=instructions,
        base_cycles=instructions * core.base_cpi,
        l2_hit_cycles=float(mmu.total_l2_hit_cycles),
        walk_cycles=walk_cycles,
    )


def perfect_tlb_result(
    accesses: int, core: CoreModel
) -> PerformanceResult:
    """The 100%-hit-rate bound: zero TLB overhead cycles."""
    instructions = accesses * core.instructions_per_access
    return PerformanceResult(
        instructions=instructions,
        base_cycles=instructions * core.base_cpi,
        l2_hit_cycles=0.0,
        walk_cycles=0.0,
    )


def mpmi(misses: int, accesses: int, core: CoreModel) -> float:
    """Misses per million instructions, Table 1's metric."""
    instructions = accesses * core.instructions_per_access
    return misses_per_million(misses, int(max(1, instructions)))
