"""Coalescing logic: turning one PTE cache line into coalesced entries.

On a TLB miss the page walk fetches a 64-byte cache line holding eight
PTEs; "these translations are brought without additional memory
references; thus we check just them for contiguity" (Section 4.1.4).
This module is that Coalescing Logic block (Figures 4-6): it finds the
maximal contiguous run of translations around the demanded one, subject
to attribute equality, and clips it to whatever the destination TLB's
indexing scheme can hold.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.types import Translation


def contiguous_run_around(
    line_translations: Sequence[Translation], vpn: int
) -> List[Translation]:
    """Maximal contiguous run within one cache line containing ``vpn``.

    Two translations chain when their VPNs and PFNs advance together and
    their attribute bits match (Sections 3.1, 5.1.1). The run is grown
    left and right from the demanded translation, so the demanded page is
    always covered. Returns the run in ascending VPN order; the demanded
    translation alone if nothing chains (or the line lacks neighbours).

    Raises:
        ValueError: ``vpn`` itself is absent from the line -- the walk
            that produced the line must have resolved it.
    """
    by_vpn: Dict[int, Translation] = {t.vpn: t for t in line_translations}
    if vpn not in by_vpn:
        raise ValueError(f"demanded vpn {vpn} not present in cache line")
    run = [by_vpn[vpn]]
    # Grow left.
    left = vpn - 1
    while left in by_vpn and by_vpn[left].is_contiguous_with(run[0]):
        run.insert(0, by_vpn[left])
        left -= 1
    # Grow right.
    right = vpn + 1
    while right in by_vpn and run[-1].is_contiguous_with(by_vpn[right]):
        run.append(by_vpn[right])
        right += 1
    return run


def clip_to_group(
    run: Sequence[Translation], vpn: int, group_size: int
) -> List[Translation]:
    """Restrict a run to ``vpn``'s naturally-aligned group.

    CoLT-SA may only coalesce translations that "map to the same set"
    (Section 4.1.1): the aligned ``group_size``-VPN window selected by the
    shifted index bits. The demanded translation always survives the clip.
    """
    group_base = vpn - (vpn % group_size)
    clipped = [
        t for t in run if group_base <= t.vpn < group_base + group_size
    ]
    if not any(t.vpn == vpn for t in clipped):
        raise ValueError(f"demanded vpn {vpn} lost in clipping")
    return clipped


def clip_to_window(
    run: Sequence[Translation], vpn: int, window: int
) -> List[Translation]:
    """Limit a run to ``window`` translations containing ``vpn``.

    Models a hypothetical coalescing window other than the 8-PTE cache
    line (the Section 4.1.4 ablation): a narrower window behaves like a
    32-byte fetch, a wider one like fetching two adjacent lines. The
    demanded translation stays inside the clipped run, centred when
    possible.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if len(run) <= window:
        return list(run)
    index = next(i for i, t in enumerate(run) if t.vpn == vpn)
    start = min(max(0, index - window // 2), len(run) - window)
    return list(run[start : start + window])


def run_length_around(
    line_translations: Sequence[Translation], vpn: int
) -> int:
    """Length of the coalescible run around ``vpn`` (CoLT-All's threshold
    check, Figure 6 step 1)."""
    return len(contiguous_run_around(line_translations, vpn))
