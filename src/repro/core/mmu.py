"""MMU front-end: the two-level TLB hierarchy and the CoLT designs.

``MMU.translate`` implements the per-access flow of Figures 4-6:

1. the set-associative L1 TLB and the fully-associative superpage TLB
   are probed in parallel (one hit time; a miss in both is "an L1 miss");
2. the set-associative L2 TLB (inclusive of the SA L1 only) is probed;
3. on a full miss, the page walker resolves the translation, and the
   Coalescing Logic builds the fill for the configured design:

   * ``BASELINE``  -- single-translation entries; superpages go to the FA TLB;
   * ``COLT_SA``   -- coalesce into L1/L2 under the shifted indexing
     (Section 4.1);
   * ``COLT_FA``   -- coalesce (unrestricted, up to the 8-PTE line) into
     the FA TLB, echoing just the demanded translation into L2
     (Section 4.2);
   * ``COLT_ALL``  -- threshold routing between the two (Section 4.3);
   * ``PERFECT``   -- 100%-hit-rate TLB, the paper's upper bound
     (Figure 21).

Coalescing happens only on the fill path, never on hits (design
principle 2, Section 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.analysis.sanitizers import TLBSanitizer, resolve_sanitize
from repro.common.constants import (
    COLT_FA_TLB_ENTRIES,
    DEFAULT_COLT_SA_SHIFT,
    DEFAULT_SUPERPAGE_TLB_ENTRIES,
)
from repro.common.errors import ConfigurationError
from repro.common.statistics import CounterSet
from repro.common.types import LookupResult, Translation
from repro.obs.hooks import MMUObserver
from repro.obs.registry import bind_counterset, get_registry
from repro.core.coalescing import (
    clip_to_group,
    clip_to_window,
    contiguous_run_around,
)
from repro.tlb.config import (
    FullyAssociativeTLBConfig,
    SetAssociativeTLBConfig,
    default_l1_config,
    default_l2_config,
)
from repro.tlb.entries import CoalescedEntry, RangeEntry
from repro.tlb.fully_associative import FullyAssociativeTLB
from repro.tlb.set_associative import SetAssociativeTLB
from repro.walker.page_walker import PageWalker


class CoLTDesign(enum.Enum):
    """Which TLB organisation the MMU models."""

    BASELINE = "baseline"
    COLT_SA = "colt_sa"
    COLT_FA = "colt_fa"
    COLT_ALL = "colt_all"
    PERFECT = "perfect"


@dataclass(frozen=True)
class MMUConfig:
    """Full hierarchy configuration.

    Attributes:
        design: TLB organisation (see :class:`CoLTDesign`).
        l1 / l2: set-associative TLB geometries (index_shift > 0 only
            meaningful for COLT_SA / COLT_ALL).
        superpage: fully-associative TLB geometry.
        colt_all_threshold: CoLT-All's routing threshold; runs longer
            than this go to the FA TLB (defaults to the L2 group size,
            i.e. what the SA indexing can accommodate, Section 4.3.1).
        fa_fill_l2: CoLT-FA/All's L2 echo fill (Section 7.1.3's
            ablation: disabling costs 10-20% of the miss eliminations).
        coalescing_window: maximum translations the coalescing logic may
            examine per fill; None means the natural 8-PTE cache-line
            bound (Section 4.1.4). Used by the window ablation.
        l1_latency / l2_latency: TLB hit latencies in cycles; L1 hit
            time is treated as hidden in the pipeline (0 extra cycles).
    """

    design: CoLTDesign
    l1: SetAssociativeTLBConfig
    l2: SetAssociativeTLBConfig
    superpage: FullyAssociativeTLBConfig
    colt_all_threshold: Optional[int] = None
    fa_fill_l2: bool = True
    coalescing_window: Optional[int] = None
    l1_latency: int = 0
    l2_latency: int = 7

    def __post_init__(self) -> None:
        if self.design in (CoLTDesign.BASELINE, CoLTDesign.PERFECT):
            if self.l1.index_shift or self.l2.index_shift:
                raise ConfigurationError(
                    f"{self.design.value} must not shift index bits"
                )
        if self.design is CoLTDesign.COLT_FA:
            if self.l1.index_shift or self.l2.index_shift:
                raise ConfigurationError(
                    "CoLT-FA keeps conventional set-associative indexing"
                )
        if self.l1.group_size > self.l2.group_size:
            raise ConfigurationError(
                "L1 group size must not exceed L2's: the L2 is inclusive "
                "of the SA L1, so every L1 fill must fit one L2 entry"
            )

    @property
    def effective_all_threshold(self) -> int:
        if self.colt_all_threshold is not None:
            return self.colt_all_threshold
        return self.l2.group_size


def make_mmu_config(
    design: CoLTDesign,
    sa_shift: int = DEFAULT_COLT_SA_SHIFT,
    l2_ways: int = 4,
    superpage_entries: Optional[int] = None,
    fa_fill_l2: bool = True,
    max_fa_span: Optional[int] = None,
    coalescing_window: Optional[int] = None,
    graceful_invalidation: bool = False,
    coalescing_aware_replacement: bool = False,
) -> MMUConfig:
    """Build the paper's standard configuration for a design.

    Baseline/perfect: 32/128-entry 4-way L1/L2 + 16-entry FA superpage
    TLB. CoLT-SA: index shift 2 (VPN[4-2] / VPN[6-2]). CoLT-FA / CoLT-All
    halve the FA TLB to 8 entries to pay for range-check lookup hardware
    (Section 4.2.4). The two ``graceful_invalidation`` /
    ``coalescing_aware_replacement`` flags enable the paper's
    Section 4.1.5 future-work mechanisms.
    """
    if design in (CoLTDesign.BASELINE, CoLTDesign.PERFECT):
        shift = 0
        sp_entries = superpage_entries or DEFAULT_SUPERPAGE_TLB_ENTRIES
        sp = FullyAssociativeTLBConfig(entries=sp_entries)
    elif design is CoLTDesign.COLT_SA:
        shift = sa_shift
        sp_entries = superpage_entries or DEFAULT_SUPERPAGE_TLB_ENTRIES
        sp = FullyAssociativeTLBConfig(entries=sp_entries)
    elif design is CoLTDesign.COLT_FA:
        shift = 0
        sp_entries = superpage_entries or COLT_FA_TLB_ENTRIES
        sp = FullyAssociativeTLBConfig(
            entries=sp_entries,
            allow_coalesced=True,
            merge_on_insert=True,
            **({"max_span": max_fa_span} if max_fa_span else {}),
        )
    elif design is CoLTDesign.COLT_ALL:
        shift = sa_shift
        sp_entries = superpage_entries or COLT_FA_TLB_ENTRIES
        sp = FullyAssociativeTLBConfig(
            entries=sp_entries,
            allow_coalesced=True,
            merge_on_insert=True,
            **({"max_span": max_fa_span} if max_fa_span else {}),
        )
    else:  # pragma: no cover - enum is exhaustive
        raise ConfigurationError(f"unknown design {design}")
    if graceful_invalidation:
        sp = replace(sp, graceful_invalidation=True)
    l1 = replace(
        default_l1_config(shift),
        graceful_invalidation=graceful_invalidation,
        coalescing_aware_replacement=coalescing_aware_replacement,
    )
    l2 = replace(
        default_l2_config(shift, ways=l2_ways),
        graceful_invalidation=graceful_invalidation,
        coalescing_aware_replacement=coalescing_aware_replacement,
    )
    return MMUConfig(
        design=design,
        l1=l1,
        l2=l2,
        superpage=sp,
        fa_fill_l2=fa_fill_l2,
        coalescing_window=coalescing_window,
    )


class MMU:
    """Per-access translation engine with pluggable CoLT design."""

    def __init__(
        self,
        config: MMUConfig,
        walker: PageWalker,
        sanitize: Optional[bool] = None,
    ) -> None:
        self.config = config
        self.walker = walker
        self.l1 = SetAssociativeTLB(config.l1)
        self.l2 = SetAssociativeTLB(config.l2)
        self.superpage_tlb = FullyAssociativeTLB(config.superpage)
        #: Optional :class:`TLBSanitizer`; ``sanitize=None`` defers to
        #: the ``COLT_SANITIZE`` environment variable.
        self.sanitizer: Optional[TLBSanitizer] = None
        if resolve_sanitize(sanitize):
            self.sanitizer = TLBSanitizer(self)
            self.sanitizer.attach()
        self.counters = CounterSet(
            [
                "accesses",
                "l1_sa_hits",
                "l1_fa_hits",
                "l1_misses",
                "l2_hits",
                "l2_misses",
                "walks",
                "walk_latency",
                "coalesced_fills",
                "uncoalesced_fills",
                "fa_routed_fills",
                "sa_routed_fills",
                "invalidations",
            ]
        )
        #: Optional :class:`repro.obs.hooks.MMUObserver`; ``None`` unless
        #: observability is active (``COLT_TRACE`` / ``COLT_PROFILE``),
        #: so the disabled-mode cost is one ``is not None`` per
        #: miss/fill/shootdown -- the hit path never checks it.
        self._obs: Optional[MMUObserver] = MMUObserver.create(
            config.design.value
        )
        if self._obs is not None:
            bind_counterset(
                get_registry(), "colt_mmu", self.counters,
                design=config.design.value,
            )

    # ------------------------------------------------------------------
    # The per-access flow.
    # ------------------------------------------------------------------

    def access(self, vpn: int) -> Tuple[str, int]:
        """Translate one access; returns ``(hit_level, latency)``.

        The fast path used by the simulators: full TLB/walker bookkeeping
        without materialising translation objects on hits.
        """
        self.counters.increment("accesses")
        if self.config.design is CoLTDesign.PERFECT:
            return "l1", self.config.l1_latency

        # Step 1: L1 SA and superpage/FA TLB probed in parallel.
        if self.l1.probe(vpn) is not None:
            self.counters.increment("l1_sa_hits")
            # Keep the parallel FA structure's recency honest.
            self.superpage_tlb.probe(vpn, update_lru=False)
            return "l1", self.config.l1_latency
        if self.superpage_tlb.probe(vpn) is not None:
            self.counters.increment("l1_fa_hits")
            return "superpage", self.config.l1_latency
        self.counters.increment("l1_misses")
        if self._obs is not None:
            self._obs.on_l1_miss(vpn)

        # Step 2: L2 (inclusive of the SA L1 only).
        latency = self.config.l2_latency
        if self.l2.probe(vpn) is not None:
            self.counters.increment("l2_hits")
            self._refill_l1_from_l2(vpn)
            return "l2", latency
        self.counters.increment("l2_misses")

        # Step 3: page walk + coalescing fill.
        walk = self.walker.walk(vpn)
        self.counters.increment("walks")
        self.counters.increment("walk_latency", walk.latency)
        latency += walk.latency
        self._fill(vpn, walk)
        if self.sanitizer is not None:
            self.sanitizer.after_fill(vpn)
        return "walk", latency

    def translate(self, vpn: int) -> LookupResult:
        """Translate one access, returning the full translation.

        Equivalent to :meth:`access` plus an architectural page-table
        read for the translation (tests and examples use this; the
        simulators use :meth:`access`).
        """
        hit_level, latency = self.access(vpn)
        translation = self.walker.page_table.lookup(vpn)
        return LookupResult(translation, hit_level, latency)

    def _refill_l1_from_l2(self, vpn: int) -> None:
        """Copy the hitting L2 entry down into L1 (sliced to L1's group)."""
        entry = self.l2.entry_for(vpn)
        if entry is None:  # pragma: no cover - entry just hit
            return
        sliced = entry.slice_for_group(vpn, self.config.l1.group_size)
        if sliced is not None:
            self.l1.insert(sliced)

    # ------------------------------------------------------------------
    # Fill policies (the design-specific part).
    # ------------------------------------------------------------------

    def _fill(self, vpn: int, walk) -> None:
        translation = walk.translation
        if translation.is_superpage:
            # Superpages always live in the FA TLB, in every design.
            base = Translation(
                translation.vpn - translation.vpn % 512,
                translation.pfn - translation.vpn % 512,
                translation.attributes,
                is_superpage=True,
            )
            self.superpage_tlb.insert_superpage(base)
            if self._obs is not None:
                self._obs.on_superpage_fill(vpn)
            return

        design = self.config.design
        if design is CoLTDesign.BASELINE:
            self._fill_baseline(translation)
        elif design is CoLTDesign.COLT_SA:
            self._fill_colt_sa(vpn, walk)
        elif design is CoLTDesign.COLT_FA:
            self._fill_colt_fa(vpn, walk)
        elif design is CoLTDesign.COLT_ALL:
            self._fill_colt_all(vpn, walk)
        else:  # pragma: no cover
            raise ConfigurationError(f"unexpected design {design}")

    def _coalescible_run(self, vpn: int, walk) -> list:
        run = contiguous_run_around(walk.cache_line_translations, vpn)
        if self.config.coalescing_window is not None:
            run = clip_to_window(run, vpn, self.config.coalescing_window)
        return run

    def _insert_l2(self, entry: CoalescedEntry) -> None:
        """Install into L2, back-invalidating L1 copies L2 no longer holds.

        The L2 is inclusive of the SA L1: when an L2 insert displaces a
        resident entry (capacity eviction or overlap replacement), any L1
        copy of a translation the L2 no longer covers must be dropped
        too, exactly as inclusive hardware back-invalidates its inner
        level. All L2 fills go through here so the invariant holds
        unconditionally, sanitizers on or off.
        """
        for victim in self.l2.insert(entry):
            for slot, valid in enumerate(victim.valid):
                if not valid:
                    continue
                vpn = victim.group_base_vpn + slot
                if self.l2.entry_for(vpn) is None:
                    self.l1.invalidate(vpn)

    def _insert_l2_translation(self, translation: Translation) -> None:
        """Single-translation L2 fill routed through back-invalidation."""
        group = self.config.l2.group_size
        base = translation.vpn - (translation.vpn % group)
        valid = [False] * group
        valid[translation.vpn - base] = True
        self._insert_l2(
            CoalescedEntry(
                base, group, valid, translation.pfn, translation.attributes
            )
        )

    def _fill_baseline(self, translation: Translation) -> None:
        self._insert_l2_translation(translation)
        self.l1.insert_translation(translation)
        self._count_fill(1)

    def _fill_colt_sa(self, vpn: int, walk) -> None:
        """Coalesce within the cache line, clipped per TLB's index scheme."""
        run = self._coalescible_run(vpn, walk)
        l2_run = clip_to_group(run, vpn, self.config.l2.group_size)
        l2_entry = CoalescedEntry.from_run(l2_run, self.config.l2.group_size)
        self._insert_l2(l2_entry)
        l1_run = clip_to_group(run, vpn, self.config.l1.group_size)
        l1_entry = CoalescedEntry.from_run(l1_run, self.config.l1.group_size)
        self.l1.insert(l1_entry)
        self._count_fill(len(l2_run))

    def _fill_colt_fa(self, vpn: int, walk) -> None:
        """Unrestricted line coalescing into the FA TLB (Section 4.2.1)."""
        run = self._coalescible_run(vpn, walk)
        if len(run) >= 2:
            self.superpage_tlb.insert(RangeEntry.from_run(run))
            if self.config.fa_fill_l2:
                # Echo only the demanded translation into L2; the L1 is
                # left untouched (Section 4.2.1).
                self._insert_l2_translation(walk.translation)
            self.counters.increment("fa_routed_fills")
        else:
            self._fill_baseline(walk.translation)
            return
        self._count_fill(len(run))

    def _fill_colt_all(self, vpn: int, walk) -> None:
        """Threshold routing (Figure 6): small runs to SA, large to FA."""
        run = self._coalescible_run(vpn, walk)
        threshold = self.config.effective_all_threshold
        if len(run) <= threshold:
            self.counters.increment("sa_routed_fills")
            self._fill_colt_sa(vpn, walk)
            return
        self.superpage_tlb.insert(RangeEntry.from_run(run))
        self.counters.increment("fa_routed_fills")
        if self.config.fa_fill_l2:
            # Unlike CoLT-FA, bring as much of the run as the L2's index
            # scheme allows (Section 4.3.1).
            l2_run = clip_to_group(run, vpn, self.config.l2.group_size)
            self._insert_l2(
                CoalescedEntry.from_run(l2_run, self.config.l2.group_size)
            )
        self._count_fill(len(run))

    def _count_fill(self, run_length: int) -> None:
        if run_length >= 2:
            self.counters.increment("coalesced_fills")
        else:
            self.counters.increment("uncoalesced_fills")
        if self._obs is not None:
            self._obs.on_fill(run_length)

    # ------------------------------------------------------------------
    # Shootdowns.
    # ------------------------------------------------------------------

    def invalidate(self, vpn: int) -> None:
        """TLB shootdown for one virtual page.

        Whole coalesced entries covering the page are flushed
        (Section 4.1.5), and the walker's MMU-cache entries for this
        address are dropped (INVLPG semantics) -- the page-table structure
        may have changed (e.g. a THP split replaces a PDE).
        """
        self.counters.increment("invalidations")
        if self._obs is not None:
            self._obs.on_shootdown(vpn)
        self.l1.invalidate(vpn)
        self.l2.invalidate(vpn)
        self.superpage_tlb.invalidate(vpn)
        if self.walker.mmu_cache is not None:
            self.walker.mmu_cache.invalidate_vpn(vpn)
        if self.sanitizer is not None:
            self.sanitizer.after_invalidate(vpn)

    def invalidate_range(self, start_vpn: int, count: int) -> None:
        for vpn in range(start_vpn, start_vpn + count):
            self.invalidate(vpn)

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
        self.superpage_tlb.flush()

    # ------------------------------------------------------------------
    # Derived statistics.
    # ------------------------------------------------------------------

    @property
    def l1_misses(self) -> int:
        """Misses of the parallel L1 SA + superpage probe (paper's 'L1')."""
        return self.counters["l1_misses"]

    @property
    def l2_misses(self) -> int:
        return self.counters["l2_misses"]

    @property
    def total_walk_cycles(self) -> int:
        return self.counters["walk_latency"]

    @property
    def total_l2_hit_cycles(self) -> int:
        return self.counters["l2_hits"] * self.config.l2_latency
