"""Hardware page-table walker.

On a TLB miss the walker resolves the translation by reading page-table
entries through the memory hierarchy, accelerated by the MMU page-walk
cache (paper Section 5.2.1). Its result also carries the *coalescing
window*: the eight PTEs sharing the final fetch's 64-byte cache line,
which are the only translations CoLT's coalescing logic may examine
without issuing extra memory references (Section 4.1.4).
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import TranslationError
from repro.common.statistics import CounterSet
from repro.common.types import Translation, WalkResult
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mmu_cache import MMUCache
from repro.osmem.page_table import PageTable


class PageWalker:
    """Walks one process's page table through the cache hierarchy."""

    def __init__(
        self,
        page_table: PageTable,
        caches: CacheHierarchy,
        mmu_cache: Optional[MMUCache] = None,
    ) -> None:
        self._page_table = page_table
        self._caches = caches
        self._mmu_cache = mmu_cache
        self.counters = CounterSet(
            ["walks", "levels_fetched", "total_latency", "superpage_walks"]
        )

    @property
    def page_table(self) -> PageTable:
        return self._page_table

    @property
    def mmu_cache(self) -> Optional[MMUCache]:
        return self._mmu_cache

    def retarget(self, page_table: PageTable) -> None:
        """Point the walker at a different process (context switch)."""
        self._page_table = page_table
        if self._mmu_cache is not None:
            self._mmu_cache.invalidate_all()

    def walk(self, vpn: int) -> WalkResult:
        """Resolve ``vpn``; returns translation + cache-line neighbours.

        Raises:
            TranslationError: the page is not mapped. The simulator
                always faults pages in before issuing accesses, so a
                failed walk indicates a bug, not demand paging.
        """
        translation = self._page_table.lookup(vpn)
        if translation is None:
            raise TranslationError(f"walk of unmapped vpn {vpn}")
        self.counters.increment("walks")

        path = self._page_table.walk_path_addresses(vpn)
        start_level = 0
        latency = 0
        if self._mmu_cache is not None:
            latency += self._mmu_cache.config.latency
            deepest = self._mmu_cache.deepest_cached_level(vpn)
            if deepest is not None:
                # A level-N entry points at the level-N+1 node: the walk
                # resumes at the next fetch.
                start_level = min(deepest + 1, len(path) - 1)

        fetched = 0
        for address in path[start_level:]:
            latency += self._caches.access_pte(address)
            fetched += 1
        if self._mmu_cache is not None:
            self._mmu_cache.fill_walk(vpn, levels_visited=len(path))

        if translation.is_superpage:
            self.counters.increment("superpage_walks")
            line = ()
        else:
            line = tuple(
                t
                for t in self._page_table.pte_cache_line(vpn)
                if t is not None
            )
        self.counters.increment("levels_fetched", fetched)
        self.counters.increment("total_latency", latency)
        return WalkResult(
            translation=translation,
            cache_line_translations=line,
            latency=latency,
            memory_accesses=fetched,
        )
