"""Page-table walker: TLB-miss resolution through the memory hierarchy."""

from repro.walker.page_walker import PageWalker

__all__ = ["PageWalker"]
