"""OS memory-management substrate: the contiguity generators.

This subpackage reimplements, from scratch, every OS mechanism the paper
identifies as a source of page-allocation contiguity (Section 3.2): the
buddy allocator, the memory-compaction daemon, and Transparent Hugepage
Support -- plus the plumbing they need (physical-frame bookkeeping, x86-64
page tables, VMAs, processes, demand faulting) and the load generators
used in the characterisation study (system aging, memhog).
"""

from repro.osmem.buddy import BuddyAllocator, order_for_pages
from repro.osmem.compaction import CompactionDaemon
from repro.osmem.kernel import Kernel, KernelConfig
from repro.osmem.memhog import (
    CHARACTERIZATION_AGING,
    SIMULATION_AGING,
    AgingProfile,
    Memhog,
    age_system,
)
from repro.osmem.page_table import PageTable, SequentialFrameSource
from repro.osmem.physical import KERNEL_PID, FrameRange, PhysicalMemory
from repro.osmem.process import Process
from repro.osmem.thp import SUPERPAGE_ORDER, ThpManager
from repro.osmem.vma import VMA, AddressSpace, VMAKind

__all__ = [
    "AddressSpace",
    "AgingProfile",
    "CHARACTERIZATION_AGING",
    "SIMULATION_AGING",
    "BuddyAllocator",
    "CompactionDaemon",
    "FrameRange",
    "KERNEL_PID",
    "Kernel",
    "KernelConfig",
    "Memhog",
    "PageTable",
    "PhysicalMemory",
    "Process",
    "SUPERPAGE_ORDER",
    "SequentialFrameSource",
    "ThpManager",
    "VMA",
    "VMAKind",
    "age_system",
    "order_for_pages",
]
