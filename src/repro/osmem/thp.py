"""Transparent Hugepage Support (THS) model (paper Section 3.2.3).

Linux's THP tries, at anonymous-fault time, to back a 2MB-aligned virtual
chunk with one naturally-aligned 2MB physical block; when no such block
exists the fault falls back to base pages. Under memory pressure a
splitter daemon breaks existing superpages back into 4KB PTEs.

Two second-order effects of THS are what feed CoLT (Section 3.2.3):

* split superpages leave their 512-frame physical run intact, so the
  resulting 4KB mappings retain large *residual* contiguity;
* THS leans on the compaction daemon, which also hands the buddy
  allocator larger free blocks for ordinary allocations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.common.constants import SUPERPAGE_PAGES
from repro.common.errors import OutOfMemoryError
from repro.common.statistics import CounterSet
from repro.common.types import PageAttributes
from repro.obs.registry import bind_counterset, get_registry
from repro.obs.trace import obs_active
from repro.osmem.buddy import BuddyAllocator, order_for_pages
from repro.osmem.physical import PhysicalMemory
from repro.osmem.process import Process
from repro.osmem.vma import VMA, VMAKind

#: Buddy order of a 2MB block (512 = 2**9 pages).
SUPERPAGE_ORDER = order_for_pages(SUPERPAGE_PAGES)


class ThpManager:
    """Fault-time hugepage allocation and pressure-driven splitting."""

    def __init__(
        self,
        physical: PhysicalMemory,
        buddy: BuddyAllocator,
        notify_invalidation=None,
    ) -> None:
        self._physical = physical
        self._buddy = buddy
        # Called as (pid, chunk_base, 512) when a split replaces a PDE.
        self._notify_invalidation = notify_invalidation
        # (pid, chunk_base_vpn) -> base pfn, in creation order. The
        # splitter consumes from the front (oldest superpage first,
        # approximating Linux's deferred-split shrinker ordering).
        self._active: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self.counters = CounterSet(
            ["huge_faults", "huge_fallbacks", "splits", "collapses"]
        )
        if obs_active():
            bind_counterset(get_registry(), "colt_thp", self.counters)

    @property
    def active_superpages(self) -> int:
        return len(self._active)

    def eligible_chunk(self, process: Process, vma: VMA, vpn: int) -> Optional[int]:
        """2MB chunk base at which a hugepage could be installed for ``vpn``.

        Returns None when the VMA is file-backed (THS covers anonymous
        memory only), the chunk is not fully inside the VMA, or some page
        of the chunk is already populated.
        """
        if vma.kind is not VMAKind.ANONYMOUS or not vma.thp_eligible:
            return None
        chunk = vma.chunk_for(vpn)
        if chunk is None:
            return None
        if not process.chunk_is_unpopulated(chunk):
            return None
        return chunk

    def try_fault_huge(self, process: Process, chunk_base: int) -> bool:
        """Attempt to back ``chunk_base`` with a 2MB block.

        Returns True on success (mapping installed, frames accounted);
        False when no aligned 2MB block is free, in which case the caller
        falls back to the base-page path (and may run compaction first).
        """
        try:
            pfn = self._buddy.alloc_block(SUPERPAGE_ORDER)
        except OutOfMemoryError:
            self.counters.increment("huge_fallbacks")
            return False
        # Buddy blocks are naturally aligned, so pfn % 512 == 0 always
        # holds -- exactly the alignment a superpage needs.
        self._physical.mark_allocated(
            pfn,
            SUPERPAGE_PAGES,
            owner=process.pid,
            movable=True,
            backing_vpn=chunk_base,
        )
        process.page_table.map_superpage(
            chunk_base, pfn, PageAttributes.default_user()
        )
        process.note_populated(chunk_base, SUPERPAGE_PAGES)
        self._active[(process.pid, chunk_base)] = pfn
        self.counters.increment("huge_faults")
        return True

    def split_one(self, resolve_process) -> bool:
        """Split the oldest active superpage into 4KB PTEs.

        The physical frames are untouched: the 512 resulting base-page
        translations remain perfectly contiguous (residual contiguity).
        Returns False when no superpage is left to split.
        """
        while self._active:
            (pid, chunk_base), _pfn = self._active.popitem(last=False)
            process = resolve_process(pid)
            if process is None:
                continue
            process.page_table.split_superpage(chunk_base)
            self.counters.increment("splits")
            if self._notify_invalidation is not None:
                self._notify_invalidation(pid, chunk_base, 512)
            return True
        return False

    def split_for_process(self, process: Process) -> int:
        """Split every superpage of ``process`` (teardown, mprotect...)."""
        count = 0
        for key in [k for k in self._active if k[0] == process.pid]:
            del self._active[key]
            process.page_table.split_superpage(key[1])
            self.counters.increment("splits")
            count += 1
        return count

    def forget_chunk(self, pid: int, chunk_base: int) -> None:
        """Drop one superpage from the active book (caller splits it)."""
        self._active.pop((pid, chunk_base), None)

    def forget_process(self, process: Process) -> None:
        """Drop bookkeeping for an exiting process (frames freed elsewhere)."""
        for key in [k for k in self._active if k[0] == process.pid]:
            del self._active[key]

    def active_for(self, pid: int) -> List[int]:
        """Chunk bases of the active superpages of ``pid``."""
        return [chunk for (owner, chunk) in self._active if owner == pid]
