"""Kernel facade: the complete OS memory-management substrate.

``Kernel`` wires together the physical-memory map, the buddy allocator,
the compaction daemon, and the THP manager, and exposes the operations
the rest of the simulator needs: process creation, mmap/malloc, demand
page faults, munmap, background ticks, and reclaim.

The kernel configuration mirrors the five system settings of the paper's
characterisation study (Section 5.1.1): Transparent Hugepage Support on or
off (``ths_enabled``) and the memory-compaction ``defrag`` flag on
("normal memory compaction": compaction runs on page faults *and* as
background activity) or off ("low memory compaction": compaction only as
a last resort before OOM).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.sanitizers import PageTableSanitizer, resolve_sanitize
from repro.obs.hooks import KernelObserver
from repro.common.errors import ConfigurationError, OutOfMemoryError, PageFaultError
from repro.common.rng import SeedSequencer
from repro.common.statistics import CounterSet
from repro.common.types import PageAttributes, Translation
from repro.osmem.buddy import BuddyAllocator
from repro.osmem.compaction import CompactionDaemon
from repro.osmem.physical import KERNEL_PID, PhysicalMemory
from repro.osmem.process import Process
from repro.osmem.thp import ThpManager
from repro.osmem.vma import VMA, VMAKind


@dataclass(frozen=True)
class KernelConfig:
    """Tunable parameters of the simulated kernel.

    Attributes:
        num_frames: physical memory size in 4KB frames.
        ths_enabled: Transparent Hugepage Support (Section 3.2.3).
        defrag_enabled: the Linux ``defrag`` flag (Section 5.1.1) --
            normal vs. low memory compaction.
        kernel_reserved_fraction: fraction of frames pinned at boot;
            models unmovable kernel pages that cap what compaction can
            achieve.
        kernel_reserved_cluster: pinned frames are reserved in clusters of
            this many frames. Linux's anti-fragmentation groups unmovable
            allocations into pageblocks, so pins cluster rather than
            scatter; this is what leaves some 2MB-aligned regions pin-free
            for THP and compaction.
        table_pool_order: page-table nodes are carved from pinned pools of
            ``2**order`` frames (the MIGRATE_UNMOVABLE pageblock model),
            instead of sprinkling single pinned frames through memory.
        fault_batch: default pages populated per demand fault.
        background_compaction_order: with defrag on, a background tick
            compacts when the buddy allocator cannot supply a block of
            this order despite ample free memory.
        background_compaction_budget: max migrations per background run.
        thp_fault_compaction_budget: max migrations for the direct
            compaction a failed hugepage fault triggers (Linux gives
            direct compaction a tight budget, which is why "aligned 2MB
            regions are rare", Section 3.2.3).
        compaction_cooldown_ticks: minimum ticks between background runs.
        kswapd_watermark: free-memory fraction kswapd maintains by
            reclaiming from victim processes (dropping aged page cache)
            before anything drastic happens.
        pressure_split_free_fraction: when free memory drops below this
            fraction *even after reclaim*, the THS splitter breaks one
            superpage per event (Section 3.2.3's pressure daemon).
        seed: root seed for the kernel's own randomness (pinned-frame
            placement).
    """

    num_frames: int = 1 << 16
    ths_enabled: bool = True
    defrag_enabled: bool = True
    kernel_reserved_fraction: float = 0.03
    kernel_reserved_cluster: int = 64
    table_pool_order: int = 5
    fault_batch: int = 16
    background_compaction_order: int = 9
    background_compaction_budget: int = 512
    thp_fault_compaction_budget: int = 768
    compaction_cooldown_ticks: int = 32
    kswapd_watermark: float = 0.06
    pressure_split_free_fraction: float = 0.03
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.num_frames < 1024:
            raise ConfigurationError("num_frames must be >= 1024")
        if not 0.0 <= self.kernel_reserved_fraction < 0.5:
            raise ConfigurationError("kernel_reserved_fraction out of range")
        if self.fault_batch < 1:
            raise ConfigurationError("fault_batch must be >= 1")

    def with_updates(self, **kwargs) -> "KernelConfig":
        return replace(self, **kwargs)


class Kernel:
    """The simulated operating system's memory manager."""

    def __init__(
        self,
        config: KernelConfig = KernelConfig(),
        sanitize: Optional[bool] = None,
    ) -> None:
        self.config = config
        self.physical = PhysicalMemory(config.num_frames)
        self.buddy = BuddyAllocator(config.num_frames, sanitize=sanitize)
        #: Optional :class:`PageTableSanitizer`; ``sanitize=None`` defers
        #: to the ``COLT_SANITIZE`` environment variable.
        self.sanitizer: Optional[PageTableSanitizer] = None
        if resolve_sanitize(sanitize):
            self.sanitizer = PageTableSanitizer(self)
            if self.buddy.sanitizer is not None:
                # Give the buddy sanitizer the frame map so its quiescent
                # accounting cross-check can compare free-page tallies.
                self.buddy.sanitizer.physical = self.physical
        self._processes: Dict[int, Process] = {}
        self._next_pid = 1
        self._reclaim_victims: List[int] = []
        self._invalidation_listeners: List = []
        self.compaction = CompactionDaemon(
            self.physical,
            self.buddy,
            self._resolve_process,
            notify_invalidation=self._notify_invalidation,
        )
        self.thp = ThpManager(
            self.physical,
            self.buddy,
            notify_invalidation=self._notify_invalidation,
        )
        self.counters = CounterSet(
            [
                "faults",
                "pages_faulted",
                "fault_compactions",
                "background_compactions",
                "oom_compactions",
                "reclaimed_pages",
                "oom_events",
                "pressure_splits",
                "pressure_compactions",
                "table_frames",
            ]
        )
        self._seeds = SeedSequencer(config.seed)
        self._table_pool: List[int] = []
        self._ticks = 0
        self._last_compaction_tick = -config.compaction_cooldown_ticks
        self._obs: Optional[KernelObserver] = KernelObserver.create(self)
        self._reserve_kernel_frames()

    # ------------------------------------------------------------------
    # Boot.
    # ------------------------------------------------------------------

    def _reserve_kernel_frames(self) -> None:
        """Pin clustered frame groups for kernel text/data at boot.

        Pins are placed in clusters (Linux's pageblock anti-fragmentation
        keeps unmovable allocations together), so they bound the largest
        free run compaction can produce without shattering every
        2MB-aligned region the way uniformly-scattered pins would.
        """
        count = int(self.config.num_frames * self.config.kernel_reserved_fraction)
        cluster = max(1, self.config.kernel_reserved_cluster)
        if count == 0:
            return
        rng = self._seeds.rng("kernel.pinned")
        num_clusters = max(1, count // cluster)
        slots = self.config.num_frames // cluster
        picks = rng.choice(slots, size=min(num_clusters, slots), replace=False)
        for slot in sorted(int(s) for s in picks):
            start = slot * cluster
            length = min(cluster, self.config.num_frames - start)
            self.buddy.reserve_range(start, length)
            self.physical.mark_allocated(
                start, length, owner=KERNEL_PID, movable=False, backing_vpn=None
            )

    # ------------------------------------------------------------------
    # Process lifecycle.
    # ------------------------------------------------------------------

    def create_process(
        self, name: str = "", fault_batch: Optional[int] = None
    ) -> Process:
        pid = self._next_pid
        self._next_pid += 1
        process = Process(
            pid,
            name=name,
            allocate_table_frame=self._alloc_table_frame,
            release_table_frame=self._release_table_frame,
            fault_batch=fault_batch or self.config.fault_batch,
        )
        self._processes[pid] = process
        return process

    def exit_process(self, process: Process) -> None:
        """Tear down a process, freeing every frame it owns."""
        self.thp.forget_process(process)
        for translation in list(process.iter_mappings()):
            if translation.is_superpage:
                process.page_table.unmap_superpage(translation.vpn)
                self._free_frames(translation.pfn, 512)
            else:
                process.page_table.unmap_page(translation.vpn)
                self._free_frames(translation.pfn, 1)
        self._processes.pop(process.pid, None)
        if process.pid in self._reclaim_victims:
            self._reclaim_victims.remove(process.pid)

    def processes(self) -> List[Process]:
        return list(self._processes.values())

    def _resolve_process(self, pid: int) -> Optional[Process]:
        return self._processes.get(pid)

    def add_invalidation_listener(self, listener) -> None:
        """Subscribe to TLB-shootdown events.

        ``listener(pid, start_vpn, count)`` fires whenever the kernel
        changes or removes existing translations: munmap, page migration,
        THP splits, and reclaim. The system simulator uses this to keep
        the simulated TLBs coherent with the simulated page tables.
        """
        self._invalidation_listeners.append(listener)

    def _notify_invalidation(self, pid: int, start_vpn: int, count: int) -> None:
        for listener in self._invalidation_listeners:
            listener(pid, start_vpn, count)

    def register_reclaim_victim(self, process: Process) -> None:
        """Mark a process's pages as reclaimable under memory pressure.

        Background-churn processes and memhog register here; reclaiming
        from them models swap-out without modelling a swap device.
        """
        if process.pid not in self._reclaim_victims:
            self._reclaim_victims.append(process.pid)

    def is_reclaim_victim(self, pid: int) -> bool:
        """Whether ``pid``'s pages may be reclaimed under pressure."""
        return pid in self._reclaim_victims

    # ------------------------------------------------------------------
    # Allocation API used by workloads.
    # ------------------------------------------------------------------

    def malloc(
        self,
        process: Process,
        num_pages: int,
        name: str = "heap",
        populate: bool = True,
        align_huge: Optional[bool] = None,
        kind: VMAKind = VMAKind.ANONYMOUS,
        thp_eligible: bool = True,
        populate_batch: Optional[int] = None,
    ) -> VMA:
        """Model a large malloc: one mmap'd VMA, optionally populated.

        With ``populate=True`` the whole extent is faulted immediately in
        request-sized batches -- the paper's observation that applications
        "make malloc calls that simultaneously request a number of
        physical pages together" (Section 3.2.1). With ``populate=False``
        pages arrive by demand faults of ``process.fault_batch``.
        """
        if align_huge is None:
            align_huge = self.config.ths_enabled and kind is VMAKind.ANONYMOUS
        vma = process.mmap(
            num_pages,
            kind=kind,
            name=name,
            align_huge=align_huge and thp_eligible,
            thp_eligible=thp_eligible,
        )
        if populate:
            self.populate_range(
                process, vma.start_vpn, num_pages, batch=populate_batch
            )
        return vma

    def free_vma(self, process: Process, vma: VMA) -> None:
        """munmap an entire VMA, freeing its populated frames."""
        self.unpopulate_range(process, vma.start_vpn, vma.num_pages)
        process.address_space.unmap(vma)

    def populate_range(
        self,
        process: Process,
        start_vpn: int,
        num_pages: int,
        batch: Optional[int] = None,
    ) -> None:
        """Fault in ``[start_vpn, start_vpn + num_pages)`` eagerly.

        ``batch`` is the allocation granularity: one huge malloc requests
        everything at once (batch=None), while a program that builds its
        data structure node by node effectively performs thousands of
        small allocations in address order (batch=1..16). The granularity
        decides how much contiguity the buddy allocator can hand over in
        one piece.
        """
        vpn = start_vpn
        end = start_vpn + num_pages
        while vpn < end:
            if process.is_populated(vpn):
                vpn += 1
                continue
            limit = end - vpn if batch is None else min(batch, end - vpn)
            faulted = self._fault_at(process, vpn, batch_limit=limit)
            vpn += faulted

    def unpopulate_range(self, process: Process, start_vpn: int, num_pages: int) -> None:
        """Unmap and free any populated pages in the range.

        Superpages overlapping the range are split first (as Linux does on
        partial munmap), then their pages inside the range are freed --
        pages outside the range survive as residually-contiguous 4KB
        mappings.
        """
        end = start_vpn + num_pages
        # Split overlapping superpages first.
        for chunk in self.thp.active_for(process.pid):
            if chunk < end and chunk + 512 > start_vpn:
                self._split_chunk(process, chunk)
        run_start = None
        run_pfn = None
        run_len = 0
        for vpn in range(start_vpn, end):
            translation = process.page_table.lookup(vpn)
            if translation is None:
                self._flush_free_run(run_pfn, run_len)
                run_pfn, run_len = None, 0
                continue
            process.page_table.unmap_page(vpn)
            process.note_unpopulated(vpn)
            self._notify_invalidation(process.pid, vpn, 1)
            if run_pfn is not None and translation.pfn == run_pfn + run_len:
                run_len += 1
            else:
                self._flush_free_run(run_pfn, run_len)
                run_pfn, run_len = translation.pfn, 1
        self._flush_free_run(run_pfn, run_len)

    def _flush_free_run(self, pfn: Optional[int], length: int) -> None:
        if pfn is not None and length > 0:
            self._free_frames(pfn, length)

    # ------------------------------------------------------------------
    # Demand faulting.
    # ------------------------------------------------------------------

    def touch(self, process: Process, vpn: int, write: bool = False) -> Translation:
        """Ensure ``vpn`` is populated; returns its translation.

        This is the access path used by the system simulator: an access to
        an unpopulated page takes a demand fault that populates up to
        ``process.fault_batch`` pages.
        """
        if not process.is_populated(vpn):
            process.address_space.require(vpn)
            self._fault_at(process, vpn, batch_limit=process.fault_batch)
        translation = process.page_table.lookup(vpn)
        if translation is None:  # pragma: no cover - internal invariant
            raise PageFaultError(f"vpn {vpn} still unmapped after fault")
        process.page_table.mark_accessed(vpn, dirty=write)
        return translation

    def _fault_at(self, process: Process, vpn: int, batch_limit: int) -> int:
        """Handle a fault at ``vpn``; returns pages populated (>= 1)."""
        faulted = self._do_fault_at(process, vpn, batch_limit)
        if self.sanitizer is not None:
            # The fault is fully retired here -- page table, frame map and
            # buddy allocator are mutually quiescent -- so this is the
            # sanctioned point for cross-structure checks.
            self.sanitizer.after_fault(process, vpn)
        return faulted

    def _do_fault_at(self, process: Process, vpn: int, batch_limit: int) -> int:
        self.counters.increment("faults")
        vma = process.address_space.require(vpn)

        # 1. THP path: a fully-unpopulated, fully-contained 2MB chunk of
        #    an anonymous VMA gets one shot at an order-9 block.
        if self.config.ths_enabled:
            chunk = self.thp.eligible_chunk(process, vma, vpn)
            if chunk is not None and batch_limit >= 1:
                if self.thp.try_fault_huge(process, chunk):
                    self.counters.increment("pages_faulted", 512)
                    self._after_allocation()
                    return max(1, chunk + 512 - vpn)
                if self.config.defrag_enabled:
                    # Linux's defrag-on-fault: compact, then retry once.
                    self.counters.increment("fault_compactions")
                    self.compaction.run(
                        max_migrations=self.config.thp_fault_compaction_budget,
                        until_free_order=9,
                    )
                    if self.thp.try_fault_huge(process, chunk):
                        self.counters.increment("pages_faulted", 512)
                        self._after_allocation()
                        return max(1, chunk + 512 - vpn)

        # 2. Base-page path: allocate a batch of frames, as contiguous as
        #    the buddy allocator can manage, and map them consecutively.
        #    With THS on, never populate past the next 2MB boundary of an
        #    anonymous VMA in one batch -- each fresh chunk must get its
        #    own hugepage attempt, as on Linux.
        if self.config.ths_enabled and vma.kind is VMAKind.ANONYMOUS:
            next_chunk = (vpn // 512 + 1) * 512
            batch_limit = min(batch_limit, next_chunk - vpn)
        batch = process.unpopulated_run_from(vpn, batch_limit)
        batch = max(1, batch)
        runs = self._alloc_with_recovery(batch)
        mapped = 0
        for start_pfn, length in runs:
            self.physical.mark_allocated(
                start_pfn,
                length,
                owner=process.pid,
                movable=True,
                backing_vpn=vpn + mapped,
            )
            for offset in range(length):
                process.page_table.map_page(
                    vpn + mapped + offset,
                    start_pfn + offset,
                    PageAttributes.default_user(),
                )
            process.note_populated(vpn + mapped, length)
            mapped += length
        self.counters.increment("pages_faulted", mapped)
        self._after_allocation()
        return mapped

    def _alloc_with_recovery(self, pages: int) -> List[Tuple[int, int]]:
        """Best-effort contiguous allocation with compaction/reclaim retry."""
        try:
            return self.buddy.alloc_run_best_effort(pages)
        except OutOfMemoryError:
            pass
        # Direct reclaim, then compaction (even with defrag off: this is
        # the last-resort path, not the opportunistic one).
        self.counters.increment("oom_events")
        freed = self._reclaim(pages * 2)
        if self.config.defrag_enabled or freed == 0:
            self.counters.increment("oom_compactions")
            self.compaction.run()
        try:
            return self.buddy.alloc_run_best_effort(pages)
        except OutOfMemoryError as exc:
            raise OutOfMemoryError(
                f"cannot satisfy {pages}-page fault after reclaim "
                f"({self.physical.free_frames} frames free)"
            ) from exc

    def _reclaim(self, pages: int) -> int:
        """Free up to ``pages`` frames from registered victim processes."""
        freed = 0
        for pid in list(self._reclaim_victims):
            victim = self._processes.get(pid)
            if victim is None:
                continue
            for vpn in victim.populated_vpns():
                if freed >= pages:
                    break
                translation = victim.page_table.lookup(vpn)
                if translation is None:
                    continue
                if translation.is_superpage:
                    self._split_chunk(victim, vpn - vpn % 512)
                    translation = victim.page_table.lookup(vpn)
                victim.page_table.unmap_page(vpn)
                victim.note_unpopulated(vpn)
                self._notify_invalidation(victim.pid, vpn, 1)
                self._free_frames(translation.pfn, 1)
                freed += 1
            if freed >= pages:
                break
        self.counters.increment("reclaimed_pages", freed)
        return freed

    def _after_allocation(self) -> None:
        """Pressure checks that follow every allocation."""
        self._maintain_watermark()

    def _maintain_watermark(self) -> None:
        """kswapd: reclaim to the watermark; split THPs as a last resort.

        Reclaim under pressure frees *scattered* frames, so kswapd pairs
        it with a budgeted compaction run whenever high-order blocks are
        missing (Linux's watermark boosting). This coupling is the
        mechanism behind the paper's surprising Section 6.4 result:
        moderate memhog load *increases* the contiguity the benchmark
        receives, because the compaction daemon runs far more often.
        """
        total = self.config.num_frames
        target = int(self.config.kswapd_watermark * total)
        under_pressure = self.physical.free_frames < target
        if under_pressure:
            self._reclaim(target - self.physical.free_frames)
        order = self.config.background_compaction_order
        if (
            under_pressure
            and self.config.defrag_enabled
            and self.physical.free_frames >= (1 << (order - 2))
            and not self.buddy.can_allocate(order - 2)
        ):
            self.counters.increment("pressure_compactions")
            self.compaction.run(
                max_migrations=self.config.background_compaction_budget,
                until_free_order=order - 2,
            )
        split_floor = self.config.pressure_split_free_fraction * total
        if self.physical.free_frames < split_floor:
            if self.thp.split_one(self._resolve_process):
                self.counters.increment("pressure_splits")

    def _split_chunk(self, process: Process, chunk_base: int) -> None:
        """Split one specific superpage of ``process``."""
        key_chunks = self.thp.active_for(process.pid)
        if chunk_base in key_chunks:
            # Remove from the THP manager's book and split.
            self.thp.forget_chunk(process.pid, chunk_base)
            process.page_table.split_superpage(chunk_base)
            self._notify_invalidation(process.pid, chunk_base, 512)

    # ------------------------------------------------------------------
    # Background activity.
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """One unit of background kernel activity.

        With ``defrag`` on, the compaction daemon runs whenever the buddy
        allocator cannot supply a high-order block despite ample free
        memory (Section 5.1.1: the flag "triggers the memory compaction
        daemon both on page faults and as system background activity").
        The THS splitter runs whenever free memory is under pressure.
        """
        self._ticks += 1
        order = self.config.background_compaction_order
        needs_compaction = (
            self.config.defrag_enabled
            and self.physical.free_frames >= (1 << order)
            and not self.buddy.can_allocate(order)
            and self._ticks - self._last_compaction_tick
            >= self.config.compaction_cooldown_ticks
        )
        if needs_compaction:
            self._last_compaction_tick = self._ticks
            self.counters.increment("background_compactions")
            self.compaction.run(
                max_migrations=self.config.background_compaction_budget,
                until_free_order=order,
            )
        self._maintain_watermark()
        if self._obs is not None:
            self._obs.on_tick()

    # ------------------------------------------------------------------
    # Frame plumbing.
    # ------------------------------------------------------------------

    def _free_frames(self, start_pfn: int, length: int) -> None:
        self.physical.mark_free(start_pfn, length)
        self.buddy.free_run(start_pfn, length)

    def _alloc_table_frame(self) -> int:
        """Pinned frame for a page-table node, carved from a pooled block.

        Carving table frames from pinned pool blocks (rather than single
        buddy pages) models Linux's MIGRATE_UNMOVABLE pageblocks: the
        pins stay clustered instead of shotgunning holes through the
        movable zone, which would make compaction useless.
        """
        if not self._table_pool:
            order = self.config.table_pool_order
            try:
                start = self.buddy.alloc_block(order)
            except OutOfMemoryError:
                start = self.buddy.alloc_block(0)
                order = 0
            length = 1 << order
            self.physical.mark_allocated(
                start, length, owner=KERNEL_PID, movable=False, backing_vpn=None
            )
            self._table_pool.extend(range(start, start + length))
        self.counters.increment("table_frames")
        return self._table_pool.pop()

    def _release_table_frame(self, pfn: int) -> None:
        # Returned to the pinned pool; pool blocks are never handed back
        # to the buddy allocator (matching how sparingly Linux drains
        # unmovable pageblocks).
        self._table_pool.append(pfn)
