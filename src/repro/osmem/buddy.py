"""Binary buddy allocator, the primary source of allocation contiguity.

This reimplements the Linux buddy system the paper describes in Section
3.2.1 and Figures 1-2: free physical memory is tracked in per-order free
lists, where order-``k`` lists hold naturally-aligned blocks of ``2**k``
contiguous page frames. Allocation searches upward from the requested
order and iteratively halves oversized blocks; freeing iteratively merges
a block with its buddy whenever the buddy is also free.

Because a block returned for an N-page request is physically contiguous,
the allocator *by construction* hands contiguous physical frames to
contiguous virtual pages whenever the fault path requests frames in
batches -- the intermediate-contiguity regime CoLT exploits.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.analysis.sanitizers import BuddySanitizer, resolve_sanitize
from repro.common.constants import MAX_ORDER
from repro.common.errors import AllocationError, ConfigurationError, OutOfMemoryError
from repro.common.statistics import CounterSet
from repro.obs.registry import bind_counterset, get_registry
from repro.obs.trace import obs_active


def order_for_pages(pages: int) -> int:
    """Smallest order whose block covers ``pages`` (ceil(log2(pages)))."""
    if pages < 1:
        raise AllocationError(f"page count must be >= 1, got {pages}")
    return (pages - 1).bit_length()


class BuddyAllocator:
    """Free-pool manager over a frame space ``[0, num_frames)``.

    The allocator tracks only *free* memory. Callers (the kernel fault
    path, the compaction daemon) pair it with :class:`PhysicalMemory` to
    record per-frame ownership. The class maintains the buddy invariants:

    * every free block is naturally aligned (``start % 2**order == 0``);
    * no two free blocks overlap;
    * no block and its free buddy coexist at the same order (they would
      have been merged).
    """

    def __init__(
        self,
        num_frames: int,
        max_order: int = MAX_ORDER,
        sanitize: Optional[bool] = None,
    ) -> None:
        if num_frames < 1:
            raise ConfigurationError(f"num_frames must be >= 1, got {num_frames}")
        if max_order < 1:
            raise ConfigurationError(f"max_order must be >= 1, got {max_order}")
        self._num_frames = num_frames
        self._max_order = max_order
        #: Optional :class:`BuddySanitizer` hook; ``sanitize=None`` defers
        #: to the ``COLT_SANITIZE`` environment variable.
        self.sanitizer: Optional[BuddySanitizer] = (
            BuddySanitizer(self) if resolve_sanitize(sanitize) else None
        )
        # Per-order LIFO of free block starts. OrderedDict gives O(1)
        # push/pop/remove-by-key, and LIFO matches Linux's hot-block reuse.
        self._free_lists: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(max_order)
        ]
        # start -> order for every free block, for buddy-merge lookups.
        self._block_order: Dict[int, int] = {}
        self.counters = CounterSet(
            ["allocations", "splits", "merges", "frees", "failed_allocations"]
        )
        if obs_active():
            bind_counterset(get_registry(), "colt_buddy", self.counters)
        self._seed_initial_blocks()

    def _seed_initial_blocks(self) -> None:
        """Carve ``[0, num_frames)`` into maximal aligned free blocks."""
        start = 0
        remaining = self._num_frames
        while remaining > 0:
            order = min(
                self._max_order - 1,
                remaining.bit_length() - 1,
                (start & -start).bit_length() - 1 if start else self._max_order - 1,
            )
            self._insert_block(start, order)
            start += 1 << order
            remaining -= 1 << order

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def num_frames(self) -> int:
        return self._num_frames

    @property
    def max_order(self) -> int:
        return self._max_order

    @property
    def free_pages(self) -> int:
        return sum(
            len(blocks) << order
            for order, blocks in enumerate(self._free_lists)
        )

    def free_blocks_at(self, order: int) -> int:
        """Number of free blocks on the order-``order`` list."""
        self._check_order(order)
        return len(self._free_lists[order])

    def free_list_snapshot(self) -> Dict[int, Tuple[int, ...]]:
        """order -> sorted block starts; used by tests and diagnostics."""
        return {
            order: tuple(sorted(blocks))
            for order, blocks in enumerate(self._free_lists)
        }

    def largest_free_order(self) -> Optional[int]:
        """Highest order with a free block, or None when empty."""
        for order in range(self._max_order - 1, -1, -1):
            if self._free_lists[order]:
                return order
        return None

    def can_allocate(self, order: int) -> bool:
        self._check_order(order)
        return any(
            self._free_lists[o] for o in range(order, self._max_order)
        )

    # ------------------------------------------------------------------
    # Allocation (Figure 2: search upward, split downward).
    # ------------------------------------------------------------------

    def alloc_block(self, order: int) -> int:
        """Allocate one naturally-aligned block of ``2**order`` frames.

        Returns the first frame of the block.

        Raises:
            OutOfMemoryError: no free block of the requested or any larger
                order exists.
        """
        self._check_order(order)
        for search_order in range(order, self._max_order):
            if self._free_lists[search_order]:
                start = self._pop_block(search_order)
                # Iteratively halve, returning upper halves to the lists,
                # until we hold a block of exactly the requested order.
                while search_order > order:
                    search_order -= 1
                    buddy = start + (1 << search_order)
                    self._insert_block(buddy, search_order)
                    self.counters.increment("splits")
                self.counters.increment("allocations")
                if self.sanitizer is not None:
                    self.sanitizer.after_op()
                return start
        self.counters.increment("failed_allocations")
        raise OutOfMemoryError(
            f"no free block of order >= {order} "
            f"({self.free_pages} pages free, largest order "
            f"{self.largest_free_order()})"
        )

    def alloc_exact(self, pages: int) -> Tuple[int, int]:
        """Allocate exactly ``pages`` contiguous frames.

        Mirrors Linux's ``alloc_pages_exact``: allocate the covering
        power-of-two block, then free the unused tail back to the buddy
        lists. Returns ``(start, pages)``.
        """
        order = order_for_pages(pages)
        if order >= self._max_order:
            raise OutOfMemoryError(
                f"request for {pages} pages exceeds max block of "
                f"{1 << (self._max_order - 1)} pages"
            )
        start = self.alloc_block(order)
        tail = start + pages
        surplus = (1 << order) - pages
        if surplus:
            self._free_frame_run(tail, surplus)
        return start, pages

    def alloc_run_best_effort(self, pages: int) -> List[Tuple[int, int]]:
        """Allocate ``pages`` frames as few contiguous runs as possible.

        This is the batched fault path: try for a single contiguous run;
        when fragmentation makes that impossible, fall back to the largest
        available blocks. The returned list of ``(start, length)`` runs
        sums to ``pages``.

        Raises:
            OutOfMemoryError: fewer than ``pages`` frames are free in
                total. Any partial allocation is rolled back.
        """
        if pages < 1:
            raise AllocationError(f"page count must be >= 1, got {pages}")
        runs: List[Tuple[int, int]] = []
        remaining = pages
        try:
            while remaining > 0:
                run = self._alloc_up_to(remaining)
                runs.append(run)
                remaining -= run[1]
        except OutOfMemoryError:
            for start, length in runs:
                self._free_frame_run(start, length)
            raise
        return runs

    def _alloc_up_to(self, pages: int) -> Tuple[int, int]:
        """Allocate one run of at most ``pages`` frames (largest feasible)."""
        want_order = min(order_for_pages(pages), self._max_order - 1)
        # Exact-or-larger first: preserves contiguity for the request.
        for order in range(want_order, self._max_order):
            if self._free_lists[order]:
                take = min(pages, 1 << order)
                start, _ = self._alloc_exact_from_order(order, take)
                return start, take
        # Fragmented: fall back to the largest block smaller than wanted.
        for order in range(want_order - 1, -1, -1):
            if self._free_lists[order]:
                start = self.alloc_block(order)
                return start, 1 << order
        raise OutOfMemoryError("buddy allocator exhausted")

    def _alloc_exact_from_order(self, order: int, pages: int) -> Tuple[int, int]:
        start = self.alloc_block(order)
        surplus = (1 << order) - pages
        if surplus:
            self._free_frame_run(start + pages, surplus)
        return start, pages

    def reserve_range(self, start: int, length: int) -> None:
        """Remove an arbitrary free range from the pool (boot-time holes).

        Used to pin kernel text/data or emulate reserved regions. Every
        frame in the range must currently be free.
        """
        # Split any free block overlapping the range down to order 0, then
        # take the frames. Simple and only used at boot, so O(range) is fine.
        for pfn in range(start, start + length):
            self._take_single_frame(pfn)
        self.counters.increment("allocations")
        if self.sanitizer is not None:
            self.sanitizer.after_op()

    def _take_single_frame(self, pfn: int) -> None:
        block = self._find_block_containing(pfn)
        if block is None:
            raise AllocationError(f"frame {pfn} is not free")
        start, order = block
        self._remove_block(start, order)
        # Split until the block is exactly [pfn, pfn+1).
        while order > 0:
            order -= 1
            half = 1 << order
            if pfn < start + half:
                self._insert_block(start + half, order)
            else:
                self._insert_block(start, order)
                start += half
        assert start == pfn

    def _find_block_containing(self, pfn: int) -> Optional[Tuple[int, int]]:
        for order in range(self._max_order):
            start = (pfn >> order) << order
            if self._block_order.get(start) == order:
                return start, order
        return None

    def is_frame_free(self, pfn: int) -> bool:
        """True when ``pfn`` currently sits in some free block."""
        return self._find_block_containing(pfn) is not None

    # ------------------------------------------------------------------
    # Freeing (iterative buddy merge, Section 3.2.1).
    # ------------------------------------------------------------------

    def free_block(self, start: int, order: int) -> None:
        """Return an aligned ``2**order`` block and merge with buddies."""
        self._check_order(order)
        if start % (1 << order) != 0:
            raise AllocationError(
                f"block start {start} not aligned to order {order}"
            )
        if start + (1 << order) > self._num_frames:
            raise AllocationError("block extends past end of memory")
        self.counters.increment("frees")
        while order < self._max_order - 1:
            buddy = start ^ (1 << order)
            if self._block_order.get(buddy) != order:
                break
            self._remove_block(buddy, order)
            start = min(start, buddy)
            order += 1
            self.counters.increment("merges")
        self._insert_block(start, order)
        if self.sanitizer is not None:
            self.sanitizer.after_op()

    def free_run(self, start: int, length: int) -> None:
        """Free an arbitrary (not necessarily aligned) run of frames."""
        if length < 1:
            raise AllocationError(f"run length must be >= 1, got {length}")
        self.counters.increment("frees")
        self._free_frame_run(start, length)

    def _free_frame_run(self, start: int, length: int) -> None:
        """Free ``[start, start+length)`` as maximal aligned blocks."""
        end = start + length
        while start < end:
            # Largest aligned block starting at `start` that fits.
            align_order = (start & -start).bit_length() - 1 if start else self._max_order - 1
            size_order = (end - start).bit_length() - 1
            order = min(align_order, size_order, self._max_order - 1)
            self.free_block(start, order)
            start += 1 << order

    # ------------------------------------------------------------------
    # Free-list plumbing.
    # ------------------------------------------------------------------

    def _insert_block(self, start: int, order: int) -> None:
        if start in self._block_order:
            raise AllocationError(f"double free of block at {start}")
        self._free_lists[order][start] = None
        self._block_order[start] = order

    def _remove_block(self, start: int, order: int) -> None:
        del self._free_lists[order][start]
        del self._block_order[start]

    def _pop_block(self, order: int) -> int:
        start, _ = self._free_lists[order].popitem(last=True)
        del self._block_order[start]
        return start

    def _check_order(self, order: int) -> None:
        if not 0 <= order < self._max_order:
            raise AllocationError(
                f"order {order} out of range [0, {self._max_order})"
            )

    # ------------------------------------------------------------------
    # Invariant check (used by property-based tests).
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any buddy invariant is violated."""
        seen_frames = set()
        for order, blocks in enumerate(self._free_lists):
            for start in blocks:
                assert start % (1 << order) == 0, (
                    f"block {start} misaligned for order {order}"
                )
                assert self._block_order[start] == order
                frames = set(range(start, start + (1 << order)))
                assert not (frames & seen_frames), "overlapping free blocks"
                seen_frames |= frames
                if order < self._max_order - 1:
                    buddy = start ^ (1 << order)
                    assert self._block_order.get(buddy) != order, (
                        f"unmerged buddies at order {order}: {start}, {buddy}"
                    )
        assert len(self._block_order) == sum(
            len(blocks) for blocks in self._free_lists
        )
