"""Process model: address space + page table + population tracking.

A :class:`Process` owns its virtual address space and page table. It does
*not* allocate physical memory itself -- page faults are handled by the
kernel (``repro.osmem.kernel``), which decides between THP, batched buddy
allocation, compaction, and reclaim. The process records which virtual
pages are populated so the fault path and the THP daemon can make the
same decisions Linux makes.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Set

from repro.common.constants import SUPERPAGE_PAGES
from repro.common.types import Translation
from repro.osmem.page_table import PageTable
from repro.osmem.vma import VMA, AddressSpace, VMAKind


class Process:
    """A simulated process.

    Args:
        pid: process id; must be unique and nonzero (0 is the kernel).
        name: human-readable label (benchmark name, "memhog", ...).
        allocate_table_frame / release_table_frame: kernel-provided frame
            source for page-table nodes.
        fault_batch: how many pages the fault path populates around a
            faulting page in one go. Applications that allocate large
            structures up front effectively fault in large batches (the
            paper's Section 3.2.1 malloc argument); pointer-heavy
            allocators fault nearly one page at a time.
    """

    def __init__(
        self,
        pid: int,
        name: str = "",
        allocate_table_frame: Optional[Callable[[], int]] = None,
        release_table_frame: Optional[Callable[[int], None]] = None,
        fault_batch: int = 16,
    ) -> None:
        if pid <= 0:
            raise ValueError(f"pid must be positive, got {pid}")
        if fault_batch < 1:
            raise ValueError(f"fault_batch must be >= 1, got {fault_batch}")
        self.pid = pid
        self.name = name or f"pid{pid}"
        self.fault_batch = fault_batch
        self.address_space = AddressSpace()
        self.page_table = PageTable(allocate_table_frame, release_table_frame)
        self._populated: Set[int] = set()

    # ------------------------------------------------------------------
    # Population bookkeeping (maintained by the kernel's fault path).
    # ------------------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        return len(self._populated)

    def is_populated(self, vpn: int) -> bool:
        return vpn in self._populated

    def note_populated(self, vpn: int, count: int = 1) -> None:
        self._populated.update(range(vpn, vpn + count))

    def note_unpopulated(self, vpn: int, count: int = 1) -> None:
        self._populated.difference_update(range(vpn, vpn + count))

    def unpopulated_run_from(self, vpn: int, limit: int) -> int:
        """Length of the unpopulated run starting at ``vpn``, capped.

        The fault path uses this to size its batch: it never populates
        past an already-present page or the end of the VMA.
        """
        vma = self.address_space.require(vpn)
        run = 0
        while (
            run < limit
            and vpn + run < vma.end_vpn
            and (vpn + run) not in self._populated
        ):
            run += 1
        return run

    def chunk_is_unpopulated(self, chunk_base: int) -> bool:
        """True when no page of the 2MB chunk at ``chunk_base`` is present.

        THS only maps a superpage over a hole; a single populated page in
        the chunk forces the base-page path.
        """
        return all(
            (chunk_base + offset) not in self._populated
            for offset in range(SUPERPAGE_PAGES)
        )

    # ------------------------------------------------------------------
    # Address-space operations (thin wrappers; allocation is the kernel's).
    # ------------------------------------------------------------------

    def mmap(
        self,
        num_pages: int,
        kind: VMAKind = VMAKind.ANONYMOUS,
        name: str = "",
        align_huge: bool = False,
        thp_eligible: bool = True,
    ) -> VMA:
        return self.address_space.map(
            num_pages, kind, name, align_huge, thp_eligible
        )

    def translate(self, vpn: int) -> Optional[Translation]:
        """Current translation for ``vpn``, or None if not yet faulted in."""
        return self.page_table.lookup(vpn)

    def iter_mappings(self) -> Iterator[Translation]:
        return self.page_table.iter_mappings()

    def populated_vpns(self) -> List[int]:
        """Sorted list of resident virtual pages (for reclaim victims)."""
        return sorted(self._populated)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Process(pid={self.pid}, name={self.name!r}, "
            f"resident={self.resident_pages})"
        )
