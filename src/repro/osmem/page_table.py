"""x86-64 four-level radix page table.

The page table is the interface between the OS substrate and the TLB
simulator: the fault path installs translations here, the page walker
reads them back (level by level, so MMU caches and the data caches see
realistic access streams), and the contiguity scanner measures how
contiguous the installed mappings are.

Table nodes occupy real simulated frames. That matters because the walker
fetches PTEs by *physical address* in 64-byte cache lines: the eight PTEs
sharing a line are the only translations CoLT may coalesce without extra
memory references (paper Section 4.1.4), and which PTEs share a line is
determined by their placement inside the table node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.common.constants import (
    BITS_PER_LEVEL,
    PAGE_SIZE,
    PTE_SIZE,
    PTES_PER_CACHE_LINE,
    PTES_PER_TABLE,
    SUPERPAGE_PAGES,
    VPN_BITS,
)
from repro.common.errors import TranslationError
from repro.common.types import PageAttributes, Translation

#: Radix levels, root first: PML4 -> PDPT -> PD -> PT.
LEVEL_NAMES = ("pml4", "pdpt", "pd", "pt")

#: Level index at which 2MB superpage leaves live (the PD).
SUPERPAGE_LEVEL = 2

#: Leaf level for 4KB pages (the PT).
LEAF_LEVEL = 3


def level_index(vpn: int, level: int) -> int:
    """Index into the ``level``-th table node for virtual page ``vpn``."""
    shift = (LEAF_LEVEL - level) * BITS_PER_LEVEL
    return (vpn >> shift) & (PTES_PER_TABLE - 1)


@dataclass
class _LeafEntry:
    """A present leaf translation (4KB PTE or 2MB PDE)."""

    pfn: int
    attributes: PageAttributes
    is_superpage: bool


class _Node:
    """One table node: a 4KB frame holding 512 eight-byte entries."""

    __slots__ = ("frame", "children", "leaves")

    def __init__(self, frame: int) -> None:
        self.frame = frame
        self.children: Dict[int, "_Node"] = {}
        self.leaves: Dict[int, _LeafEntry] = {}

    @property
    def is_empty(self) -> bool:
        return not self.children and not self.leaves

    def entry_physical_address(self, index: int) -> int:
        return self.frame * PAGE_SIZE + index * PTE_SIZE


class SequentialFrameSource:
    """Fallback frame source for page-table nodes.

    Hands out frame numbers from a private high range so standalone page
    tables (unit tests, TLB-only simulations) get realistic, distinct
    physical placement for their nodes without a full kernel.
    """

    def __init__(self, base_frame: int = 1 << 30) -> None:
        self._next = base_frame

    def allocate(self) -> int:
        frame = self._next
        self._next += 1
        return frame

    def release(self, frame: int) -> None:  # pragma: no cover - trivial
        del frame  # frames are never reused; fine for a test source


class PageTable:
    """A per-process x86-64 page table.

    Args:
        allocate_frame: callable returning a fresh physical frame number
            for a new table node (the kernel passes a pinned buddy
            allocation; standalone users get a :class:`SequentialFrameSource`).
        release_frame: callable invoked when a table node is torn down.
    """

    def __init__(
        self,
        allocate_frame: Optional[Callable[[], int]] = None,
        release_frame: Optional[Callable[[int], None]] = None,
    ) -> None:
        if allocate_frame is None:
            source = SequentialFrameSource()
            allocate_frame = source.allocate
            release_frame = source.release
        self._allocate_frame = allocate_frame
        self._release_frame = release_frame or (lambda frame: None)
        self._root = _Node(self._allocate_frame())
        self._mapped_pages = 0
        self._mapped_superpages = 0

    # ------------------------------------------------------------------
    # Mapping installation / removal.
    # ------------------------------------------------------------------

    @property
    def mapped_pages(self) -> int:
        """Number of 4KB leaf mappings (superpages count as 512)."""
        return self._mapped_pages + self._mapped_superpages * SUPERPAGE_PAGES

    @property
    def mapped_superpages(self) -> int:
        return self._mapped_superpages

    def map_page(
        self,
        vpn: int,
        pfn: int,
        attributes: PageAttributes = PageAttributes.default_user(),
    ) -> None:
        """Install a 4KB translation ``vpn -> pfn``."""
        self._check_vpn(vpn)
        node = self._descend_to_pt(vpn, create=True)
        index = level_index(vpn, LEAF_LEVEL)
        if index in node.leaves:
            raise TranslationError(f"vpn {vpn} already mapped")
        node.leaves[index] = _LeafEntry(pfn, attributes, is_superpage=False)
        self._mapped_pages += 1

    def map_superpage(
        self,
        vpn: int,
        pfn: int,
        attributes: PageAttributes = PageAttributes.default_user(),
    ) -> None:
        """Install a 2MB translation covering ``[vpn, vpn + 512)``.

        Both ``vpn`` and ``pfn`` must be 512-page aligned (the paper's
        Section 2.2 alignment requirement for superpages).
        """
        self._check_vpn(vpn)
        if vpn % SUPERPAGE_PAGES != 0 or pfn % SUPERPAGE_PAGES != 0:
            raise TranslationError(
                f"superpage requires 512-page alignment (vpn={vpn}, pfn={pfn})"
            )
        node = self._descend(vpn, SUPERPAGE_LEVEL, create=True)
        index = level_index(vpn, SUPERPAGE_LEVEL)
        if index in node.leaves or index in node.children:
            raise TranslationError(
                f"PD slot for vpn {vpn} already occupied"
            )
        node.leaves[index] = _LeafEntry(pfn, attributes, is_superpage=True)
        self._mapped_superpages += 1

    def unmap_page(self, vpn: int) -> Translation:
        """Remove a 4KB mapping; returns the removed translation."""
        self._check_vpn(vpn)
        path = self._path_nodes(vpn, LEAF_LEVEL)
        node = path[-1]
        if node is None:
            raise TranslationError(f"vpn {vpn} not mapped")
        index = level_index(vpn, LEAF_LEVEL)
        leaf = node.leaves.pop(index, None)
        if leaf is None or leaf.is_superpage:
            raise TranslationError(f"vpn {vpn} has no 4KB mapping")
        self._mapped_pages -= 1
        self._prune(vpn, path)
        return Translation(vpn, leaf.pfn, leaf.attributes, is_superpage=False)

    def unmap_superpage(self, vpn: int) -> Translation:
        """Remove a 2MB mapping; returns its base translation."""
        self._check_vpn(vpn)
        if vpn % SUPERPAGE_PAGES != 0:
            raise TranslationError(f"vpn {vpn} is not superpage aligned")
        path = self._path_nodes(vpn, SUPERPAGE_LEVEL)
        node = path[-1]
        index = level_index(vpn, SUPERPAGE_LEVEL)
        leaf = node.leaves.pop(index, None) if node else None
        if leaf is None or not leaf.is_superpage:
            raise TranslationError(f"vpn {vpn} has no superpage mapping")
        self._mapped_superpages -= 1
        self._prune(vpn, path)
        return Translation(vpn, leaf.pfn, leaf.attributes, is_superpage=True)

    def split_superpage(self, vpn: int) -> None:
        """Break a 2MB mapping into 512 4KB PTEs with the same frames.

        This is the THS splitting daemon's operation (Section 3.2.3). The
        physical frames are untouched, so the 512-page physical contiguity
        survives as *residual* base-page contiguity -- one of the paper's
        key observations about why THS feeds CoLT even when superpages
        don't survive.
        """
        base = self.unmap_superpage(vpn)
        for offset in range(SUPERPAGE_PAGES):
            self.map_page(vpn + offset, base.pfn + offset, base.attributes)

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------

    def lookup(self, vpn: int) -> Optional[Translation]:
        """Resolve ``vpn`` to a translation, or None if unmapped.

        For pages inside a superpage the returned translation names the
        exact 4KB page (``pfn`` offset into the superpage frame run) with
        ``is_superpage=True``.
        """
        self._check_vpn(vpn)
        node = self._root
        for level in range(1, LEAF_LEVEL + 1):
            index = level_index(vpn, level - 1)
            leaf = node.leaves.get(index)
            if leaf is not None and leaf.is_superpage:
                offset = vpn % SUPERPAGE_PAGES
                return Translation(
                    vpn, leaf.pfn + offset, leaf.attributes, is_superpage=True
                )
            child = node.children.get(index)
            if child is None:
                return None
            node = child
        leaf = node.leaves.get(level_index(vpn, LEAF_LEVEL))
        if leaf is None:
            return None
        return Translation(vpn, leaf.pfn, leaf.attributes, is_superpage=False)

    def superpage_base(self, vpn: int) -> Optional[Translation]:
        """If ``vpn`` lies in a superpage, its base translation; else None."""
        base_vpn = vpn - (vpn % SUPERPAGE_PAGES)
        node = self._path_nodes(base_vpn, SUPERPAGE_LEVEL)[-1]
        if node is None:
            return None
        leaf = node.leaves.get(level_index(base_vpn, SUPERPAGE_LEVEL))
        if leaf is None or not leaf.is_superpage:
            return None
        return Translation(base_vpn, leaf.pfn, leaf.attributes, is_superpage=True)

    def is_mapped(self, vpn: int) -> bool:
        return self.lookup(vpn) is not None

    def set_attributes(self, vpn: int, attributes: PageAttributes) -> None:
        """Replace the attribute bits of an existing 4KB mapping."""
        node = self._descend_to_pt(vpn, create=False)
        if node is None:
            raise TranslationError(f"vpn {vpn} not mapped")
        leaf = node.leaves.get(level_index(vpn, LEAF_LEVEL))
        if leaf is None:
            raise TranslationError(f"vpn {vpn} not mapped")
        leaf.attributes = attributes

    def mark_accessed(self, vpn: int, dirty: bool = False) -> None:
        """Set the ACCESSED (and optionally DIRTY) bit, as a walk would."""
        node = self._descend_to_pt(vpn, create=False)
        leaf = node.leaves.get(level_index(vpn, LEAF_LEVEL)) if node else None
        if leaf is None:
            base = self.superpage_base(vpn)
            if base is None:
                raise TranslationError(f"vpn {vpn} not mapped")
            # Superpages keep a single A/D pair on the PDE.
            pd = self._path_nodes(base.vpn, SUPERPAGE_LEVEL)[-1]
            leaf = pd.leaves[level_index(base.vpn, SUPERPAGE_LEVEL)]
        leaf.attributes |= PageAttributes.ACCESSED
        if dirty:
            leaf.attributes |= PageAttributes.DIRTY

    # ------------------------------------------------------------------
    # Walker support.
    # ------------------------------------------------------------------

    def walk_path_addresses(self, vpn: int) -> List[int]:
        """Physical addresses of each table entry read by a walk of ``vpn``.

        Returns one address per level actually visited (a superpage walk
        stops at the PD, so it returns three addresses; a full walk four).
        The walker issues these as cache accesses.
        """
        self._check_vpn(vpn)
        addresses: List[int] = []
        node = self._root
        for level in range(LEAF_LEVEL + 1):
            index = level_index(vpn, level)
            addresses.append(node.entry_physical_address(index))
            leaf = node.leaves.get(index)
            if leaf is not None:
                return addresses
            child = node.children.get(index)
            if child is None:
                return addresses  # walk terminates at a non-present entry
            node = child
        return addresses

    def pte_cache_line(self, vpn: int) -> Tuple[Optional[Translation], ...]:
        """The eight translations sharing ``vpn``'s PTE cache line.

        PTEs are 8 bytes and cache lines 64, so the line covers VPNs
        ``[vpn & ~7, (vpn & ~7) + 8)``. Unmapped slots come back as None.
        Superpage translations have no 4KB PTE line; callers should check
        :meth:`superpage_base` first.
        """
        self._check_vpn(vpn)
        line_base = vpn & ~(PTES_PER_CACHE_LINE - 1)
        node = self._descend_to_pt(line_base, create=False)
        result: List[Optional[Translation]] = []
        for offset in range(PTES_PER_CACHE_LINE):
            page_vpn = line_base + offset
            leaf = (
                node.leaves.get(level_index(page_vpn, LEAF_LEVEL))
                if node is not None
                else None
            )
            if leaf is None or leaf.is_superpage:
                result.append(None)
            else:
                result.append(
                    Translation(page_vpn, leaf.pfn, leaf.attributes, False)
                )
        return tuple(result)

    # ------------------------------------------------------------------
    # Iteration (contiguity scanner).
    # ------------------------------------------------------------------

    def iter_mappings(self) -> Iterator[Translation]:
        """Yield all leaf translations in ascending VPN order.

        Superpage leaves are yielded once, as their base translation with
        ``is_superpage=True``.
        """
        yield from self._iter_node(self._root, 0, 0)

    def _iter_node(
        self, node: _Node, level: int, vpn_prefix: int
    ) -> Iterator[Translation]:
        shift = (LEAF_LEVEL - level) * BITS_PER_LEVEL
        for index in sorted(set(node.children) | set(node.leaves)):
            vpn_base = vpn_prefix | (index << shift)
            leaf = node.leaves.get(index)
            if leaf is not None:
                yield Translation(
                    vpn_base, leaf.pfn, leaf.attributes, leaf.is_superpage
                )
            else:
                yield from self._iter_node(
                    node.children[index], level + 1, vpn_base
                )

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _descend(self, vpn: int, target_level: int, create: bool) -> Optional[_Node]:
        """Walk to the node at ``target_level`` along ``vpn``'s path."""
        node = self._root
        for level in range(target_level):
            index = level_index(vpn, level)
            if index in node.leaves:
                if not create:
                    # A superpage leaf blocks the path; there is no PT
                    # node below it to return.
                    return None
                raise TranslationError(
                    f"vpn {vpn}: level-{level} entry is a leaf; cannot descend"
                )
            child = node.children.get(index)
            if child is None:
                if not create:
                    return None
                child = _Node(self._allocate_frame())
                node.children[index] = child
            node = child
        return node

    def _descend_to_pt(self, vpn: int, create: bool) -> Optional[_Node]:
        return self._descend(vpn, LEAF_LEVEL, create)

    def _path_nodes(self, vpn: int, target_level: int) -> List[Optional[_Node]]:
        """Nodes along the path root..target_level (None past a hole)."""
        nodes: List[Optional[_Node]] = [self._root]
        node: Optional[_Node] = self._root
        for level in range(target_level):
            if node is None:
                nodes.append(None)
                continue
            node = node.children.get(level_index(vpn, level))
            nodes.append(node)
        return nodes

    def _prune(self, vpn: int, path: List[Optional[_Node]]) -> None:
        """Free table nodes that became empty after an unmap."""
        for level in range(len(path) - 1, 0, -1):
            node = path[level]
            if node is None or not node.is_empty:
                break
            parent = path[level - 1]
            assert parent is not None
            del parent.children[level_index(vpn, level - 1)]
            self._release_frame(node.frame)

    @staticmethod
    def _check_vpn(vpn: int) -> None:
        if not 0 <= vpn < (1 << VPN_BITS):
            raise TranslationError(f"vpn {vpn} outside canonical address space")
