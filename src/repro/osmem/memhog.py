"""System-load and fragmentation utilities: memhog and system aging.

The paper loads the machine two ways before measuring contiguity
(Section 5.1.1): the system has "already run a number of applications
... for two months" (we reproduce this with :func:`age_system`, a burst
of allocate/free churn from background processes), and the ``memhog``
utility pins 25% or 50% of memory (reproduced by :class:`Memhog`).

Memhog's pages are ordinary movable user pages; its effect on contiguity
is indirect and double-edged, exactly as the paper observes (Section
6.4): occupying memory raises pressure, which triggers the compaction
daemon more often, which can *increase* the contiguity available to the
workload -- until, at 50%, sheer occupancy wins and contiguity drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.common.rng import SeedSequencer
from repro.osmem.kernel import Kernel
from repro.osmem.process import Process
from repro.osmem.vma import VMAKind


@dataclass(frozen=True)
class AgingProfile:
    """Parameters for :func:`age_system` churn.

    Attributes:
        fill_free_fraction: phase 1 allocates churn until free memory
            drops below this fraction. A machine that has run "a number
            of applications for two months" (Section 5.1.1) has had its
            page cache touch essentially every frame, so aging must fill
            memory, not just nibble at it.
        drain_free_fraction: phase 2 frees churn back until at least this
            fraction is free again, leaving the survivors (and the holes
            punched through them) scattered across all of memory.
        max_alloc_pages: allocation sizes are drawn log-uniformly in
            [1, max_alloc_pages].
        interleave_release_fraction: during phase 1, fraction of steps
            that also free an existing allocation, mixing lifetimes.
        hole_punch_fraction: fraction of the frees that release only a
            strided sub-range of the VMA instead of all of it. Long-lived
            allocations with holes punched through them are the dominant
            source of external fragmentation on real systems -- whole-VMA
            frees mostly merge back into large buddy blocks.
        hole_stride: granularity of hole punching: alternating
            ``hole_stride``-page groups are freed/kept.
        resident_fraction_file_backed: fraction of surviving allocations
            tagged file-backed (page cache), which THS can never collapse.
        settle_ticks: background ticks run after the drain, letting
            kcompactd-style compaction rebuild a few high-order free
            blocks -- the blocks opportunistic THP allocations live off.
        consume_high_orders: if set, a resident hog allocates away every
            free block of this order or larger after the churn settles.
            Models the long-uptime depletion of *huge* free blocks (the
            reason "aligned 2MB regions are rare", Section 3.2.3) without
            shattering the mid-order blocks CoLT's contiguity lives off.
    """

    fill_free_fraction: float = 0.06
    drain_free_fraction: float = 0.42
    max_alloc_pages: int = 256
    interleave_release_fraction: float = 0.3
    hole_punch_fraction: float = 0.55
    hole_stride: int = 16
    resident_fraction_file_backed: float = 0.5
    settle_ticks: int = 96
    consume_high_orders: Optional[int] = None


def age_system(
    kernel: Kernel,
    seeds: SeedSequencer,
    profile: AgingProfile = AgingProfile(),
) -> List[Process]:
    """Fragment a freshly-booted kernel like a long-running system.

    Spawns background processes that allocate and free in interleaved,
    random-sized bursts -- some frees releasing whole regions, others
    punching strided holes through them -- leaving a realistic mix of
    resident allocations and buddy-list shrapnel. Returns the surviving
    background processes (already registered as reclaim victims).
    """
    rng = seeds.rng("aging")
    daemons = [
        kernel.create_process(name=f"background{i}", fault_batch=4)
        for i in range(4)
    ]
    for daemon in daemons:
        kernel.register_reclaim_victim(daemon)

    total = kernel.config.num_frames
    live_vmas = []  # (process, vma)
    op = 0

    # Phase 1: fill memory, interleaving allocations with occasional frees
    # so surviving regions end up with mixed neighbours.
    while kernel.physical.free_frames / total > profile.fill_free_fraction:
        process = daemons[int(rng.integers(len(daemons)))]
        log_max = np.log2(profile.max_alloc_pages)
        pages = max(1, int(2 ** rng.uniform(0, log_max)))
        pages = min(pages, max(1, kernel.physical.free_frames // 2))
        kind = (
            VMAKind.FILE_BACKED
            if rng.random() < profile.resident_fraction_file_backed
            else VMAKind.ANONYMOUS
        )
        try:
            vma = kernel.malloc(
                process, pages, name=f"churn{op}", populate=True, kind=kind
            )
        except OutOfMemoryError:
            break
        live_vmas.append((process, vma))
        op += 1
        if live_vmas and rng.random() < profile.interleave_release_fraction:
            index = int(rng.integers(len(live_vmas)))
            _release(kernel, live_vmas, index, rng, profile)
        kernel.tick()

    # Phase 2: drain back to the target free fraction. Frees hit random
    # survivors, and most punch strided holes instead of vacating whole
    # regions -- this is what shatters the buddy free lists.
    while (
        live_vmas
        and kernel.physical.free_frames / total < profile.drain_free_fraction
    ):
        index = int(rng.integers(len(live_vmas)))
        _release(kernel, live_vmas, index, rng, profile)
        kernel.tick()

    # Settle: background compaction rebuilds some high-order blocks, as
    # kcompactd does on a real machine once the pressure subsides.
    for _ in range(profile.settle_ticks):
        kernel.tick()

    if profile.consume_high_orders is not None:
        _consume_high_orders(kernel, profile.consume_high_orders)
    return daemons


def _consume_high_orders(kernel: Kernel, order: int) -> None:
    """Break every free block of ``order`` or larger into halves.

    Each block is split around one pinned kernel page placed at its
    midpoint, so the buddy allocator can never re-merge the halves: the
    order-(order-1) supply survives intact while aligned ``order`` blocks
    -- the ones THP needs -- disappear, exactly the state of a machine
    whose uptime has eaten its huge blocks but not its medium ones.
    """
    from repro.osmem.physical import KERNEL_PID

    while kernel.buddy.can_allocate(order):
        start = kernel.buddy.alloc_block(order)
        size = 1 << order
        mid = start + size // 2
        kernel.physical.mark_allocated(
            mid, 1, owner=KERNEL_PID, movable=False, backing_vpn=None
        )
        kernel.buddy.free_run(start, size // 2)
        if size // 2 - 1 > 0:
            kernel.buddy.free_run(mid + 1, size // 2 - 1)


def _release(kernel, live_vmas, index, rng, profile: AgingProfile) -> None:
    """Free one live churn VMA, wholly or by punching holes.

    Small regions get holes punched through them (allocator churn inside
    long-lived heaps); large regions are usually vacated whole (a big
    process or file mapping going away), which is what occasionally
    leaves the buddy allocator genuinely large free blocks -- the blocks
    opportunistic THP lives off.
    """
    process, vma = live_vmas.pop(index)
    punch = profile.hole_punch_fraction
    if vma.num_pages > 4 * profile.hole_stride:
        punch *= 0.5
    if rng.random() < punch:
        _punch_holes(kernel, process, vma, profile.hole_stride)
    else:
        kernel.free_vma(process, vma)


def _punch_holes(kernel: Kernel, process: Process, vma, stride: int) -> None:
    """Free alternating ``stride``-page groups of a VMA (madvise(DONTNEED))."""
    offset = 0
    while offset < vma.num_pages:
        length = min(stride, vma.num_pages - offset)
        kernel.unpopulate_range(process, vma.start_vpn + offset, length)
        offset += 2 * stride


#: The heavily-aged, live-load machine of the paper's real-system
#: characterisation (Sections 5.1, 6): two months of uptime, punched-up
#: buddy lists, intermediate contiguity in the tens of pages.
CHARACTERIZATION_AGING = AgingProfile()

#: The paper's trace-driven simulations (Sections 5.2, 7) boot a fresh
#: kernel per benchmark: mild fragmentation, high base-page contiguity,
#: and -- because order-9 blocks are already broken -- only a sparse
#: sprinkling of superpages ("superpages are used sparingly").
SIMULATION_AGING = AgingProfile(
    fill_free_fraction=0.72,
    drain_free_fraction=0.82,
    max_alloc_pages=256,
    hole_punch_fraction=0.25,
    hole_stride=64,
    settle_ticks=0,
    consume_high_orders=9,
)


class Memhog:
    """The memory-fragmentation utility of the paper's load studies.

    Occupies ``fraction`` of physical memory with many independently-sized
    anonymous allocations. Its process registers as a reclaim victim, so
    under extreme pressure the kernel can push it out (as swap would).
    """

    def __init__(
        self,
        kernel: Kernel,
        fraction: float,
        seeds: Optional[SeedSequencer] = None,
    ) -> None:
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(
                f"memhog fraction must be in (0, 1), got {fraction}"
            )
        self._kernel = kernel
        self._fraction = fraction
        self._seeds = seeds or SeedSequencer(kernel.config.seed)
        self.process: Optional[Process] = None

    @property
    def target_pages(self) -> int:
        return int(self._kernel.config.num_frames * self._fraction)

    def start(self) -> Process:
        """Allocate the configured share of memory; returns the process."""
        if self.process is not None:
            raise ConfigurationError("memhog already started")
        rng = self._seeds.rng("memhog")
        process = self._kernel.create_process(name="memhog", fault_batch=8)
        self._kernel.register_reclaim_victim(process)
        remaining = self.target_pages
        chunk_index = 0
        while remaining > 0:
            # memhog touches memory in modest chunks; the spread of sizes
            # is what makes its footprint fragmenting rather than one
            # giant (and perfectly contiguous) slab.
            pages = int(min(remaining, 2 ** rng.uniform(3, 9)))
            pages = max(1, pages)
            try:
                self._kernel.malloc(
                    process, pages, name=f"memhog{chunk_index}", populate=True
                )
            except OutOfMemoryError:
                break
            remaining -= pages
            chunk_index += 1
            self._kernel.tick()
        self.process = process
        return process

    def stop(self) -> None:
        """Release all of memhog's memory."""
        if self.process is None:
            return
        self._kernel.exit_process(self.process)
        self.process = None
