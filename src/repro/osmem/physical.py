"""Physical-memory frame bookkeeping.

``PhysicalMemory`` models the machine's RAM as an array of page frames and
tracks, for every frame, whether it is free or allocated, who owns it, which
virtual page it backs (the reverse mapping needed by the compaction daemon
to fix up page tables after migration), and whether it is *movable*.

Movability mirrors Linux: ordinary user pages are movable, while kernel
metadata (page-table nodes and other pinned allocations) is not. The
compaction daemon of Figure 3 only relocates movable pages, so scattering a
few pinned frames through memory is exactly what limits compaction on a
long-running system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.common.errors import AllocationError, ConfigurationError

#: Owner pid used for kernel-internal (pinned, unmovable) allocations.
KERNEL_PID = 0

#: Sentinel stored in the owner array for free frames.
NO_OWNER = -1

#: Sentinel stored in the backing-vpn array when a frame backs no page
#: (free frames and kernel frames).
NO_VPN = -1


@dataclass(frozen=True)
class FrameRange:
    """A run of physical frames ``[start, start + length)``."""

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.length < 1:
            raise ValueError(f"invalid frame range ({self.start}, {self.length})")

    @property
    def end(self) -> int:
        return self.start + self.length

    def frames(self) -> Iterator[int]:
        return iter(range(self.start, self.end))


class PhysicalMemory:
    """Per-frame metadata for the simulated machine's RAM.

    The class enforces the free/allocated state machine: allocating an
    already-allocated frame or freeing a free frame raises, which is how
    tests catch buddy-allocator and compaction bugs.
    """

    def __init__(self, num_frames: int) -> None:
        if num_frames < 1:
            raise ConfigurationError(f"num_frames must be >= 1, got {num_frames}")
        self._num_frames = num_frames
        self._allocated = np.zeros(num_frames, dtype=bool)
        self._movable = np.zeros(num_frames, dtype=bool)
        self._owner = np.full(num_frames, NO_OWNER, dtype=np.int64)
        self._backing_vpn = np.full(num_frames, NO_VPN, dtype=np.int64)

    # ------------------------------------------------------------------
    # Basic queries.
    # ------------------------------------------------------------------

    @property
    def num_frames(self) -> int:
        return self._num_frames

    @property
    def allocated_frames(self) -> int:
        return int(self._allocated.sum())

    @property
    def free_frames(self) -> int:
        return self._num_frames - self.allocated_frames

    def is_allocated(self, pfn: int) -> bool:
        self._check_pfn(pfn)
        return bool(self._allocated[pfn])

    def is_free(self, pfn: int) -> bool:
        return not self.is_allocated(pfn)

    def is_movable(self, pfn: int) -> bool:
        self._check_pfn(pfn)
        return bool(self._allocated[pfn] and self._movable[pfn])

    def owner_of(self, pfn: int) -> int:
        """Owning pid, or NO_OWNER for free frames."""
        self._check_pfn(pfn)
        return int(self._owner[pfn])

    def backing_vpn_of(self, pfn: int) -> int:
        """Virtual page this frame backs, or NO_VPN."""
        self._check_pfn(pfn)
        return int(self._backing_vpn[pfn])

    def range_is_free(self, start: int, length: int) -> bool:
        self._check_range(start, length)
        return not self._allocated[start : start + length].any()

    # ------------------------------------------------------------------
    # State transitions.
    # ------------------------------------------------------------------

    def mark_allocated(
        self,
        start: int,
        length: int,
        owner: int,
        movable: bool,
        backing_vpn: Optional[int] = None,
    ) -> None:
        """Transition ``[start, start+length)`` from free to allocated.

        Args:
            owner: owning pid (KERNEL_PID for kernel allocations).
            movable: whether the compaction daemon may relocate the frames.
            backing_vpn: virtual page backed by ``start``; consecutive
                frames are assumed to back consecutive virtual pages, which
                matches how the fault path installs batched allocations.
                Pass None for frames that back no virtual page.
        """
        self._check_range(start, length)
        region = self._allocated[start : start + length]
        if region.any():
            raise AllocationError(
                f"frames in [{start}, {start + length}) already allocated"
            )
        region[:] = True
        self._movable[start : start + length] = movable
        self._owner[start : start + length] = owner
        if backing_vpn is None:
            self._backing_vpn[start : start + length] = NO_VPN
        else:
            self._backing_vpn[start : start + length] = np.arange(
                backing_vpn, backing_vpn + length, dtype=np.int64
            )

    def mark_free(self, start: int, length: int) -> None:
        """Transition ``[start, start+length)`` from allocated to free."""
        self._check_range(start, length)
        region = self._allocated[start : start + length]
        if not region.all():
            raise AllocationError(
                f"frames in [{start}, {start + length}) not all allocated"
            )
        region[:] = False
        self._movable[start : start + length] = False
        self._owner[start : start + length] = NO_OWNER
        self._backing_vpn[start : start + length] = NO_VPN

    def retag(self, pfn: int, owner: int, backing_vpn: int) -> None:
        """Update ownership metadata of an allocated frame (migration)."""
        self._check_pfn(pfn)
        if not self._allocated[pfn]:
            raise AllocationError(f"cannot retag free frame {pfn}")
        self._owner[pfn] = owner
        self._backing_vpn[pfn] = backing_vpn

    # ------------------------------------------------------------------
    # Scans used by the compaction daemon and fragmentation metrics.
    # ------------------------------------------------------------------

    def movable_frames_ascending(self) -> Iterator[int]:
        """Movable allocated frames from the bottom of memory upwards.

        This is the compaction daemon's migrate scanner (Figure 3, left)."""
        movable = np.flatnonzero(self._allocated & self._movable)
        return iter(int(p) for p in movable)

    def free_frames_descending(self) -> Iterator[int]:
        """Free frames from the top of memory downwards.

        This is the compaction daemon's free scanner (Figure 3, middle)."""
        free = np.flatnonzero(~self._allocated)
        return iter(int(p) for p in free[::-1])

    def free_runs(self) -> List[FrameRange]:
        """Maximal runs of free frames, ascending by start."""
        free = ~self._allocated
        if not free.any():
            return []
        padded = np.concatenate(([False], free, [False]))
        edges = np.flatnonzero(padded[1:] != padded[:-1])
        starts, ends = edges[::2], edges[1::2]
        return [FrameRange(int(s), int(e - s)) for s, e in zip(starts, ends)]

    def largest_free_run(self) -> int:
        """Length of the largest free run (0 when memory is full)."""
        runs = self.free_runs()
        if not runs:
            return 0
        return max(run.length for run in runs)

    def fragmentation_index(self) -> float:
        """1 - largest_free_run / free_frames; 0 when free memory is one run.

        A standard external-fragmentation measure: near 0 means free memory
        is compact, near 1 means it is shattered into tiny runs.
        """
        free = self.free_frames
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_run() / free

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _check_pfn(self, pfn: int) -> None:
        if not 0 <= pfn < self._num_frames:
            raise AllocationError(
                f"pfn {pfn} out of range [0, {self._num_frames})"
            )

    def _check_range(self, start: int, length: int) -> None:
        if length < 1:
            raise AllocationError(f"range length must be >= 1, got {length}")
        self._check_pfn(start)
        if start + length > self._num_frames:
            raise AllocationError(
                f"range [{start}, {start + length}) exceeds memory of "
                f"{self._num_frames} frames"
            )
