"""Memory-compaction daemon (paper Figure 3, Section 3.2.2).

The daemon defragments physical memory the way Linux's ``kcompactd``/
``compact_zone`` does: a *migrate scanner* walks from the bottom of
physical memory collecting movable allocated pages, a *free scanner*
walks from the top collecting free frames, and pages are migrated from
the former to the latter until the scanners meet. The result is that
movable data accumulates at the top of memory and free frames coalesce
at the bottom, where the buddy allocator merges them into large blocks.

Migration must preserve virtual-memory semantics, so the daemon uses the
reverse mapping stored in :class:`~repro.osmem.physical.PhysicalMemory`
(frame -> owning pid + backed vpn) and a caller-supplied process registry
to rewrite the owning page table after each copy. Pinned frames (kernel
allocations, page-table nodes) are never moved -- exactly the frames that
limit compaction on real systems.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.statistics import CounterSet
from repro.obs.registry import bind_counterset, get_registry
from repro.obs.trace import current_tracer, obs_active
from repro.osmem.buddy import BuddyAllocator
from repro.osmem.physical import KERNEL_PID, PhysicalMemory

#: Callback resolving a pid to the object holding its page table. The
#: object must expose ``page_table`` with map_page/unmap_page.
ProcessResolver = Callable[[int], object]


class CompactionDaemon:
    """Two-scanner compaction over a (physmem, buddy) pair."""

    def __init__(
        self,
        physical: PhysicalMemory,
        buddy: BuddyAllocator,
        resolve_process: ProcessResolver,
        notify_invalidation=None,
    ) -> None:
        self._physical = physical
        self._buddy = buddy
        self._resolve_process = resolve_process
        # Called as (pid, vpn, count) after each migration rewrites a PTE;
        # the system simulator uses it to issue TLB shootdowns.
        self._notify_invalidation = notify_invalidation
        self.counters = CounterSet(
            ["runs", "pages_migrated", "pages_skipped", "aborted_runs"]
        )
        self._tracer = current_tracer()
        if obs_active():
            bind_counterset(get_registry(), "colt_compaction", self.counters)
        # Linux's compact_zone resumes scanning where the previous run
        # stopped; without the cursor, budgeted runs would re-migrate the
        # same low-memory pages forever.
        self._migrate_cursor = 0

    def run(
        self,
        max_migrations: Optional[int] = None,
        until_free_order: Optional[int] = None,
    ) -> int:
        """One compaction pass; returns the number of pages migrated.

        Args:
            max_migrations: stop after this many migrations (the daemon is
                incremental on real systems; None means run to completion,
                i.e. until the scanners meet).
            until_free_order: stop as soon as the buddy allocator can
                satisfy a block of this order -- Linux's ``compact_zone``
                equally stops once the allocation that triggered it can
                succeed, which is what keeps real compaction from ever
                producing a perfectly-defragmented machine.
        """
        if self._tracer is None:
            return self._run(max_migrations, until_free_order)
        with self._tracer.span(
            "compaction.run",
            cat="os",
            max_migrations=max_migrations,
            until_free_order=until_free_order,
        ) as span_args:
            migrated = self._run(max_migrations, until_free_order)
            span_args["migrated"] = migrated
            return migrated

    def _run(
        self,
        max_migrations: Optional[int],
        until_free_order: Optional[int],
    ) -> int:
        self.counters.increment("runs")
        migrated = 0
        check_interval = 32
        movable = list(self._physical.movable_frames_ascending())
        if not movable:
            return 0
        # Resume after the cursor, wrapping once past the end.
        split = 0
        while split < len(movable) and movable[split] < self._migrate_cursor:
            split += 1
        movable_iter = iter(movable[split:] + movable[:split])
        free_candidates = list(self._physical.free_frames_descending())
        free_index = 0

        for source in movable_iter:
            self._migrate_cursor = source + 1
            if max_migrations is not None and migrated >= max_migrations:
                self.counters.increment("aborted_runs")
                break
            if (
                until_free_order is not None
                and migrated % check_interval == 0
                and self._buddy.can_allocate(until_free_order)
            ):
                break
            # Advance the free scanner past frames we already consumed or
            # that fell below the migrate scanner.
            while (
                free_index < len(free_candidates)
                and not self._physical.is_free(free_candidates[free_index])
            ):
                free_index += 1
            if free_index >= len(free_candidates):
                break
            target = free_candidates[free_index]
            if target <= source:
                # Scanners met: everything below is as compact as it gets.
                break
            if self._migrate(source, target):
                migrated += 1
                free_index += 1
            else:
                self.counters.increment("pages_skipped")
        self.counters.increment("pages_migrated", migrated)
        return migrated

    def _migrate(self, source: int, target: int) -> bool:
        """Move one movable page from ``source`` to ``target``.

        Returns False when the page cannot be migrated (owner vanished or
        the mapping is part of a superpage, which Linux migrates as a unit
        and we conservatively skip).
        """
        pid = self._physical.owner_of(source)
        vpn = self._physical.backing_vpn_of(source)
        if pid in (KERNEL_PID, -1) or vpn < 0:
            return False
        process = self._resolve_process(pid)
        if process is None:
            return False
        page_table = process.page_table
        translation = page_table.lookup(vpn)
        if translation is None or translation.pfn != source:
            # Stale reverse map (should not happen; be safe).
            return False
        if translation.is_superpage:
            return False

        # Claim the target frame out of the buddy free pool.
        self._buddy.reserve_range(target, 1)
        self._physical.mark_allocated(
            target, 1, owner=pid, movable=True, backing_vpn=vpn
        )
        # Rewrite the PTE, preserving attribute bits, then release source.
        page_table.unmap_page(vpn)
        page_table.map_page(vpn, target, translation.attributes)
        self._physical.mark_free(source, 1)
        self._buddy.free_run(source, 1)
        if self._notify_invalidation is not None:
            self._notify_invalidation(pid, vpn, 1)
        return True
