"""Virtual memory areas and per-process address-space layout.

A process's virtual address space is a sorted collection of VMAs
(anonymous heap/mmap regions and file-backed regions). The distinction
matters for contiguity: Linux's Transparent Hugepage Support only backs
*anonymous* VMAs with superpages (paper Section 6.1 -- "THS currently
supports superpaging for only anonymous pages created through malloc
calls"), so file-backed regions can accumulate large base-page contiguity
that never becomes a superpage. CoLT exploits it anyway.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.common.constants import SUPERPAGE_PAGES, VPN_BITS
from repro.common.errors import PageFaultError


class VMAKind(enum.Enum):
    """What backs a virtual memory area."""

    ANONYMOUS = "anonymous"
    FILE_BACKED = "file"


@dataclass
class VMA:
    """One contiguous virtual memory area ``[start_vpn, end_vpn)``.

    ``thp_eligible`` distinguishes mmap'd regions THS may back with
    hugepages from brk-grown heaps that never present it a clean 2MB
    chunk.
    """

    start_vpn: int
    num_pages: int
    kind: VMAKind = VMAKind.ANONYMOUS
    name: str = ""
    thp_eligible: bool = True

    def __post_init__(self) -> None:
        if self.start_vpn < 0 or self.num_pages < 1:
            raise ValueError(
                f"invalid VMA ({self.start_vpn}, {self.num_pages})"
            )

    @property
    def end_vpn(self) -> int:
        return self.start_vpn + self.num_pages

    def contains(self, vpn: int) -> bool:
        return self.start_vpn <= vpn < self.end_vpn

    def huge_aligned_chunks(self) -> Iterator[int]:
        """Base VPNs of the 2MB-aligned, fully-contained chunks of this VMA.

        These are the only places THS may install a superpage.
        """
        first = -(-self.start_vpn // SUPERPAGE_PAGES) * SUPERPAGE_PAGES
        chunk = first
        while chunk + SUPERPAGE_PAGES <= self.end_vpn:
            yield chunk
            chunk += SUPERPAGE_PAGES

    def chunk_for(self, vpn: int) -> Optional[int]:
        """The 2MB-aligned chunk base containing ``vpn``, if fully inside."""
        base = vpn - (vpn % SUPERPAGE_PAGES)
        if base >= self.start_vpn and base + SUPERPAGE_PAGES <= self.end_vpn:
            return base
        return None


class AddressSpace:
    """Sorted, non-overlapping collection of VMAs with mmap-style layout.

    New mappings are placed by a bump pointer starting at ``mmap_base``
    with a small guard gap between regions (mirroring the guard pages and
    alignment padding a real mmap leaves), so virtual addresses are
    realistic but deterministic.
    """

    #: Default first VPN handed to mmap (0x0000_1000_0000 >> 12 area).
    DEFAULT_MMAP_BASE = 0x10_0000

    #: Unmapped guard pages left between consecutive mmap regions.
    GUARD_PAGES = 1

    def __init__(self, mmap_base: int = DEFAULT_MMAP_BASE) -> None:
        self._vmas: List[VMA] = []
        self._starts: List[int] = []
        self._bump = mmap_base

    def __len__(self) -> int:
        return len(self._vmas)

    def __iter__(self) -> Iterator[VMA]:
        return iter(self._vmas)

    @property
    def total_pages(self) -> int:
        return sum(vma.num_pages for vma in self._vmas)

    def find(self, vpn: int) -> Optional[VMA]:
        """The VMA containing ``vpn``, or None (an access here faults)."""
        idx = bisect.bisect_right(self._starts, vpn) - 1
        if idx >= 0 and self._vmas[idx].contains(vpn):
            return self._vmas[idx]
        return None

    def require(self, vpn: int) -> VMA:
        vma = self.find(vpn)
        if vma is None:
            raise PageFaultError(f"access to unmapped vpn {vpn} (SIGSEGV)")
        return vma

    def map(
        self,
        num_pages: int,
        kind: VMAKind = VMAKind.ANONYMOUS,
        name: str = "",
        align_huge: bool = False,
        thp_eligible: bool = True,
    ) -> VMA:
        """Create a new VMA of ``num_pages``, returning it.

        Args:
            align_huge: start the region on a 2MB boundary, as allocators
                that cooperate with THS (e.g. glibc's large-malloc path
                via mmap) tend to do.
        """
        start = self._bump
        if align_huge and start % SUPERPAGE_PAGES:
            start += SUPERPAGE_PAGES - (start % SUPERPAGE_PAGES)
        if start + num_pages >= (1 << VPN_BITS):
            raise PageFaultError("virtual address space exhausted")
        vma = VMA(start, num_pages, kind, name, thp_eligible)
        self._insert(vma)
        self._bump = vma.end_vpn + self.GUARD_PAGES
        return vma

    def map_fixed(
        self,
        start_vpn: int,
        num_pages: int,
        kind: VMAKind = VMAKind.ANONYMOUS,
        name: str = "",
    ) -> VMA:
        """Create a VMA at a caller-chosen address (MAP_FIXED)."""
        vma = VMA(start_vpn, num_pages, kind, name)
        for existing in self._vmas:
            if not (
                vma.end_vpn <= existing.start_vpn
                or existing.end_vpn <= vma.start_vpn
            ):
                raise PageFaultError(
                    f"MAP_FIXED overlap with existing VMA at {existing.start_vpn}"
                )
        self._insert(vma)
        self._bump = max(self._bump, vma.end_vpn + self.GUARD_PAGES)
        return vma

    def unmap(self, vma: VMA) -> None:
        """Remove a VMA (the kernel frees its frames separately)."""
        idx = bisect.bisect_left(self._starts, vma.start_vpn)
        if idx >= len(self._vmas) or self._vmas[idx] is not vma:
            raise PageFaultError(f"VMA at {vma.start_vpn} not in address space")
        del self._vmas[idx]
        del self._starts[idx]

    def _insert(self, vma: VMA) -> None:
        idx = bisect.bisect_left(self._starts, vma.start_vpn)
        self._vmas.insert(idx, vma)
        self._starts.insert(idx, vma.start_vpn)
