"""Contiguity measurement: the paper's kernel instrumentation, in Python."""

from repro.contiguity.scanner import (
    ContiguityReport,
    scan_process,
    scan_translations,
)

__all__ = ["ContiguityReport", "scan_process", "scan_translations"]
