"""Page-table contiguity scanner (paper Section 5.1.1).

The paper instruments the kernel to "scan the page table looking for
instances of contiguous address translations" every five seconds. This
module is that instrumentation for the simulated kernel: it walks a
process's page table in VPN order and extracts maximal runs where the
virtual and physical page numbers advance together *and* the attribute
bits match (the paper's hardware-friendly extra constraint).

Superpage mappings are recorded separately: the paper's CDFs cover
non-superpage pages only ("the distribution of contiguities experienced
by non-superpage pages", Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.common.cdfs import WeightedCDF, average_contiguity, contiguity_cdf
from repro.common.types import ContiguityRun, Translation
from repro.osmem.process import Process


def scan_translations(translations: Iterable[Translation]) -> List[ContiguityRun]:
    """Extract maximal contiguity runs from VPN-ordered translations.

    Superpage translations become single runs flagged ``from_superpage``
    (length 512); they never merge with neighbouring base pages, matching
    how the paper separates superpages from intermediate contiguity.
    """
    runs: List[ContiguityRun] = []
    current_start: Translation = None
    current_prev: Translation = None
    current_len = 0

    def flush() -> None:
        nonlocal current_start, current_prev, current_len
        if current_start is not None:
            runs.append(
                ContiguityRun(
                    current_start.vpn,
                    current_start.pfn,
                    current_len,
                    from_superpage=False,
                )
            )
        current_start, current_prev, current_len = None, None, 0

    for translation in translations:
        if translation.is_superpage:
            flush()
            runs.append(
                ContiguityRun(
                    translation.vpn, translation.pfn, 512, from_superpage=True
                )
            )
            continue
        if current_prev is not None and current_prev.is_contiguous_with(translation):
            current_prev = translation
            current_len += 1
        else:
            flush()
            current_start = translation
            current_prev = translation
            current_len = 1
    flush()
    return runs


def scan_process(process: Process) -> List[ContiguityRun]:
    """Scan one process's page table for contiguity runs."""
    return scan_translations(process.iter_mappings())


@dataclass(frozen=True)
class ContiguityReport:
    """Summary of one scan, matching the paper's reported metrics."""

    runs: tuple
    total_pages: int
    superpage_pages: int

    @classmethod
    def from_runs(cls, runs: Iterable[ContiguityRun]) -> "ContiguityReport":
        runs = tuple(runs)
        total = sum(r.length for r in runs)
        superpages = sum(r.length for r in runs if r.from_superpage)
        return cls(runs, total, superpages)

    @classmethod
    def from_process(cls, process: Process) -> "ContiguityReport":
        return cls.from_runs(scan_process(process))

    @property
    def base_page_runs(self) -> List[ContiguityRun]:
        """Runs of non-superpage pages -- what Figures 7-15 plot."""
        return [r for r in self.runs if not r.from_superpage]

    @property
    def average_contiguity(self) -> float:
        """Page-weighted average contiguity over non-superpage pages.

        The number printed in the legends of Figures 7-15 (e.g.
        "Mcf(20.3)") and plotted in Figures 16-17.
        """
        return average_contiguity(r.length for r in self.base_page_runs)

    def cdf(self) -> WeightedCDF:
        """Page-weighted CDF over non-superpage run lengths."""
        return contiguity_cdf(r.length for r in self.base_page_runs)

    def fraction_with_contiguity_at_least(self, threshold: int) -> float:
        """Fraction of non-superpage pages in runs of >= ``threshold``.

        Used for the paper's "15% of non-superpage pages actually have
        over 512-page contiguity" observation (Section 6.1).
        """
        base = self.base_page_runs
        total = sum(r.length for r in base)
        if total == 0:
            return 0.0
        qualifying = sum(r.length for r in base if r.length >= threshold)
        return qualifying / total
