"""Full-system simulation: configs, capture/replay, runners, metrics."""

from repro.sim.faults import FAULTS_ENV, FaultPlan, FaultSpec
from repro.sim.metrics import (
    EliminationRow,
    PerformanceRow,
    elimination_row,
    performance_row,
)
from repro.sim.replay import ReplayWalker, replay_scenario
from repro.sim.resilience import ResilientExecutor, RetryPolicy, TaskSpec
from repro.sim.runner import STANDARD_DESIGNS, ExperimentRunner
from repro.sim.scenario import (
    CapturedScenario,
    ScenarioEngine,
    capture_scenario,
    scenario_config,
)
from repro.sim.store import ResultStore, config_key
from repro.sim.system import (
    SimulationConfig,
    SimulationResult,
    SystemSimulator,
    simulate,
)

__all__ = [
    "CapturedScenario",
    "EliminationRow",
    "ExperimentRunner",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "PerformanceRow",
    "ReplayWalker",
    "ResilientExecutor",
    "ResultStore",
    "RetryPolicy",
    "STANDARD_DESIGNS",
    "ScenarioEngine",
    "TaskSpec",
    "SimulationConfig",
    "SimulationResult",
    "SystemSimulator",
    "capture_scenario",
    "config_key",
    "elimination_row",
    "performance_row",
    "replay_scenario",
    "scenario_config",
    "simulate",
]
