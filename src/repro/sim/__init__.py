"""Full-system simulation: configs, the simulator, runners, metrics."""

from repro.sim.metrics import (
    EliminationRow,
    PerformanceRow,
    elimination_row,
    performance_row,
)
from repro.sim.runner import STANDARD_DESIGNS, ExperimentRunner
from repro.sim.system import (
    SimulationConfig,
    SimulationResult,
    SystemSimulator,
    simulate,
)

__all__ = [
    "EliminationRow",
    "ExperimentRunner",
    "PerformanceRow",
    "STANDARD_DESIGNS",
    "SimulationConfig",
    "SimulationResult",
    "SystemSimulator",
    "elimination_row",
    "performance_row",
    "simulate",
]
