"""Experiment runner: sweep designs/configs for one or many benchmarks.

The runner executes the same (seeded, therefore identical) OS-and-trace
scenario under several TLB designs and assembles the comparison rows the
paper's figures plot. Results are memoised per process so that, e.g.,
Figure 21 reuses the runs Figure 18 already performed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mmu import CoLTDesign, MMUConfig
from repro.sim.metrics import EliminationRow, PerformanceRow, elimination_row, performance_row
from repro.sim.system import SimulationConfig, SimulationResult, simulate

#: The design set of Figures 18 and 21.
STANDARD_DESIGNS: Tuple[CoLTDesign, ...] = (
    CoLTDesign.BASELINE,
    CoLTDesign.COLT_SA,
    CoLTDesign.COLT_FA,
    CoLTDesign.COLT_ALL,
)


class ExperimentRunner:
    """Runs and caches simulations keyed by their full configuration."""

    def __init__(self) -> None:
        self._cache: Dict[SimulationConfig, SimulationResult] = {}

    def run(self, config: SimulationConfig) -> SimulationResult:
        if config not in self._cache:
            self._cache[config] = simulate(config)
        return self._cache[config]

    def run_designs(
        self,
        base: SimulationConfig,
        designs: Sequence[CoLTDesign] = STANDARD_DESIGNS,
        mmu_overrides: Optional[Dict[CoLTDesign, MMUConfig]] = None,
    ) -> Dict[CoLTDesign, SimulationResult]:
        """Run the same scenario under each design."""
        results = {}
        for design in designs:
            config = base.with_updates(
                design=design,
                mmu=(mmu_overrides or {}).get(design),
            )
            results[design] = self.run(config)
        return results

    def eliminations(
        self,
        base: SimulationConfig,
        designs: Sequence[CoLTDesign] = (
            CoLTDesign.COLT_SA,
            CoLTDesign.COLT_FA,
            CoLTDesign.COLT_ALL,
        ),
    ) -> List[EliminationRow]:
        """Figure 18-style rows: % of baseline misses eliminated."""
        all_designs = (CoLTDesign.BASELINE,) + tuple(designs)
        results = self.run_designs(base, all_designs)
        baseline = results[CoLTDesign.BASELINE]
        return [
            elimination_row(baseline, results[design]) for design in designs
        ]

    def performance_improvements(
        self,
        base: SimulationConfig,
        designs: Sequence[CoLTDesign] = (
            CoLTDesign.PERFECT,
            CoLTDesign.COLT_SA,
            CoLTDesign.COLT_FA,
            CoLTDesign.COLT_ALL,
        ),
    ) -> List[PerformanceRow]:
        """Figure 21-style rows: runtime improvement over baseline."""
        all_designs = (CoLTDesign.BASELINE,) + tuple(designs)
        results = self.run_designs(base, all_designs)
        baseline = results[CoLTDesign.BASELINE]
        return [
            performance_row(baseline, results[design]) for design in designs
        ]

    def clear(self) -> None:
        self._cache.clear()
