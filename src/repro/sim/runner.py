"""Experiment runner: capture once per scenario, replay per design.

The runner executes the same (seeded, therefore identical) OS-and-trace
scenario under several TLB designs and assembles the comparison rows the
paper's figures plot. It is a two-phase executor over the capture/replay
split of ``repro.sim.scenario`` / ``repro.sim.replay``:

1. **Capture** -- group the requested configs by their TLB-independent
   scenario (:func:`repro.sim.scenario.scenario_config`) and run the
   OS+workload interleaving exactly once per group.
2. **Replay** -- stream each captured log through every requested
   design's MMU; pure TLB work, no kernel or trace generation.

Both phases fan out across a ``ProcessPoolExecutor`` when ``jobs > 1``,
through the crash-tolerant :class:`repro.sim.resilience.ResilientExecutor`:
per-task submission with config-attributed failures, bounded retries
with deterministic backoff, per-task deadlines, broken-pool recovery
(rebuild once, then degrade to serial), and incremental checkpointing
-- every completed result is ``_finish``-ed (and stored) before a later
failure can abort the batch, so a rerun resumes from the store instead
of restarting. A seeded :class:`repro.sim.faults.FaultPlan`
(``COLT_FAULTS``) can inject worker crashes, task exceptions, delays
and store corruption to exercise exactly that machinery; any plan that
does not exhaust the retry budget yields bit-identical results to a
fault-free run.

Results are memoised in-process per config (so e.g. Figure 21 reuses
the runs Figure 18 already performed) and, when a
:class:`repro.sim.store.ResultStore` is attached, on disk across
invocations.

``monolithic=True`` restores the legacy single-phase path (every config
re-runs the full OS) -- used by ``tools/bench_runner.py`` as the
baseline of the speedup smoke test, and available for A/B debugging.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import MemoryBudgetError, TaskExecutionError
from repro.common.statistics import CounterSet
from repro.core.mmu import CoLTDesign, MMUConfig
from repro.obs.hooks import (
    ObsPayload,
    drain_worker_obs,
    in_pool_worker,
    reset_worker_obs,
)
from repro.obs.live import get_progress
from repro.obs.registry import bind_counterset, get_registry
from repro.obs.trace import TraceEvent, current_tracer, obs_active, span
from repro.sim.faults import FaultPlan
from repro.sim.resilience import (
    RESILIENCE_COUNTERS,
    ResilientExecutor,
    RetryPolicy,
    TaskSpec,
)
from repro.sim.metrics import (
    EliminationRow,
    PerformanceRow,
    elimination_row,
    performance_row,
)
from repro.sim.engine import replay_with_engine, resolve_engine
from repro.sim.scenario import CapturedScenario, capture_scenario, scenario_config
from repro.sim.store import ResultStore
from repro.sim.system import SimulationConfig, SimulationResult, simulate
from repro.sim.watchdog import (
    DEGRADE_NO_PREFETCH,
    DEGRADE_SHRINK_POOL,
    Watchdog,
)

#: The design set of Figures 18 and 21.
STANDARD_DESIGNS: Tuple[CoLTDesign, ...] = (
    CoLTDesign.BASELINE,
    CoLTDesign.COLT_SA,
    CoLTDesign.COLT_FA,
    CoLTDesign.COLT_ALL,
)


def _drain_if_pooled() -> Optional[ObsPayload]:
    """Drain obs state only in pool workers.

    Serial (and downgraded-to-serial) execution runs task bodies in the
    parent, whose tracer/registry must not be reset mid-run -- the
    parent reports its own state directly.
    """
    return drain_worker_obs() if in_pool_worker() else None


def _capture_task(
    config: SimulationConfig,
    faults: Optional[FaultPlan],
    index: int,
    attempt: int = 0,
) -> Tuple[CapturedScenario, Optional[ObsPayload]]:
    """Worker entry point: one scenario capture (module-level, picklable).

    The second element carries the worker's drained observability state
    (``None`` in the common untraced case) back to the parent. Faults
    fire before the capture, keyed on this task's deterministic
    (site, index, attempt) triple.
    """
    if faults is not None:
        faults.fire("capture", index, attempt)
    return capture_scenario(config), _drain_if_pooled()


def _replay_task(
    scenario: CapturedScenario,
    configs: Sequence[SimulationConfig],
    faults: Optional[FaultPlan],
    index: int,
    engine: str,
    attempt: int = 0,
) -> Tuple[List[SimulationResult], Optional[ObsPayload]]:
    """Worker entry point: replay one scenario under several configs.

    ``engine`` is threaded explicitly (rather than re-read from the
    environment) so pool workers replay with the engine the parent
    resolved, even when the parent was configured programmatically.
    """
    if faults is not None:
        faults.fire("replay", index, attempt)
    results = [
        replay_with_engine(scenario, config, engine=engine)
        for config in configs
    ]
    return results, _drain_if_pooled()


def _capture_context(config: SimulationConfig) -> Dict[str, object]:
    return {
        "stage": "capture",
        "benchmark": config.benchmark,
        "seed": config.seed,
        "accesses": config.accesses,
    }


def _replay_context(
    chunk: Sequence[SimulationConfig], engine: str
) -> Dict[str, object]:
    first = chunk[0]
    return {
        "stage": "replay",
        "benchmark": first.benchmark,
        "seed": first.seed,
        "designs": ",".join(config.design.value for config in chunk),
        "engine": engine,
    }


def _chunk(items: Sequence, pieces: int) -> List[List]:
    """Split ``items`` into up to ``pieces`` contiguous, non-empty runs."""
    pieces = max(1, min(pieces, len(items)))
    size, remainder = divmod(len(items), pieces)
    chunks, start = [], 0
    for index in range(pieces):
        end = start + size + (1 if index < remainder else 0)
        chunks.append(list(items[start:end]))
        start = end
    return chunks


class ExperimentRunner:
    """Runs and caches simulations keyed by their full configuration.

    Args:
        jobs: worker processes for the capture and replay fan-out;
            ``None`` or 1 runs inline (no pool).
        store: optional on-disk result store consulted before, and
            updated after, every simulation.
        monolithic: bypass capture/replay and run every config through
            the legacy single-phase :func:`simulate`.
        policy: retry/backoff/deadline policy for the resilient
            executor; defaults to :meth:`RetryPolicy.from_env`
            (``COLT_RETRIES`` / ``COLT_TASK_TIMEOUT`` / ``COLT_BACKOFF``).
        faults: deterministic fault-injection plan; defaults to the
            plan named by ``COLT_FAULTS`` (``None`` when unset).
        shutdown: optional :class:`repro.sim.campaign.ShutdownCoordinator`
            polled between (and during) waves; a requested shutdown
            raises :class:`~repro.common.errors.ShutdownRequested` with
            every already-completed result checkpointed.
        engine: replay engine name (``"scalar"`` or ``"vector"``);
            ``None`` defers to ``COLT_ENGINE`` and then the scalar
            default. The engine changes how replay outcomes are
            computed, never what they are (the vector engine is
            bit-identical to the scalar oracle), so it is deliberately
            excluded from result cache and store keys.
        watchdog: optional :class:`repro.sim.watchdog.Watchdog`. The
            runner heartbeats it per completed task and honours its
            memory degradation ladder: rung 1 halves the worker pool,
            rung 2 additionally drops the cross-group prefetch (scenario
            groups run one at a time, captured logs released between
            them), rung 3 aborts with
            :class:`~repro.common.errors.MemoryBudgetError`.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Optional[ResultStore] = None,
        monolithic: bool = False,
        policy: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        shutdown=None,
        watchdog: Optional[Watchdog] = None,
        engine: Optional[str] = None,
    ) -> None:
        self._jobs = max(1, int(jobs)) if jobs else 1
        self._engine = resolve_engine(engine)
        self._store = store
        self._monolithic = monolithic
        self._policy = policy if policy is not None else RetryPolicy.from_env()
        self._faults = faults if faults is not None else FaultPlan.from_env()
        self._shutdown = shutdown
        self._watchdog = watchdog
        self._resilience = CounterSet(RESILIENCE_COUNTERS)
        if obs_active():
            bind_counterset(
                get_registry(), "colt_resilience", self._resilience
            )
        self._cache: Dict[SimulationConfig, SimulationResult] = {}
        self._scenarios: Dict[SimulationConfig, CapturedScenario] = {}
        # Observability state shipped back from pool workers.
        self._foreign_events: List[TraceEvent] = []
        self._foreign_dropped = 0

    # ------------------------------------------------------------------
    # Observability surface.
    # ------------------------------------------------------------------

    @property
    def store(self) -> Optional[ResultStore]:
        return self._store

    def store_summary(self) -> Optional[Dict[str, float]]:
        """Result-store effectiveness for the CLI summary line."""
        if self._store is None:
            return None
        counts = self._store.counters.as_dict()
        lookups = counts["hits"] + counts["misses"]
        counts["hit_ratio"] = counts["hits"] / lookups if lookups else 0.0
        return counts

    @property
    def resilience_counters(self) -> CounterSet:
        """The retry/timeout/rebuild/downgrade tallies of this runner."""
        return self._resilience

    def resilience_summary(self) -> Optional[Dict[str, int]]:
        """Counter dict when the resilience layer absorbed anything."""
        counts = self._resilience.as_dict()
        interesting = (
            "retries", "timeouts", "task_errors", "pool_rebuilds",
            "serial_downgrades", "failures",
        )
        if not any(counts.get(name, 0) for name in interesting):
            return None
        if self._faults is not None:
            counts["faults_injected"] = sum(
                self._faults.counters.as_dict().values()
            )
        return counts

    def trace_events(self) -> List[TraceEvent]:
        """This process's buffered events plus those of its workers."""
        tracer = current_tracer()
        events = list(self._foreign_events)
        if tracer is not None:
            events.extend(tracer.events())
        events.sort(key=lambda event: event.ts_us)
        return events

    def dropped_events(self) -> int:
        tracer = current_tracer()
        return self._foreign_dropped + (tracer.dropped if tracer else 0)

    def _absorb(self, payload: Optional[ObsPayload]) -> None:
        """Fold one worker task's drained obs state into this process."""
        if payload is None:
            return
        self._foreign_events.extend(payload.events)
        self._foreign_dropped += payload.dropped_events
        get_registry().merge_snapshot(payload.metrics)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(self, config: SimulationConfig) -> SimulationResult:
        return self.run_batch([config])[config]

    def run_batch(
        self, configs: Sequence[SimulationConfig]
    ) -> Dict[SimulationConfig, SimulationResult]:
        """Simulate every config, deduplicated, cached, and parallel.

        This is the runner's prefetch surface: experiment harnesses
        assemble every config a figure needs and submit them in one
        call, so captures and replays from different benchmarks fan out
        across the worker pool together.
        """
        pending: List[SimulationConfig] = []
        seen = set()
        for config in configs:
            if config in self._cache or config in seen:
                continue
            # ``is not None``, not truthiness: ResultStore has __len__,
            # so an empty (cold) store is falsy and would skip load().
            stored = (
                self._store.load(config) if self._store is not None else None
            )
            if stored is not None:
                self._cache[config] = stored
                continue
            seen.add(config)
            pending.append(config)

        if pending:
            get_progress().update_section(
                "runner",
                stage="simulate",
                configs=len(configs),
                pending=len(pending),
                jobs=self._jobs,
            )
            with span(
                "runner.run_batch",
                configs=len(configs),
                pending=len(pending),
                jobs=self._jobs,
                monolithic=self._monolithic,
            ):
                if self._monolithic:
                    for config in pending:
                        self._finish(config, simulate(config))
                else:
                    self._run_captured(pending)
            get_progress().update_section("runner", stage="idle", pending=0)
        return {config: self._cache[config] for config in configs}

    def _finish(
        self, config: SimulationConfig, result: SimulationResult
    ) -> None:
        self._cache[config] = result
        if self._store is not None:
            self._store.save(config, result)

    def _run_captured(self, pending: Sequence[SimulationConfig]) -> None:
        groups: Dict[SimulationConfig, List[SimulationConfig]] = {}
        for config in pending:
            groups.setdefault(scenario_config(config), []).append(config)

        if self._watchdog is not None and self._watchdog.should_abort():
            raise MemoryBudgetError(
                "memory watchdog exhausted its degradation ladder; "
                "refusing to start more simulation work"
            )
        rung = self._watchdog.degradation if self._watchdog else 0
        if rung >= DEGRADE_NO_PREFETCH and len(groups) > 1:
            # Rung 2: drop the cross-group prefetch. Scenario groups
            # run one at a time and their captured logs (the dominant
            # resident cost) are released before the next group starts.
            failure: Optional[TaskExecutionError] = None
            for key, group in groups.items():
                if self._watchdog.should_abort():
                    raise MemoryBudgetError(
                        "memory watchdog exhausted its degradation "
                        "ladder mid-batch; completed results are "
                        "checkpointed in the store"
                    )
                try:
                    self._run_groups({key: group})
                except TaskExecutionError as exc:
                    if failure is None:
                        failure = exc
                self._scenarios.clear()
            if failure is not None:
                raise failure
        else:
            self._run_groups(groups)

    def _run_groups(
        self,
        groups: Dict[SimulationConfig, List[SimulationConfig]],
    ) -> None:
        jobs = self._jobs
        if self._watchdog is not None:
            rung = self._watchdog.degradation
            if rung >= DEGRADE_SHRINK_POOL and jobs > 1:
                # Rung 1: halve the worker pool -- each live worker is
                # a full copy-on-write image of this process.
                jobs = max(1, jobs // 2)

        to_capture = [key for key in groups if key not in self._scenarios]
        all_chunks: List[Tuple[SimulationConfig, List[SimulationConfig]]]
        all_chunks = []
        per_group = max(1, jobs // max(1, len(groups)))
        for key, group in groups.items():
            for chunk in _chunk(group, per_group):
                all_chunks.append((key, chunk))

        capture_tasks = [
            TaskSpec(
                fn=_capture_task,
                args=(key, self._faults, index),
                site="capture",
                index=index,
                context=_capture_context(key),
            )
            for index, key in enumerate(to_capture)
        ]
        # Run inline when there is no parallelism to exploit -- matches
        # the pre-resilience behaviour of not paying for a pool.
        effective_jobs = (
            jobs if len(capture_tasks) + len(all_chunks) > 1 else 1
        )
        # The initializer drops the tracer/registry state a forked
        # worker inherits from this process -- without it, the parent's
        # buffered events would be reported twice.
        with ResilientExecutor(
            jobs=effective_jobs,
            policy=self._policy,
            counters=self._resilience,
            initializer=reset_worker_obs,
            shutdown=self._shutdown,
            watchdog=self._watchdog,
        ) as executor:
            failure: Optional[TaskExecutionError] = None
            get_progress().update_section(
                "runner", stage="capture", captures=len(capture_tasks)
            )
            try:
                for task, (scenario, payload) in executor.run(capture_tasks):
                    self._scenarios[to_capture[task.index]] = scenario
                    self._absorb(payload)
            except TaskExecutionError as exc:
                # Keep going: scenarios that did capture can still
                # replay (and checkpoint) before the batch raises.
                failure = exc
            replay_chunks = [
                (key, chunk)
                for key, chunk in all_chunks
                if key in self._scenarios
            ]
            replay_tasks = [
                TaskSpec(
                    fn=_replay_task,
                    args=(
                        self._scenarios[key], chunk, self._faults, index,
                        self._engine,
                    ),
                    site="replay",
                    index=index,
                    context=_replay_context(chunk, self._engine),
                )
                for index, (key, chunk) in enumerate(replay_chunks)
            ]
            get_progress().update_section(
                "runner", stage="replay", replays=len(replay_tasks)
            )
            try:
                for task, (results, payload) in executor.run(replay_tasks):
                    self._absorb(payload)
                    _, chunk = replay_chunks[task.index]
                    for config, result in zip(chunk, results):
                        self._finish(config, result)
            except TaskExecutionError as exc:
                if failure is None:
                    failure = exc
            if failure is not None:
                raise failure

    # ------------------------------------------------------------------
    # Figure-level helpers.
    # ------------------------------------------------------------------

    def run_designs(
        self,
        base: SimulationConfig,
        designs: Sequence[CoLTDesign] = STANDARD_DESIGNS,
        mmu_overrides: Optional[Dict[CoLTDesign, MMUConfig]] = None,
    ) -> Dict[CoLTDesign, SimulationResult]:
        """Run the same scenario under each design (one capture total)."""
        configs = {
            design: base.with_updates(
                design=design,
                mmu=(mmu_overrides or {}).get(design),
            )
            for design in designs
        }
        results = self.run_batch(list(configs.values()))
        return {design: results[cfg] for design, cfg in configs.items()}

    def eliminations(
        self,
        base: SimulationConfig,
        designs: Sequence[CoLTDesign] = (
            CoLTDesign.COLT_SA,
            CoLTDesign.COLT_FA,
            CoLTDesign.COLT_ALL,
        ),
    ) -> List[EliminationRow]:
        """Figure 18-style rows: % of baseline misses eliminated."""
        all_designs = (CoLTDesign.BASELINE,) + tuple(designs)
        results = self.run_designs(base, all_designs)
        baseline = results[CoLTDesign.BASELINE]
        return [
            elimination_row(baseline, results[design]) for design in designs
        ]

    def performance_improvements(
        self,
        base: SimulationConfig,
        designs: Sequence[CoLTDesign] = (
            CoLTDesign.PERFECT,
            CoLTDesign.COLT_SA,
            CoLTDesign.COLT_FA,
            CoLTDesign.COLT_ALL,
        ),
    ) -> List[PerformanceRow]:
        """Figure 21-style rows: runtime improvement over baseline."""
        all_designs = (CoLTDesign.BASELINE,) + tuple(designs)
        results = self.run_designs(base, all_designs)
        baseline = results[CoLTDesign.BASELINE]
        return [
            performance_row(baseline, results[design]) for design in designs
        ]

    def clear(self) -> None:
        """Drop the in-process memo and captured scenarios.

        The on-disk store (if any) is left intact; clear it explicitly
        with :meth:`repro.sim.store.ResultStore.clear`.
        """
        self._cache.clear()
        self._scenarios.clear()
