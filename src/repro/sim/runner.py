"""Experiment runner: capture once per scenario, replay per design.

The runner executes the same (seeded, therefore identical) OS-and-trace
scenario under several TLB designs and assembles the comparison rows the
paper's figures plot. It is a two-phase executor over the capture/replay
split of ``repro.sim.scenario`` / ``repro.sim.replay``:

1. **Capture** -- group the requested configs by their TLB-independent
   scenario (:func:`repro.sim.scenario.scenario_config`) and run the
   OS+workload interleaving exactly once per group.
2. **Replay** -- stream each captured log through every requested
   design's MMU; pure TLB work, no kernel or trace generation.

Both phases fan out across a ``ProcessPoolExecutor`` when ``jobs > 1``.
Results are memoised in-process per config (so e.g. Figure 21 reuses
the runs Figure 18 already performed) and, when a
:class:`repro.sim.store.ResultStore` is attached, on disk across
invocations.

``monolithic=True`` restores the legacy single-phase path (every config
re-runs the full OS) -- used by ``tools/bench_runner.py`` as the
baseline of the speedup smoke test, and available for A/B debugging.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mmu import CoLTDesign, MMUConfig
from repro.obs.hooks import ObsPayload, drain_worker_obs, reset_worker_obs
from repro.obs.registry import get_registry
from repro.obs.trace import TraceEvent, current_tracer, span
from repro.sim.metrics import (
    EliminationRow,
    PerformanceRow,
    elimination_row,
    performance_row,
)
from repro.sim.replay import replay_scenario
from repro.sim.scenario import CapturedScenario, capture_scenario, scenario_config
from repro.sim.store import ResultStore
from repro.sim.system import SimulationConfig, SimulationResult, simulate

#: The design set of Figures 18 and 21.
STANDARD_DESIGNS: Tuple[CoLTDesign, ...] = (
    CoLTDesign.BASELINE,
    CoLTDesign.COLT_SA,
    CoLTDesign.COLT_FA,
    CoLTDesign.COLT_ALL,
)


def _capture_task(
    config: SimulationConfig,
) -> Tuple[CapturedScenario, Optional[ObsPayload]]:
    """Worker entry point: one scenario capture (module-level, picklable).

    The second element carries the worker's drained observability state
    (``None`` in the common untraced case) back to the parent.
    """
    return capture_scenario(config), drain_worker_obs()


def _replay_task(
    scenario: CapturedScenario, configs: Sequence[SimulationConfig]
) -> Tuple[List[SimulationResult], Optional[ObsPayload]]:
    """Worker entry point: replay one scenario under several configs."""
    results = [replay_scenario(scenario, config) for config in configs]
    return results, drain_worker_obs()


def _chunk(items: Sequence, pieces: int) -> List[List]:
    """Split ``items`` into up to ``pieces`` contiguous, non-empty runs."""
    pieces = max(1, min(pieces, len(items)))
    size, remainder = divmod(len(items), pieces)
    chunks, start = [], 0
    for index in range(pieces):
        end = start + size + (1 if index < remainder else 0)
        chunks.append(list(items[start:end]))
        start = end
    return chunks


class ExperimentRunner:
    """Runs and caches simulations keyed by their full configuration.

    Args:
        jobs: worker processes for the capture and replay fan-out;
            ``None`` or 1 runs inline (no pool).
        store: optional on-disk result store consulted before, and
            updated after, every simulation.
        monolithic: bypass capture/replay and run every config through
            the legacy single-phase :func:`simulate`.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Optional[ResultStore] = None,
        monolithic: bool = False,
    ) -> None:
        self._jobs = max(1, int(jobs)) if jobs else 1
        self._store = store
        self._monolithic = monolithic
        self._cache: Dict[SimulationConfig, SimulationResult] = {}
        self._scenarios: Dict[SimulationConfig, CapturedScenario] = {}
        # Observability state shipped back from pool workers.
        self._foreign_events: List[TraceEvent] = []
        self._foreign_dropped = 0

    # ------------------------------------------------------------------
    # Observability surface.
    # ------------------------------------------------------------------

    @property
    def store(self) -> Optional[ResultStore]:
        return self._store

    def store_summary(self) -> Optional[Dict[str, float]]:
        """Result-store effectiveness for the CLI summary line."""
        if self._store is None:
            return None
        counts = self._store.counters.as_dict()
        lookups = counts["hits"] + counts["misses"]
        counts["hit_ratio"] = counts["hits"] / lookups if lookups else 0.0
        return counts

    def trace_events(self) -> List[TraceEvent]:
        """This process's buffered events plus those of its workers."""
        tracer = current_tracer()
        events = list(self._foreign_events)
        if tracer is not None:
            events.extend(tracer.events())
        events.sort(key=lambda event: event.ts_us)
        return events

    def dropped_events(self) -> int:
        tracer = current_tracer()
        return self._foreign_dropped + (tracer.dropped if tracer else 0)

    def _absorb(self, payload: Optional[ObsPayload]) -> None:
        """Fold one worker task's drained obs state into this process."""
        if payload is None:
            return
        self._foreign_events.extend(payload.events)
        self._foreign_dropped += payload.dropped_events
        get_registry().merge_snapshot(payload.metrics)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(self, config: SimulationConfig) -> SimulationResult:
        return self.run_batch([config])[config]

    def run_batch(
        self, configs: Sequence[SimulationConfig]
    ) -> Dict[SimulationConfig, SimulationResult]:
        """Simulate every config, deduplicated, cached, and parallel.

        This is the runner's prefetch surface: experiment harnesses
        assemble every config a figure needs and submit them in one
        call, so captures and replays from different benchmarks fan out
        across the worker pool together.
        """
        pending: List[SimulationConfig] = []
        seen = set()
        for config in configs:
            if config in self._cache or config in seen:
                continue
            # ``is not None``, not truthiness: ResultStore has __len__,
            # so an empty (cold) store is falsy and would skip load().
            stored = (
                self._store.load(config) if self._store is not None else None
            )
            if stored is not None:
                self._cache[config] = stored
                continue
            seen.add(config)
            pending.append(config)

        if pending:
            with span(
                "runner.run_batch",
                configs=len(configs),
                pending=len(pending),
                jobs=self._jobs,
                monolithic=self._monolithic,
            ):
                if self._monolithic:
                    for config in pending:
                        self._finish(config, simulate(config))
                else:
                    self._run_captured(pending)
        return {config: self._cache[config] for config in configs}

    def _finish(
        self, config: SimulationConfig, result: SimulationResult
    ) -> None:
        self._cache[config] = result
        if self._store is not None:
            self._store.save(config, result)

    def _run_captured(self, pending: Sequence[SimulationConfig]) -> None:
        groups: Dict[SimulationConfig, List[SimulationConfig]] = {}
        for config in pending:
            groups.setdefault(scenario_config(config), []).append(config)

        to_capture = [key for key in groups if key not in self._scenarios]
        replay_chunks: List[Tuple[SimulationConfig, List[SimulationConfig]]]
        replay_chunks = []
        per_group = max(1, self._jobs // max(1, len(groups)))
        for key, group in groups.items():
            for chunk in _chunk(group, per_group):
                replay_chunks.append((key, chunk))

        if self._jobs > 1 and len(to_capture) + len(replay_chunks) > 1:
            # The initializer drops the tracer/registry state a forked
            # worker inherits from this process -- without it, the
            # parent's buffered events would be reported twice.
            with ProcessPoolExecutor(
                max_workers=self._jobs, initializer=reset_worker_obs
            ) as pool:
                if to_capture:
                    for key, (scenario, payload) in zip(
                        to_capture, pool.map(_capture_task, to_capture)
                    ):
                        self._scenarios[key] = scenario
                        self._absorb(payload)
                futures = [
                    (chunk, pool.submit(
                        _replay_task, self._scenarios[key], chunk
                    ))
                    for key, chunk in replay_chunks
                ]
                for chunk, future in futures:
                    results, payload = future.result()
                    self._absorb(payload)
                    for config, result in zip(chunk, results):
                        self._finish(config, result)
        else:
            for key in to_capture:
                self._scenarios[key] = capture_scenario(key)
            for key, chunk in replay_chunks:
                scenario = self._scenarios[key]
                for config in chunk:
                    self._finish(config, replay_scenario(scenario, config))

    # ------------------------------------------------------------------
    # Figure-level helpers.
    # ------------------------------------------------------------------

    def run_designs(
        self,
        base: SimulationConfig,
        designs: Sequence[CoLTDesign] = STANDARD_DESIGNS,
        mmu_overrides: Optional[Dict[CoLTDesign, MMUConfig]] = None,
    ) -> Dict[CoLTDesign, SimulationResult]:
        """Run the same scenario under each design (one capture total)."""
        configs = {
            design: base.with_updates(
                design=design,
                mmu=(mmu_overrides or {}).get(design),
            )
            for design in designs
        }
        results = self.run_batch(list(configs.values()))
        return {design: results[cfg] for design, cfg in configs.items()}

    def eliminations(
        self,
        base: SimulationConfig,
        designs: Sequence[CoLTDesign] = (
            CoLTDesign.COLT_SA,
            CoLTDesign.COLT_FA,
            CoLTDesign.COLT_ALL,
        ),
    ) -> List[EliminationRow]:
        """Figure 18-style rows: % of baseline misses eliminated."""
        all_designs = (CoLTDesign.BASELINE,) + tuple(designs)
        results = self.run_designs(base, all_designs)
        baseline = results[CoLTDesign.BASELINE]
        return [
            elimination_row(baseline, results[design]) for design in designs
        ]

    def performance_improvements(
        self,
        base: SimulationConfig,
        designs: Sequence[CoLTDesign] = (
            CoLTDesign.PERFECT,
            CoLTDesign.COLT_SA,
            CoLTDesign.COLT_FA,
            CoLTDesign.COLT_ALL,
        ),
    ) -> List[PerformanceRow]:
        """Figure 21-style rows: runtime improvement over baseline."""
        all_designs = (CoLTDesign.BASELINE,) + tuple(designs)
        results = self.run_designs(base, all_designs)
        baseline = results[CoLTDesign.BASELINE]
        return [
            performance_row(baseline, results[design]) for design in designs
        ]

    def clear(self) -> None:
        """Drop the in-process memo and captured scenarios.

        The on-disk store (if any) is left intact; clear it explicitly
        with :meth:`repro.sim.store.ResultStore.clear`.
        """
        self._cache.clear()
        self._scenarios.clear()
