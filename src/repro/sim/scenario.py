"""Capture phase of the two-phase simulator (paper Section 5.2).

The paper's methodology is trace capture + replay: memory-reference
traces are collected once per system configuration and then replayed
through the functional TLB simulator under every design. This module is
the capture half. ``ScenarioEngine`` owns the OS+workload interleaving
-- kernel boot, aging, memhog, demand faulting, background churn,
compaction ticks -- and drives it access by access. It is shared by the
legacy monolithic :class:`repro.sim.system.SystemSimulator` (which
attaches a live MMU) and by :func:`capture_scenario` (which attaches a
recorder instead), so the OS evolution of both paths is identical *by
construction*, not by convention.

``capture_scenario`` produces a :class:`CapturedScenario`: a compact
numpy translation log with, per access, the VPN and its full walk
outcome (PFN, attribute bits, page size, walk-path addresses and the
8-PTE cache-line window), plus the stream of TLB-shootdown events
tagged with the access index they precede, the final kernel counters
and contiguity report. Everything a :class:`CoLTDesign` MMU consumes
is in the log; nothing TLB-design-dependent is. Replaying it through
``repro.sim.replay`` is bit-identical to the monolithic run -- enforced
by ``repro.analysis.determinism --replay`` and the tier-1 tests.

Per-access records are deduplicated (``np.unique`` over rows): a VPN's
walk outcome only changes across shootdown events, so the unique-row
table stays small and a captured QUICK-scale scenario is a few MB,
cheap enough to ship to ``ProcessPoolExecutor`` workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from repro.common.errors import OutOfMemoryError, TranslationError
from repro.common.rng import SeedSequencer
from repro.common.statistics import CounterSnapshot
from repro.contiguity.scanner import ContiguityReport
from repro.core.mmu import CoLTDesign
from repro.obs.trace import span
from repro.osmem.kernel import Kernel
from repro.osmem.memhog import Memhog, age_system
from repro.osmem.process import Process
from repro.workloads.benchmarks import BenchmarkProfile, get_benchmark
from repro.workloads.trace import Trace, generate_trace, scaled_region_pages

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (system imports us)
    from repro.sim.system import SimulationConfig

#: Columns of one capture record (all int64):
#:   0      pfn
#:   1      attribute bits
#:   2      is_superpage flag
#:   3      number of walk-path levels
#:   4-7    walk-path PTE addresses, -1 padded
#:   8      cache-line window valid mask (bit i = slot i mapped)
#:   9-16   cache-line window PFNs per slot
#:   17-24  cache-line window attribute bits per slot
RECORD_COLUMNS = 25
_PATH_BASE = 4
_MASK_COLUMN = 8
_LINE_PFN_BASE = 9
_LINE_ATTR_BASE = 17


class LLCPollution:
    """Deterministic model of the data stream's LLC pressure on PTE lines.

    Each access accrues ``per_access`` expected evictions; whole lines
    are evicted from sets visited on a fixed stride. The cursor is
    explicit state initialised here (not lazily mid-run) so a fresh
    instance always walks the same set sequence.
    """

    def __init__(self, llc, per_access: float) -> None:
        self._llc = llc
        self._per_access = per_access
        self._budget = 0.0
        self._cursor = 0

    def after_access(self) -> None:
        self._budget += self._per_access
        if self._budget >= 1.0:
            lines = int(self._budget)
            self._budget -= lines
            llc = self._llc
            for _ in range(lines):
                self._cursor = (self._cursor + 101) % llc.num_sets
                llc.evict_lru_of_set(self._cursor)


def scenario_config(config: "SimulationConfig") -> "SimulationConfig":
    """Normalise a config to its TLB-design-independent scenario.

    Every field that feeds the OS+workload interleaving is kept; the
    design and MMU geometry (which only the replay consumes) are
    cleared. Two configs with equal scenario configs share one capture.
    """
    return config.with_updates(design=CoLTDesign.BASELINE, mmu=None)


class ScenarioEngine:
    """Boots, loads and steps one scenario's OS+workload interleaving."""

    def __init__(self, config: "SimulationConfig") -> None:
        self.config = config
        self.profile: BenchmarkProfile = get_benchmark(config.benchmark)
        self._seeds = SeedSequencer(config.seed)
        self.kernel: Optional[Kernel] = None
        self.process: Optional[Process] = None
        self.trace: Optional[Trace] = None
        self._daemons: List[Process] = []

    # ------------------------------------------------------------------
    # Phase 1-2: boot + load.
    # ------------------------------------------------------------------

    def prepare(self) -> None:
        """Boot the kernel, age it, start memhog, lay out the benchmark."""
        config = self.config
        with span("kernel.boot", benchmark=config.benchmark):
            self.kernel = Kernel(config.kernel, sanitize=config.sanitize)
        with span("aging", aged=config.aging is not None):
            if config.aging is not None:
                self._daemons = age_system(
                    self.kernel, self._seeds, config.aging
                )
            else:
                daemon = self.kernel.create_process(
                    "background0", fault_batch=4
                )
                self.kernel.register_reclaim_victim(daemon)
                self._daemons = [daemon]
            if config.memhog_fraction > 0:
                Memhog(
                    self.kernel, config.memhog_fraction, self._seeds
                ).start()

        with span("layout", benchmark=self.profile.name):
            self.process = self.kernel.create_process(self.profile.name)
            pages = scaled_region_pages(self.profile, config.scale)
            bases: Dict[str, int] = {}
            for region in self.profile.regions:
                vma = self.kernel.malloc(
                    self.process,
                    pages[region.name],
                    name=region.name,
                    populate=region.populate,
                    kind=region.kind,
                    thp_eligible=region.thp_eligible,
                    populate_batch=region.fault_batch,
                )
                bases[region.name] = vma.start_vpn
        with span("trace.generate", accesses=config.accesses):
            self.trace = generate_trace(
                self.profile,
                bases,
                config.accesses,
                self._seeds.rng("trace"),
                scale=config.scale,
            )
        self._region_bounds = sorted(
            (bases[r.name], bases[r.name] + pages[r.name], r.fault_batch)
            for r in self.profile.regions
        )

    def _fault_batch_for(self, vpn: int) -> int:
        for start, end, batch in self._region_bounds:
            if start <= vpn < end:
                return batch
        return self.process.fault_batch

    # ------------------------------------------------------------------
    # Phase 3: the interleaved run.
    # ------------------------------------------------------------------

    def run_loop(self, on_access: Callable[[int, int], None]) -> None:
        """Step the trace, interleaving OS activity around ``on_access``.

        ``on_access(index, vpn)`` is invoked once per trace entry after
        the page is demand-faulted in; the caller decides what an
        access *means* (live MMU probe, or capture record). Background
        churn and compaction ticks fire after every ``churn_every`` /
        ``tick_every`` accesses -- i.e. first at ``period - 1``, not at
        access 0, which previously injected both before the benchmark's
        first reference.
        """
        if self.kernel is None:
            self.prepare()
        config = self.config
        kernel = self.kernel
        process = self.process

        churn_rng = self._seeds.rng("run.churn")
        live_churn: List = []
        is_populated = process.is_populated
        churn_every = config.churn_every
        tick_every = config.tick_every

        for index, vpn in enumerate(self.trace.vpns):
            vpn = int(vpn)
            if not is_populated(vpn):
                # Demand fault, at this region's allocator granularity.
                process.fault_batch = self._fault_batch_for(vpn)
                kernel.touch(process, vpn)
            on_access(index, vpn)
            if churn_every and (index + 1) % churn_every == 0:
                self._background_churn(churn_rng, live_churn)
            if tick_every and (index + 1) % tick_every == 0:
                kernel.tick()

    def _background_churn(self, rng: np.random.Generator, live: List) -> None:
        """One beat of live-system allocation activity during the run."""
        daemon = self._daemons[int(rng.integers(len(self._daemons)))]
        pages = max(1, int(self.config.churn_pages * (0.5 + rng.random())))
        try:
            daemon_vma = self.kernel.malloc(
                daemon, pages, name="live_churn", populate=True
            )
        except OutOfMemoryError:
            return
        live.append((daemon, daemon_vma))
        while len(live) > self.config.churn_live_limit:
            victim_daemon, victim_vma = live.pop(0)
            self.kernel.free_vma(victim_daemon, victim_vma)

    def sanity_check(self) -> None:
        """Full scan of the kernel-side sanitizers (no-op if off)."""
        if self.kernel is None:
            return
        buddy_sanitizer = self.kernel.buddy.sanitizer
        if buddy_sanitizer is not None:
            buddy_sanitizer.full_scan()
            buddy_sanitizer.check_accounting()
        if self.kernel.sanitizer is not None:
            self.kernel.sanitizer.full_scan()


@dataclass(frozen=True)
class CapturedScenario:
    """One scenario's complete translation log, TLB-design-independent.

    Attributes:
        config: the normalised scenario configuration (see
            :func:`scenario_config`).
        profile: the benchmark profile the trace was generated from.
        vpns: per-access virtual page numbers, shape ``(accesses,)``.
        records: deduplicated walk-outcome rows, shape
            ``(unique, RECORD_COLUMNS)`` -- see the column map at the
            top of this module.
        record_index: per-access row index into ``records``.
        inval_before: sorted access indices; ``inval_before[i]`` is the
            access the i-th shootdown precedes (``accesses`` for
            events after the final access -- they still mutate MMU
            counters before the result snapshot).
        inval_start / inval_count: the shot-down VPN ranges.
        kernel_counters: kernel counter snapshot at end of run.
        contiguity: final contiguity report of the benchmark process.
        trace_unique_pages: distinct pages in the trace.
    """

    config: "SimulationConfig"
    profile: BenchmarkProfile
    vpns: np.ndarray
    records: np.ndarray
    record_index: np.ndarray
    inval_before: np.ndarray
    inval_start: np.ndarray
    inval_count: np.ndarray
    kernel_counters: CounterSnapshot
    contiguity: ContiguityReport
    trace_unique_pages: int

    @property
    def accesses(self) -> int:
        return int(self.vpns.size)

    @property
    def nbytes(self) -> int:
        """Approximate in-memory / pickled footprint of the log."""
        return int(
            self.vpns.nbytes
            + self.records.nbytes
            + self.record_index.nbytes
            + self.inval_before.nbytes
            + self.inval_start.nbytes
            + self.inval_count.nbytes
        )


class _CaptureRecorder:
    """Records per-access walk outcomes and shootdown events."""

    def __init__(self, engine: ScenarioEngine, accesses: int) -> None:
        self._page_table = engine.process.page_table
        self._bench_pid = engine.process.pid
        self.records = np.zeros((accesses, RECORD_COLUMNS), dtype=np.int64)
        self.events: List = []
        #: Number of accesses recorded so far == the index the next
        #: shootdown precedes: events during access i's demand fault
        #: arrive before ``on_access(i)`` and tag i; churn/tick events
        #: after it tag i+1, matching where a replayed MMU sees them.
        self.position = 0
        engine.kernel.add_invalidation_listener(self._on_invalidation)

    def _on_invalidation(self, pid: int, start_vpn: int, count: int) -> None:
        if pid == self._bench_pid:
            self.events.append((self.position, start_vpn, count))

    def on_access(self, index: int, vpn: int) -> None:
        translation = self._page_table.lookup(vpn)
        if translation is None:  # pragma: no cover - faulted in by engine
            raise TranslationError(f"capture of unmapped vpn {vpn}")
        row = self.records[index]
        row[0] = translation.pfn
        row[1] = int(translation.attributes)
        row[2] = 1 if translation.is_superpage else 0
        path = self._page_table.walk_path_addresses(vpn)
        row[3] = len(path)
        row[_PATH_BASE:_PATH_BASE + len(path)] = path
        row[_PATH_BASE + len(path):_MASK_COLUMN] = -1
        if not translation.is_superpage:
            mask = 0
            for offset, neighbour in enumerate(
                self._page_table.pte_cache_line(vpn)
            ):
                if neighbour is not None:
                    mask |= 1 << offset
                    row[_LINE_PFN_BASE + offset] = neighbour.pfn
                    row[_LINE_ATTR_BASE + offset] = int(neighbour.attributes)
            row[_MASK_COLUMN] = mask
        self.position = index + 1


def capture_scenario(config: "SimulationConfig") -> CapturedScenario:
    """Run the OS+workload interleaving once; return its translation log.

    The input config is normalised via :func:`scenario_config`, so the
    capture is reusable across every TLB design of the same scenario.
    """
    config = scenario_config(config)
    engine = ScenarioEngine(config)
    engine.prepare()
    recorder = _CaptureRecorder(engine, len(engine.trace.vpns))
    with span(
        "capture",
        benchmark=config.benchmark,
        accesses=config.accesses,
        seed=config.seed,
    ):
        engine.run_loop(recorder.on_access)
        engine.sanity_check()

    with span("capture.dedup", rows=len(recorder.records)):
        records, record_index = np.unique(
            recorder.records, axis=0, return_inverse=True
        )
    if recorder.events:
        event_array = np.asarray(recorder.events, dtype=np.int64)
    else:
        event_array = np.zeros((0, 3), dtype=np.int64)
    return CapturedScenario(
        config=config,
        profile=engine.profile,
        vpns=np.asarray(engine.trace.vpns, dtype=np.int64).copy(),
        records=records,
        record_index=np.asarray(record_index, dtype=np.int64).ravel(),
        inval_before=event_array[:, 0].copy(),
        inval_start=event_array[:, 1].copy(),
        inval_count=event_array[:, 2].copy(),
        kernel_counters=engine.kernel.counters.snapshot(),
        contiguity=ContiguityReport.from_process(engine.process),
        trace_unique_pages=engine.trace.unique_pages,
    )
