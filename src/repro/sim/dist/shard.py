"""Deterministic sharding and the per-shard write-ahead journal.

**Assignment.** A scenario group is identified by the content hash of
its shared scenario config (:func:`repro.sim.store.config_key` -- the
same hash that keys the result store), and lands on worker
``int(hash, 16) % workers``. No wall-clock, no scheduling order: the
same matrix shards identically on every run, so a resumed campaign
re-creates the same shards and every shard store/journal lines up
with its previous incarnation. Reassignment after a lost worker is
equally deterministic: the group re-hashes over the sorted list of
*surviving* worker ids.

**Journal.** Each worker keeps a write-ahead journal of its shard in
its own shard directory: group status (``pending``/``running``/
``done``/``failed``) plus the worker's constants-fingerprint digest.
Transitions are journaled before/after the work they describe and
every rewrite is atomic *and integrity-framed* (the store's SHA-256
frame), so the coordinator's merge can trust any journal it can
decode -- and a torn journal write (the ``torn@dist.journal`` fault,
or a real kill mid-write of a non-atomic filesystem) is detected by
the frame check and degrades to "no journal", never to a wrong one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.common.atomicio import atomic_write_bytes
from repro.obs.logging import get_logger
from repro.sim.faults import FaultPlan, corrupt_bytes
from repro.sim.store import config_key, frame_payload, unframe_payload

_LOG = get_logger(__name__)

#: Journal schema version (bump on layout changes).
SHARD_JOURNAL_VERSION = 1

#: Journal file name inside a worker's shard directory.
JOURNAL_NAME = "shard-journal.bin"

GROUP_PENDING = "pending"
GROUP_RUNNING = "running"
GROUP_DONE = "done"
GROUP_FAILED = "failed"


def group_id(scenario_key) -> str:
    """Stable content hash identifying one scenario group."""
    return config_key(scenario_key)


def assign_worker(gid: str, worker_ids: Sequence[int]) -> int:
    """The worker a group lands on, over any ordered id subset."""
    ordered = sorted(worker_ids)
    return ordered[int(gid, 16) % len(ordered)]


def assign_groups(
    gids: Sequence[str], worker_ids: Sequence[int]
) -> Dict[str, int]:
    """Deterministic group -> worker map (hash mod worker count)."""
    return {gid: assign_worker(gid, worker_ids) for gid in gids}


class ShardJournal:
    """One worker's write-ahead journal of its shard.

    Mirrors the campaign manifest's discipline at group granularity:
    ``mark_running`` precedes the group's batch, ``mark_done`` /
    ``mark_failed`` follow it, and every mutation rewrites the whole
    (small) document atomically inside the integrity frame.

    Args:
        path: journal file location (parent created on demand).
        worker_id: owning worker.
        fingerprint: the worker's constants-fingerprint digest, stored
            so a merge can detect a journal written under foreign
            constants.
        faults: optional plan whose ``torn@dist.journal`` /
            ``corrupt@dist.journal`` specs mutate journal writes,
            indexed by this journal's write count.
    """

    def __init__(
        self,
        path,
        worker_id: int,
        fingerprint: str,
        faults: Optional[FaultPlan] = None,
        entries: Optional[Dict[str, str]] = None,
    ) -> None:
        self.path = Path(path)
        self.worker_id = worker_id
        self.fingerprint = fingerprint
        self.entries: Dict[str, str] = dict(entries or {})
        self._faults = faults
        self._write_index = 0

    @classmethod
    def open(
        cls,
        path,
        worker_id: int,
        fingerprint: str,
        faults: Optional[FaultPlan] = None,
    ) -> "ShardJournal":
        """Load an existing journal, or start fresh.

        An unreadable/torn/foreign-version journal degrades to a fresh
        one with a warning: the journal is an optimisation and an
        audit trail, never the source of truth for results (those are
        content-hash verified in the stores).
        """
        journal = cls(path, worker_id, fingerprint, faults=faults)
        data = read_journal(path)
        if data is None:
            return journal
        if data.get("fingerprint") != fingerprint:
            _LOG.warning(
                "shard journal %s was written under a different "
                "constants fingerprint; starting fresh", path,
            )
            return journal
        journal.entries = {
            str(gid): str(status)
            for gid, status in data.get("groups", {}).items()
        }
        return journal

    def save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "version": SHARD_JOURNAL_VERSION,
                "worker": self.worker_id,
                "fingerprint": self.fingerprint,
                "groups": self.entries,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        frame = frame_payload(payload)
        index = self._write_index
        self._write_index += 1
        if self._faults is not None:
            kind = self._faults.corruption_at(
                site="dist.journal", index=index
            )
            if kind is not None:
                frame = corrupt_bytes(frame, kind)
        atomic_write_bytes(self.path, frame)

    def status(self, gid: str) -> str:
        return self.entries.get(gid, GROUP_PENDING)

    def done_ids(self) -> List[str]:
        return [
            gid for gid, status in self.entries.items()
            if status == GROUP_DONE
        ]

    def mark_running(self, gid: str) -> None:
        self.entries[gid] = GROUP_RUNNING
        self.save()

    def mark_done(self, gid: str) -> None:
        self.entries[gid] = GROUP_DONE
        self.save()

    def mark_failed(self, gid: str) -> None:
        self.entries[gid] = GROUP_FAILED
        self.save()


def read_journal(path) -> Optional[dict]:
    """Decode a shard journal; None when absent, torn, or foreign.

    Shared by the worker (:meth:`ShardJournal.open`) and the
    coordinator's merge (fingerprint skew detection on sync), so both
    apply the identical frame check.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        _LOG.debug("no shard journal at %s (fresh shard)", path)
        return None
    except OSError as exc:
        _LOG.warning("unreadable shard journal %s: %s", path, exc)
        return None
    try:
        data = json.loads(unframe_payload(blob).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        _LOG.warning(
            "torn/corrupt shard journal %s (%s); ignoring it", path, exc
        )
        return None
    if not isinstance(data, dict) or \
            data.get("version") != SHARD_JOURNAL_VERSION:
        _LOG.warning(
            "shard journal %s has foreign version %r; ignoring it",
            path, data.get("version") if isinstance(data, dict) else "?",
        )
        return None
    return data
