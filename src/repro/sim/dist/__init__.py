"""Distributed sharded campaigns: a coordinator/worker layer.

``repro.sim.runner`` parallelises *inside* one process with a pool;
this package shards the (scenario x design) matrix across N worker
*subprocesses*, each with its own result-store shard and write-ahead
shard journal, speaking a length-prefixed SHA-256-framed protocol over
stdin/stdout (the same integrity frame the result store uses on disk).

Pieces:

* :mod:`repro.sim.dist.protocol` -- the framed wire messages.
* :mod:`repro.sim.dist.shard` -- deterministic group->worker
  assignment and the per-shard write-ahead journal.
* :mod:`repro.sim.dist.worker` -- the worker subprocess entry point
  (``python -m repro.sim.dist.worker``).
* :mod:`repro.sim.dist.coordinator` -- :class:`DistributedRunner`, an
  :class:`~repro.sim.runner.ExperimentRunner` whose scenario groups
  run on workers; it detects lost workers by heartbeat/EOF, reassigns
  their shards (bounded), quarantines fingerprint-desynced shards,
  and merges results into the primary store by content hash.

Knobs: ``COLT_WORKERS`` (``--workers N``) turns the layer on;
``COLT_HEARTBEAT_TIMEOUT`` sets the seconds of silence after which a
worker is declared lost.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable selecting the worker count (``--workers``).
WORKERS_ENV = "COLT_WORKERS"

#: Environment variable for the worker-lost heartbeat timeout.
HEARTBEAT_ENV = "COLT_HEARTBEAT_TIMEOUT"

#: Seconds of worker silence before the coordinator declares it lost.
DEFAULT_HEARTBEAT_TIMEOUT = 30.0


def workers_from_env() -> Optional[int]:
    """Worker count named by ``COLT_WORKERS``; None when unset/<=1."""
    text = os.environ.get(WORKERS_ENV, "").strip()
    if not text:
        return None
    count = int(text)
    return count if count > 1 else None


def heartbeat_timeout_from_env(
    default: float = DEFAULT_HEARTBEAT_TIMEOUT,
) -> float:
    """Heartbeat timeout from ``COLT_HEARTBEAT_TIMEOUT`` (seconds)."""
    text = os.environ.get(HEARTBEAT_ENV, "").strip()
    if not text:
        return default
    seconds = float(text)
    return seconds if seconds > 0 else default
