"""The coordinator/worker wire protocol: framed, checksummed pickles.

Every message is a plain dict with a ``"type"`` key, pickled and
wrapped in the result store's integrity frame
(:func:`repro.sim.store.frame_payload`: magic prefix, 8-byte
big-endian payload length, SHA-256 over the payload). Reusing the
PR 4 framing means a torn or bit-flipped frame is detected before
``pickle`` ever parses hostile bytes, on the wire exactly as on disk.

Message types:

``hello``
    Worker -> coordinator, once at startup: worker id, pid, and the
    worker's constants-fingerprint digest. A digest that differs from
    the coordinator's own is a *shard desync* -- the worker would
    compute results under different architectural constants -- and the
    coordinator quarantines the shard instead of assigning to it.
``assign``
    Coordinator -> worker: one scenario group (the shared scenario
    config plus every member config) to capture and replay.
``result``
    Worker -> coordinator: the group's ``(config, result)`` pairs,
    plus the fingerprint digest again (re-checked at merge time).
``error``
    Worker -> coordinator: the group failed permanently (retries
    exhausted inside the worker); carries the error text.
``heartbeat``
    Worker -> coordinator, periodically from a side thread; silence
    past ``COLT_HEARTBEAT_TIMEOUT`` marks the worker lost.
``shutdown``
    Coordinator -> worker: finish the in-flight group, journal, and
    exit (stage one of the two-stage shutdown).
``bye``
    Worker -> coordinator: acknowledges shutdown / end of input.

A clean EOF at a frame boundary reads as ``None``; a partial or
corrupt frame raises :class:`ProtocolError` (the coordinator treats
both as a lost worker).
"""

from __future__ import annotations

import hashlib
import json
import pickle
from typing import BinaryIO, Optional

from repro.common.errors import SimulationError
from repro.sim.store import (
    STORE_MAGIC,
    constants_fingerprint,
    frame_payload,
    unframe_payload,
)

#: Frame header: magic + 8-byte big-endian payload length + SHA-256.
HEADER_LEN = len(STORE_MAGIC) + 8 + 32

#: Refuse frames claiming more than this many payload bytes -- a
#: corrupt length field must not turn into an unbounded read.
MAX_PAYLOAD = 1 << 30

MSG_HELLO = "hello"
MSG_ASSIGN = "assign"
MSG_RESULT = "result"
MSG_ERROR = "error"
MSG_HEARTBEAT = "heartbeat"
MSG_SHUTDOWN = "shutdown"
MSG_BYE = "bye"


class ProtocolError(SimulationError):
    """A wire frame was torn, corrupt, or structurally invalid."""


def fingerprint_digest() -> str:
    """SHA-256 digest of this process's constants fingerprint.

    Both ends compute it independently; a mismatch means worker and
    coordinator would not agree on what any result *means*, so the
    worker's shard must be quarantined, never merged.
    """
    canonical = json.dumps(
        constants_fingerprint(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_message(stream: BinaryIO, message: dict) -> None:
    """Frame and write one message; flushes so the peer sees it now."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(frame_payload(payload))
    stream.flush()


def _read_exact(stream: BinaryIO, count: int, anything: bool) -> bytes:
    """Read exactly ``count`` bytes; empty at a frame boundary is EOF.

    ``anything`` marks that part of a frame was already consumed, so a
    short read is a torn frame rather than a clean end of stream.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    data = b"".join(chunks)
    if len(data) == count:
        return data
    if not data and not anything:
        return b""  # clean EOF between frames
    raise ProtocolError(
        f"torn wire frame: wanted {count} bytes, stream ended after "
        f"{len(data)}"
    )


def read_message(stream: BinaryIO) -> Optional[dict]:
    """Read one framed message; None on clean EOF.

    Raises :class:`ProtocolError` on a torn frame, checksum mismatch,
    oversized length field, or a payload that is not a typed dict.
    """
    header = _read_exact(stream, HEADER_LEN, anything=False)
    if not header:
        return None
    if not header.startswith(STORE_MAGIC):
        raise ProtocolError("wire frame lacks the store magic prefix")
    magic_len = len(STORE_MAGIC)
    length = int.from_bytes(header[magic_len:magic_len + 8], "big")
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"wire frame claims {length} payload bytes "
            f"(cap {MAX_PAYLOAD}); refusing"
        )
    payload = _read_exact(stream, length, anything=True)
    try:
        message = pickle.loads(unframe_payload(header + payload))
    except (ValueError, pickle.UnpicklingError, EOFError,
            AttributeError, ImportError, IndexError, KeyError,
            TypeError) as exc:
        raise ProtocolError(f"undecodable wire frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(
            f"wire message is not a typed dict: {type(message).__name__}"
        )
    return message
