"""The distributed coordinator: an ExperimentRunner over worker shards.

:class:`DistributedRunner` subclasses
:class:`~repro.sim.runner.ExperimentRunner` and overrides exactly one
seam -- ``_run_groups`` -- so everything above it (store probing,
in-process memoisation, campaign journaling, the watchdog ladder, the
CLI) is unchanged: a distributed campaign is an ordinary campaign whose
scenario groups happen to execute in worker subprocesses.

Fault-tolerance model:

* **Deterministic sharding.** Groups land on workers by content hash
  (:func:`repro.sim.dist.shard.assign_worker`), so reruns and resumes
  shard identically and every worker reuses its own shard store.
* **Worker loss.** EOF on a worker's pipe, a torn protocol frame, or
  heartbeat silence past the timeout marks the worker lost; its
  unfinished groups are reassigned deterministically over the sorted
  survivors, at most :data:`MAX_GROUP_REASSIGNS` times per group, after
  which the group runs inline in the coordinator -- loss can cost time,
  never results.
* **Shard desync.** A worker whose constants-fingerprint digest differs
  from the coordinator's (the ``shard-desync@dist`` fault, or a real
  code/constants skew) is never assigned to and never merged from: its
  shard directory is quarantined under ``dist/quarantine/``. Merging by
  content hash is the backstop -- a desynced worker's keys do not even
  collide with the primary store's -- but quarantine keeps alien bytes
  out of the store entirely.
* **Two-stage shutdown.** When the :class:`ShutdownCoordinator` has a
  signal, the coordinator stops assigning, tells workers to wind down,
  and raises :class:`ShutdownRequested`; every merged group was already
  ``_finish``-ed (and store-saved) beforehand, so ``--resume`` replays
  only what is missing, byte-identically.
"""

from __future__ import annotations

import math
import os
import queue
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

import repro
from repro.common.errors import TaskExecutionError
from repro.common.statistics import CounterSet
from repro.obs.live import get_progress
from repro.obs.logging import get_logger
from repro.obs.registry import bind_counterset, get_registry
from repro.obs.trace import obs_active, span
from repro.sim.dist import heartbeat_timeout_from_env
from repro.sim.dist.protocol import (
    MSG_ASSIGN,
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_RESULT,
    MSG_SHUTDOWN,
    ProtocolError,
    fingerprint_digest,
    read_message,
    write_message,
)
from repro.sim.dist.shard import (
    JOURNAL_NAME,
    assign_worker,
    group_id,
    read_journal,
)
from repro.sim.runner import ExperimentRunner
from repro.sim.store import unframe_payload

_LOG = get_logger(__name__)

#: Times a group may be handed to a replacement worker before the
#: coordinator gives up on delegation and runs it inline.
MAX_GROUP_REASSIGNS = 2

#: Seconds a worker gets to exit after a shutdown message.
_WIND_DOWN_S = 10.0

#: Event-queue poll slice; bounds shutdown/staleness latency.
_POLL_SLICE_S = 0.2

#: Subdirectories of ``<store>/dist/``.
SHARDS_DIR = "shards"
DIST_QUARANTINE_DIR = "quarantine"

#: Tallies surfaced as ``colt_dist_*`` when observability is active.
DIST_COUNTERS = (
    "workers",      # worker subprocesses spawned
    "groups",       # scenario groups dispatched through the dist layer
    "merged",       # groups whose results merged into the coordinator
    "heartbeats",   # heartbeat messages received
    "lost",         # workers declared lost (EOF / torn frame / silence)
    "desyncs",      # workers quarantined for fingerprint skew
    "reassigned",   # group reassignments after a loss/desync
    "inline",       # groups that fell back to inline execution
    "errors",       # permanent group failures reported by workers
    "synced",       # shard store entries synced into the primary store
)


class _Worker:
    """Coordinator-side handle for one worker subprocess."""

    def __init__(self, worker_id: int, proc: subprocess.Popen,
                 shard_dir: Optional[Path]) -> None:
        self.id = worker_id
        self.proc = proc
        self.shard_dir = shard_dir
        self.alive = True
        self.desynced = False
        self.fingerprint: Optional[str] = None  # set by hello
        self.last_seen = time.monotonic()
        self.assigned: Set[str] = set()   # gids in flight on this worker
        self.reader: Optional[threading.Thread] = None

    @property
    def ready(self) -> bool:
        return self.alive and not self.desynced and \
            self.fingerprint is not None


class DistributedRunner(ExperimentRunner):
    """ExperimentRunner whose scenario groups run on worker shards.

    Args:
        workers: worker subprocess count; ``<= 1`` degrades to the
            plain inherited (single-process-pool) behaviour.
        jobs: *aggregate* parallelism target, split across workers
            (each worker gets ``ceil(jobs / workers)`` pool jobs)
            unless ``worker_jobs`` pins it explicitly.
        heartbeat_timeout: seconds of worker silence before it is
            declared lost; defaults to ``COLT_HEARTBEAT_TIMEOUT``.
        worker_jobs: pool jobs per worker (overrides the split).

    Remaining arguments match :class:`ExperimentRunner`.
    """

    def __init__(
        self,
        workers: int,
        jobs: Optional[int] = None,
        store=None,
        policy=None,
        faults=None,
        shutdown=None,
        watchdog=None,
        engine: Optional[str] = None,
        heartbeat_timeout: Optional[float] = None,
        worker_jobs: Optional[int] = None,
    ) -> None:
        super().__init__(
            jobs=jobs, store=store, policy=policy, faults=faults,
            shutdown=shutdown, watchdog=watchdog, engine=engine,
        )
        self.workers = max(1, int(workers))
        self._heartbeat_timeout = (
            heartbeat_timeout if heartbeat_timeout
            else heartbeat_timeout_from_env()
        )
        self._worker_jobs = (
            max(1, int(worker_jobs)) if worker_jobs
            else max(1, math.ceil(self._jobs / self.workers))
        )
        self._fingerprint = fingerprint_digest()
        self._lock = threading.Lock()
        # The fleet persists across batches (worker startup -- a fresh
        # interpreter importing the simulator -- dwarfs per-group wire
        # cost at QUICK scale); dead or desynced workers are replaced
        # lazily at the next batch. Events carry the _Worker *object*,
        # so a replaced worker's trailing EOF can never be mistaken
        # for its successor with the same id.
        self._fleet: Dict[int, _Worker] = {}
        self._events: "queue.Queue[Tuple[_Worker, Optional[dict]]]" = \
            queue.Queue()
        self.dist_counters = CounterSet(DIST_COUNTERS)
        if obs_active():
            bind_counterset(get_registry(), "colt_dist",
                            self.dist_counters)
        if self._store is not None and not self._store.disabled:
            self._dist_root: Optional[Path] = self._store.root / "dist"
            self._sync_shards()
        else:
            self._dist_root = None

    # ------------------------------------------------------------------
    # Shard store merge (resume path).
    # ------------------------------------------------------------------

    def _quarantine_shard(self, worker_id: int,
                          shard_dir: Path) -> None:
        """Move a desynced worker's shard out of the merge path."""
        target = (
            self._dist_root / DIST_QUARANTINE_DIR / shard_dir.name
            if self._dist_root is not None else None
        )
        self.dist_counters.increment("desyncs")
        if target is None or not shard_dir.exists():
            return
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            if target.exists():
                # A previous quarantine of the same worker: keep the
                # older evidence, drop the newer duplicate dir name.
                suffix = len(list(target.parent.iterdir()))
                target = target.with_name(f"{target.name}.{suffix}")
            shard_dir.rename(target)
        except OSError as exc:
            _LOG.warning(
                "could not quarantine desynced shard %s: %s",
                shard_dir, exc,
            )
            return
        _LOG.warning(
            "quarantined desynced shard of worker %d at %s",
            worker_id, target,
        )

    def _sync_shards(self) -> None:
        """Merge surviving shard-store entries into the primary store.

        Runs at construction (the resume path): entries a previous
        run's workers completed but the killed coordinator never
        merged are copied in by file name -- the name *is* the content
        hash of (config, constants), so a synced entry can only ever
        be looked up by the exact config that produced it, and the
        primary store's load-time validation re-checks the payload.
        Shards whose journal carries a foreign fingerprint are
        quarantined, not imported; torn entries are skipped (the
        worker will simply recompute them).
        """
        if self._dist_root is None:
            return
        shards_root = self._dist_root / SHARDS_DIR
        if not shards_root.is_dir():
            return
        for shard_dir in sorted(shards_root.iterdir()):
            if not shard_dir.is_dir():
                continue
            journal = read_journal(shard_dir / JOURNAL_NAME)
            if journal is not None and \
                    journal.get("fingerprint") != self._fingerprint:
                try:
                    worker_id = int(journal.get("worker", -1))
                except (TypeError, ValueError):
                    worker_id = -1
                self._quarantine_shard(worker_id, shard_dir)
                continue
            store_dir = shard_dir / "store"
            if not store_dir.is_dir():
                continue
            for entry in sorted(store_dir.glob("*.pkl")):
                target = self._store.root / entry.name
                if target.exists():
                    continue
                try:
                    blob = entry.read_bytes()
                    unframe_payload(blob)  # integrity check only
                except (OSError, ValueError) as exc:
                    _LOG.warning(
                        "skipping torn shard entry %s: %s", entry, exc
                    )
                    continue
                try:
                    target.write_bytes(blob)
                except OSError as exc:
                    _LOG.warning(
                        "could not sync shard entry %s: %s", entry, exc
                    )
                    continue
                self.dist_counters.increment("synced")

    # ------------------------------------------------------------------
    # Worker lifecycle.
    # ------------------------------------------------------------------

    def _spawn(self, worker_id: int) -> _Worker:
        shard_dir = None
        if self._dist_root is not None:
            shard_dir = self._dist_root / SHARDS_DIR / \
                f"worker-{worker_id}"
        cmd = [
            sys.executable, "-m", "repro.sim.dist.worker",
            "--worker-id", str(worker_id),
            "--jobs", str(self._worker_jobs),
            "--heartbeat", str(self._heartbeat_timeout),
        ]
        if self._engine:
            cmd += ["--engine", self._engine]
        if shard_dir is not None:
            cmd += ["--shard-dir", str(shard_dir)]
        env = os.environ.copy()
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
        proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            env=env,
        )
        worker = _Worker(worker_id, proc, shard_dir)
        worker.reader = threading.Thread(
            target=self._read_worker, args=(worker,),
            name=f"dist-reader-{worker_id}", daemon=True,
        )
        worker.reader.start()
        self.dist_counters.increment("workers")
        return worker

    def _read_worker(self, worker: _Worker) -> None:
        """Reader thread: drain one worker's stdout into the queue."""
        stream = worker.proc.stdout
        while True:
            try:
                message = read_message(stream)
            except ProtocolError as exc:
                _LOG.warning(
                    "torn frame from worker %d: %s", worker.id, exc
                )
                message = None
            except (OSError, ValueError) as exc:
                _LOG.warning(
                    "read error from worker %d: %s", worker.id, exc
                )
                message = None
            with self._lock:
                worker.last_seen = time.monotonic()
            self._events.put((worker, message))
            if message is None:
                return

    def _send(self, worker: _Worker, message: dict) -> bool:
        """Write one message to a worker; False when its pipe is gone."""
        try:
            write_message(worker.proc.stdin, message)
            return True
        except (OSError, ValueError) as exc:
            _LOG.debug("worker %d stdin write failed: %s",
                       worker.id, exc)
            return False

    def _dismiss(self, worker: _Worker) -> None:
        """Politely stop a worker, escalating to terminate/kill."""
        if worker.proc.poll() is None:
            self._send(worker, {"type": MSG_SHUTDOWN})
            try:
                worker.proc.stdin.close()
            except OSError as exc:
                _LOG.debug("worker %d stdin close failed: %s",
                           worker.id, exc)
            try:
                worker.proc.wait(timeout=_WIND_DOWN_S)
            except subprocess.TimeoutExpired:
                worker.proc.terminate()
                try:
                    worker.proc.wait(timeout=_WIND_DOWN_S)
                except subprocess.TimeoutExpired:
                    worker.proc.kill()
                    worker.proc.wait()
        if worker.reader is not None:
            worker.reader.join(timeout=_WIND_DOWN_S)
        if worker.proc.stdout is not None:
            try:
                worker.proc.stdout.close()
            except OSError as exc:
                _LOG.debug("worker %d stdout close failed: %s",
                           worker.id, exc)

    def _stale(self, worker: _Worker) -> bool:
        with self._lock:
            quiet = time.monotonic() - worker.last_seen
        return quiet > self._heartbeat_timeout

    def _ensure_fleet(self) -> Dict[int, _Worker]:
        """The live fleet, spawning replacements for dead workers.

        Called at the top of every distributed batch: healthy workers
        carry over warm (the dominant cost of a worker is interpreter
        startup, not the work), dead/desynced ones are replaced. A
        replacement is a new _Worker object, so any trailing events
        from its predecessor are recognised as stale and dropped.
        """
        for worker_id in range(self.workers):
            worker = self._fleet.get(worker_id)
            if worker is not None and worker.alive and \
                    not worker.desynced and worker.proc.poll() is None:
                continue
            if worker is not None:
                self._dismiss(worker)
                _LOG.info("respawning worker %d (previous incarnation "
                          "%s)", worker_id,
                          "desynced" if worker.desynced else "dead")
            self._fleet[worker_id] = self._spawn(worker_id)
        return dict(self._fleet)

    def close(self) -> None:
        """Dismiss the worker fleet (idempotent; safe mid-failure)."""
        fleet, self._fleet = self._fleet, {}
        for worker_id in sorted(fleet):
            self._dismiss(fleet[worker_id])

    # ------------------------------------------------------------------
    # The distributed _run_groups seam.
    # ------------------------------------------------------------------

    def _run_groups(self, groups) -> None:
        if self.workers <= 1 or len(groups) < 2:
            # One worker -- or one group, where a coordinator hop buys
            # nothing -- runs on the inherited in-process pool.
            super()._run_groups(groups)
            return
        with span(
            "dist.run",
            workers=self.workers,
            groups=len(groups),
            worker_jobs=self._worker_jobs,
        ):
            self._run_distributed(groups)

    def _run_distributed(self, groups) -> None:
        items: Dict[str, Tuple[object, List[object]]] = {
            group_id(key): (key, configs)
            for key, configs in groups.items()
        }
        self.dist_counters.increment("groups", len(items))
        reassigns: Dict[str, int] = {gid: 0 for gid in items}
        inline: List[str] = []     # gids degraded to inline execution
        done: Set[str] = set()
        failures: List[TaskExecutionError] = []
        by_id = self._ensure_fleet()
        fleet = [by_id[worker_id] for worker_id in sorted(by_id)]
        # Deterministic initial shard: hash over the full worker set.
        backlog: Dict[int, List[str]] = {w.id: [] for w in fleet}
        for gid in sorted(items):
            backlog[assign_worker(gid, list(by_id))].append(gid)

        def unfinished(worker: _Worker) -> List[str]:
            stranded = sorted(
                set(backlog.get(worker.id, ())) | worker.assigned
            )
            backlog[worker.id] = []
            worker.assigned.clear()
            return [gid for gid in stranded if gid not in done]

        def reassign(gids: List[str]) -> None:
            survivors = [w.id for w in fleet if w.alive and
                         not w.desynced]
            for gid in gids:
                reassigns[gid] += 1
                if survivors and reassigns[gid] <= MAX_GROUP_REASSIGNS:
                    backlog[assign_worker(gid, survivors)].append(gid)
                    self.dist_counters.increment("reassigned")
                else:
                    inline.append(gid)
                    self.dist_counters.increment("inline")

        def declare_lost(worker: _Worker, why: str) -> None:
            worker.alive = False
            self.dist_counters.increment("lost")
            _LOG.warning(
                "worker %d lost (%s); reassigning its shard",
                worker.id, why,
            )
            reassign(unfinished(worker))

        def declare_desynced(worker: _Worker, digest: str) -> None:
            worker.desynced = True
            _LOG.warning(
                "worker %d reports foreign constants fingerprint "
                "%.12s (coordinator has %.12s); quarantining its "
                "shard, not merging", worker.id, digest,
                self._fingerprint,
            )
            reassign(unfinished(worker))
            self._send(worker, {"type": MSG_SHUTDOWN})
            if worker.shard_dir is not None:
                self._quarantine_shard(worker.id, worker.shard_dir)
            else:
                self.dist_counters.increment("desyncs")

        def progress() -> None:
            get_progress().update_section(
                "dist",
                workers=self.workers,
                alive=sum(1 for w in fleet if w.alive),
                groups=len(items),
                merged=len(done),
                lost=self.dist_counters["lost"],
                desyncs=self.dist_counters["desyncs"],
            )

        progress()
        try:
            while len(done) + len(inline) + len(failures) < len(items):
                if self._shutdown is not None and \
                        self._shutdown.requested:
                    break
                # Keep every ready worker busy with one group at a
                # time; a dead stdin pipe at dispatch is a loss.
                for worker in fleet:
                    if not worker.ready or worker.assigned or \
                            not backlog[worker.id]:
                        continue
                    gid = backlog[worker.id].pop(0)
                    key, configs = items[gid]
                    if self._send(worker, {
                        "type": MSG_ASSIGN, "gid": gid,
                        "configs": list(configs),
                    }):
                        worker.assigned.add(gid)
                    else:
                        backlog[worker.id].insert(0, gid)
                        declare_lost(worker, "stdin pipe closed")
                try:
                    worker, message = self._events.get(
                        timeout=_POLL_SLICE_S
                    )
                except queue.Empty:
                    for worker in fleet:
                        if worker.alive and self._stale(worker):
                            declare_lost(worker, "heartbeat silence")
                    continue
                if by_id.get(worker.id) is not worker:
                    # Trailing event from a replaced incarnation.
                    continue
                if message is None:
                    if worker.alive:
                        declare_lost(worker, "pipe EOF")
                    continue
                kind = message["type"]
                if kind == MSG_HELLO:
                    digest = message.get("fingerprint", "")
                    worker.fingerprint = digest
                    if digest != self._fingerprint:
                        declare_desynced(worker, digest)
                elif kind == MSG_HEARTBEAT:
                    self.dist_counters.increment("heartbeats")
                elif kind == MSG_RESULT:
                    gid = message["gid"]
                    worker.assigned.discard(gid)
                    digest = message.get("fingerprint", "")
                    if digest != self._fingerprint:
                        # Desync detected at merge time: drop the
                        # payload and redo the group elsewhere.
                        declare_desynced(worker, digest)
                        continue
                    for config, result in message["pairs"]:
                        self._finish(config, result)
                    done.add(gid)
                    self.dist_counters.increment("merged")
                    progress()
                elif kind == MSG_ERROR:
                    gid = message["gid"]
                    worker.assigned.discard(gid)
                    done.add(gid)  # terminal: do not retry elsewhere
                    self.dist_counters.increment("errors")
                    key, _configs = items[gid]
                    failures.append(TaskExecutionError(
                        f"worker {worker.id} failed scenario group "
                        f"{gid[:12]}: {message.get('error', '?')}",
                        context={
                            "worker": worker.id,
                            "benchmark": getattr(
                                key, "benchmark", "?"
                            ),
                            "gid": gid,
                        },
                    ))
                # MSG_BYE and anything else: nothing to do.
        except BaseException:
            self.close()
            raise
        finally:
            progress()
        if self._shutdown is not None and self._shutdown.requested:
            # Two-stage shutdown: wind the fleet down (workers journal
            # and exit), then surface the request to the caller.
            self.close()
            self._shutdown.check()
        if inline:
            # Bounded reassignment exhausted (or no survivors):
            # finish the stragglers in-process. Results land in the
            # same store; bit-identity is preserved by construction.
            _LOG.warning(
                "running %d scenario group(s) inline after worker "
                "losses: %s", len(inline),
                ", ".join(gid[:12] for gid in sorted(inline)),
            )
            leftover = {
                items[gid][0]: items[gid][1] for gid in sorted(inline)
            }
            super()._run_groups(leftover)
        if failures:
            raise failures[0]
