"""Worker subprocess entry point: ``python -m repro.sim.dist.worker``.

A worker owns one shard: its own :class:`~repro.sim.store.ResultStore`
under ``--shard-dir`` plus a :class:`~repro.sim.dist.shard.ShardJournal`
write-ahead journal, and a private
:class:`~repro.sim.runner.ExperimentRunner` that executes assigned
scenario groups with ``--jobs`` local processes. All protocol traffic
flows over stdin/stdout (which is why this module must never print);
diagnostics go to stderr through the ``colt`` logger.

Fault hooks (deterministic, from the inherited ``COLT_FAULTS`` plan,
indexed by worker id):

``worker-lost@dist``
    arm at startup, hard-exit (``os._exit``) on the first assignment --
    the coordinator sees EOF/heartbeat silence mid-group, exactly like
    a worker host dying.
``shard-desync@dist``
    report a perturbed constants-fingerprint digest in ``hello`` and
    every ``result`` -- the coordinator must quarantine this shard
    rather than merge it.
``torn@dist.journal`` / ``corrupt@dist.journal``
    mutate shard-journal writes (see :mod:`repro.sim.dist.shard`).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from pathlib import Path
from typing import Optional

from repro.common.errors import ShutdownRequested, SimulationError
from repro.obs.logging import configure_logging, get_logger
from repro.sim.dist import DEFAULT_HEARTBEAT_TIMEOUT
from repro.sim.dist.protocol import (
    MSG_ASSIGN,
    MSG_BYE,
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_RESULT,
    MSG_SHUTDOWN,
    fingerprint_digest,
    read_message,
    write_message,
)
from repro.sim.dist.shard import JOURNAL_NAME, ShardJournal
from repro.sim.faults import CRASH_EXIT_CODE, FaultPlan
from repro.sim.runner import ExperimentRunner
from repro.sim.store import ResultStore

_LOG = get_logger(__name__)

#: Heartbeats per timeout window; 4 gives the coordinator three missed
#: beats of slack before the deadline.
_BEATS_PER_TIMEOUT = 4


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.dist.worker",
        description="distributed campaign worker (internal entry point)",
    )
    parser.add_argument("--worker-id", type=int, required=True)
    parser.add_argument(
        "--shard-dir", default=None,
        help="shard directory (store + write-ahead journal); "
        "omitted = storeless",
    )
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--engine", default=None)
    parser.add_argument(
        "--heartbeat", type=float, default=DEFAULT_HEARTBEAT_TIMEOUT,
        help="coordinator's worker-lost timeout in seconds; heartbeats "
        "are sent several times per window",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0)
    return parser


class _Heartbeat:
    """Periodic ``heartbeat`` sender on a daemon thread.

    Shares the stdout lock with the main loop so heartbeats never
    interleave with result frames. Paced by ``Event.wait`` -- no
    wall-clock reads in the worker.
    """

    def __init__(self, stream, lock: threading.Lock,
                 worker_id: int, timeout: float) -> None:
        self._stream = stream
        self._lock = lock
        self._worker_id = worker_id
        self._interval = max(0.05, timeout / _BEATS_PER_TIMEOUT)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="dist-heartbeat", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def _run(self) -> None:
        message = {"type": MSG_HEARTBEAT, "worker": self._worker_id}
        while not self._stop.wait(self._interval):
            try:
                with self._lock:
                    write_message(self._stream, message)
            except (OSError, ValueError) as exc:
                # Coordinator went away (broken/closed pipe); the main
                # loop will see EOF on stdin and exit on its own.
                _LOG.debug("heartbeat write failed: %s", exc)
                return


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    configure_logging(args.verbose)
    # The coordinator owns shutdown: on SIGINT it tells workers to wind
    # down over the protocol, so a terminal Ctrl+C (delivered to the
    # whole foreground group) must not also kill workers directly.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    out_lock = threading.Lock()

    plan = FaultPlan.from_env()
    fingerprint = fingerprint_digest()
    lost_armed = False
    if plan is not None:
        kind = plan.dist_fault(site="dist", index=args.worker_id)
        if kind == "shard-desync":
            # Simulate a worker built against skewed constants: every
            # digest this worker reports disagrees with the
            # coordinator's own.
            fingerprint = "desync-" + fingerprint
            _LOG.warning(
                "worker %d: injected shard-desync (perturbed "
                "fingerprint)", args.worker_id,
            )
        elif kind == "worker-lost":
            lost_armed = True
            _LOG.warning(
                "worker %d: injected worker-lost armed (will die on "
                "first assignment)", args.worker_id,
            )

    store: Optional[ResultStore] = None
    journal: Optional[ShardJournal] = None
    if args.shard_dir:
        shard_dir = Path(args.shard_dir)
        # Store-site (torn@store / corrupt@store) faults stay with the
        # coordinator's primary store; shard stores only take the
        # dist.journal faults, through the journal.
        store = ResultStore(shard_dir / "store", faults=FaultPlan(()))
        journal = ShardJournal.open(
            shard_dir / JOURNAL_NAME, args.worker_id, fingerprint,
            faults=plan,
        )

    runner = ExperimentRunner(
        jobs=args.jobs, store=store, engine=args.engine
    )

    heartbeat = _Heartbeat(
        stdout, out_lock, args.worker_id, args.heartbeat
    )
    with out_lock:
        write_message(stdout, {
            "type": MSG_HELLO,
            "worker": args.worker_id,
            "pid": os.getpid(),
            "fingerprint": fingerprint,
        })
    heartbeat.start()

    exit_code = 0
    while True:
        message = read_message(stdin)
        if message is None:
            _LOG.info("worker %d: coordinator closed the pipe",
                      args.worker_id)
            break
        kind = message["type"]
        if kind == MSG_SHUTDOWN:
            with out_lock:
                write_message(stdout, {
                    "type": MSG_BYE, "worker": args.worker_id,
                })
            break
        if kind != MSG_ASSIGN:
            _LOG.warning("worker %d: ignoring unexpected %r message",
                         args.worker_id, kind)
            continue
        if lost_armed:
            # Injected worker loss: die exactly like a killed host --
            # no journal write, no farewell, not even atexit handlers.
            os._exit(CRASH_EXIT_CODE)
        gid = message["gid"]
        configs = message["configs"]
        if journal is not None:
            journal.mark_running(gid)
        try:
            results = runner.run_batch(configs)
            pairs = [(config, results[config]) for config in configs]
        except ShutdownRequested:
            exit_code = 75
            break
        except SimulationError as exc:
            if journal is not None:
                journal.mark_failed(gid)
            with out_lock:
                write_message(stdout, {
                    "type": MSG_ERROR,
                    "worker": args.worker_id,
                    "gid": gid,
                    "error": f"{type(exc).__name__}: {exc}",
                })
            continue
        if journal is not None:
            journal.mark_done(gid)
        with out_lock:
            write_message(stdout, {
                "type": MSG_RESULT,
                "worker": args.worker_id,
                "gid": gid,
                "fingerprint": fingerprint,
                "pairs": pairs,
            })

    heartbeat.stop()
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
