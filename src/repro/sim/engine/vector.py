"""Vectorized replay engine: epoch-batched array program over the log.

``replay_scenario`` interprets one ``MMU.access`` per simulated access.
This engine replays the same captured scenario in *epochs*: stretches of
the access log bounded by shootdown events (the loop-carried statements
named in ``results/analysis/vectorization_replay.md``), chunked at
``COLT_EPOCH_MAX`` accesses. For each epoch window it

1. exports the L1 SA TLB and the FA/superpage TLB as sorted coverage
   interval arrays (``soa.LeanSetTLB.coverage`` /
   ``soa.LeanFaTLB.coverage``),
2. resolves every access's hit/miss outcome against that snapshot with
   one NumPy scan (:func:`scan_window`), and
3. walks the window with scan-attributed hits on the fast path --
   a counter bump plus one LRU touch -- falling back to a lean scalar
   step (:meth:`VectorMMU._step`) for misses and for positions whose
   scan attribution may be stale.

Staleness is tracked with three per-window sets: ids removed from the
L1 since the scan (``dead_sa``), ids removed from the FA since the scan
(``dead_fa``), and VPNs newly covered by the L1 since the scan
(``new_sa``). A scan-attributed SA hit is genuine iff its entry is still
alive: L1 coverage intervals are globally disjoint (an insert displaces
every overlapping resident), so a surviving coverer is *the* coverer. A
scan-attributed FA hit is genuine iff its entry is still alive *and* the
VPN gained no L1 coverage since the scan: FA attribution is
first-coverer-in-insertion-order, new entries only append, and the L1
is probed first in the scalar flow. Any guard failure drops the access
into the lean step, which re-probes from scratch and is always correct.

Counter updates are epoch-aggregated: the window loop accumulates plain
ints and flushes them into the real :class:`CounterSet` once per epoch
boundary (``counters.increment(name, delta)``), not once per access.
The result is bit-identical to the scalar oracle -- tables, all 13 MMU
counters, and coalescing histograms -- which ``tests/test_engine.py``
asserts for every design.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.sanitizers import resolve_sanitize
from repro.cache.hierarchy import HierarchyConfig
from repro.cache.mmu_cache import MMUCacheConfig
from repro.common.errors import SimulationError
from repro.common.statistics import CounterSet
from repro.core.mmu import CoLTDesign, MMUConfig, make_mmu_config
from repro.core.performance import evaluate_performance, perfect_tlb_result
from repro.obs.hooks import MMUObserver
from repro.obs.registry import bind_counterset, get_registry
from repro.obs.trace import span
from repro.sim.engine import epoch_max
from repro.sim.engine.records import RecordTable
from repro.sim.engine.soa import (
    LeanFaTLB,
    LeanLLC,
    LeanMMUCache,
    LeanSetTLB,
    pollution_schedule,
)
from repro.sim.replay import replay_scenario
from repro.sim.scenario import CapturedScenario, scenario_config
from repro.sim.system import SimulationConfig, SimulationResult

#: The MMU counter names, in ``MMU.__init__`` order.
_COUNTERS = (
    "accesses",
    "l1_sa_hits",
    "l1_fa_hits",
    "l1_misses",
    "l2_hits",
    "l2_misses",
    "walks",
    "walk_latency",
    "coalesced_fills",
    "uncoalesced_fills",
    "fa_routed_fills",
    "sa_routed_fills",
    "invalidations",
)


def scan_window(vpns, sa_starts, sa_ends, sa_ids, fa_base, fa_end, fa_ids):
    """Resolve one window's TLB coverage against interval snapshots.

    ``sa_*`` are the L1 SA TLB's coverage intervals (inclusive ends),
    sorted by start and globally disjoint, with a leading ``(-2, -2,
    -1)`` sentinel; ``fa_*`` are the FA TLB's intervals (exclusive
    ends) in insertion order with the same sentinel. Returns boolean
    hit masks and the covering entry id per access for both TLBs.
    """
    pos = np.searchsorted(sa_starts, vpns, side="right") - 1
    sa_hit = vpns <= sa_ends[pos]
    sa_entry = sa_ids[pos]
    cover = (fa_base[np.newaxis, :] <= vpns[:, np.newaxis]) & (
        vpns[:, np.newaxis] < fa_end[np.newaxis, :]
    )
    fa_hit = np.any(cover, axis=1)
    fa_entry = fa_ids[np.argmax(cover, axis=1)]
    return sa_hit, sa_entry, fa_hit, fa_entry


class VectorMMU:
    """Replays one captured scenario with epoch-batched TLB resolution.

    Mirrors ``MMU`` + ``ReplayWalker`` + ``LLCPollution`` over the lean
    structure-of-arrays state in :mod:`repro.sim.engine.soa`, and
    duck-types the subset of the ``MMU`` surface that
    :func:`repro.core.performance.evaluate_performance` and result
    assembly read (``l1_misses`` / ``l2_misses`` / ``total_walk_cycles``
    / ``total_l2_hit_cycles`` / ``counters``).
    """

    def __init__(
        self,
        config: MMUConfig,
        scenario: CapturedScenario,
        llc_pollution_per_access: float,
    ) -> None:
        self.config = config
        self.design = config.design
        self.accesses = int(scenario.vpns.size)
        self._ev_before: List[int] = scenario.inval_before.tolist()
        self._ev_start: List[int] = scenario.inval_start.tolist()
        self._ev_count: List[int] = scenario.inval_count.tolist()
        self.counters = CounterSet(list(_COUNTERS))
        # Epoch-aggregated pending deltas, flushed per epoch boundary.
        for name in _COUNTERS:
            setattr(self, "_c_" + name, 0)
        self._obs: Optional[MMUObserver] = MMUObserver.create(
            config.design.value
        )
        if self._obs is not None:
            bind_counterset(
                get_registry(), "colt_mmu", self.counters,
                design=config.design.value,
            )
        if self.design is CoLTDesign.PERFECT:
            # A perfect TLB never probes, walks or fills: none of the
            # decoded state below can be observed, so skip building it.
            return
        self._vp = np.asarray(scenario.vpns, dtype=np.int64)
        self._vp_l: List[int] = self._vp.tolist()
        self._ri: List[int] = scenario.record_index.tolist()
        self._rt = RecordTable.from_records(scenario.records)

        # Staleness guards shared with the lean TLBs (reset per scan).
        self._dead_sa: set = set()
        self._dead_fa: set = set()
        self._new_sa: set = set()

        l1c, l2c, spc = config.l1, config.l2, config.superpage
        self.l1 = LeanSetTLB(
            l1c.num_sets, l1c.ways, l1c.index_shift,
            l1c.graceful_invalidation, l1c.coalescing_aware_replacement,
            dead=self._dead_sa, new_vpns=self._new_sa,
        )
        self.l2 = LeanSetTLB(
            l2c.num_sets, l2c.ways, l2c.index_shift,
            l2c.graceful_invalidation, l2c.coalescing_aware_replacement,
        )
        self.fa = LeanFaTLB(
            spc.entries, spc.merge_on_insert, spc.max_span,
            spc.graceful_invalidation, dead=self._dead_fa,
        )
        mmuc = MMUCacheConfig()
        self.mmu_cache = LeanMMUCache(mmuc.entries)
        self._mmu_latency = mmuc.latency
        hier = HierarchyConfig()
        self.llc = LeanLLC(hier.llc.num_sets, hier.llc.ways)
        self._llc_latency = hier.llc.latency
        self._dram_latency = hier.dram_latency
        self._sched = pollution_schedule(
            self.accesses, llc_pollution_per_access, hier.llc.num_sets
        )
        self._sched_pos = 0

        self._g1 = l1c.group_size
        self._g2 = l2c.group_size
        self._window = config.coalescing_window
        self._fa_fill_l2 = config.fa_fill_l2
        self._all_threshold = config.effective_all_threshold

    # ------------------------------------------------------------------
    # The epoch loop.
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Replay the whole scenario (counters valid afterwards)."""
        n = self.accesses
        before, starts, counts = (
            self._ev_before, self._ev_start, self._ev_count,
        )
        total_events = len(before)
        pending = 0
        if self.design is CoLTDesign.PERFECT:
            # Perfect TLBs never probe or walk; only the access and
            # invalidation counters (and shootdown events) are live.
            self._c_accesses += n
            while pending < total_events:
                self._invalidate_range(starts[pending], counts[pending])
                pending += 1
            self._flush_counters()
            return
        chunk = epoch_max()
        index = 0
        while index < n:
            while pending < total_events and before[pending] <= index:
                # Epoch boundary: aggregate counters, then the event.
                self._flush_counters()
                self._invalidate_range(starts[pending], counts[pending])
                pending += 1
            limit = before[pending] if pending < total_events else n
            if limit > n:
                limit = n
            end = min(limit, index + chunk)
            self._process_window(index, end)
            index = end
        # Shootdowns that trailed the final access still land before the
        # counters are snapshotted, exactly as in the scalar loop.
        while pending < total_events:
            self._flush_counters()
            self._invalidate_range(starts[pending], counts[pending])
            pending += 1
        self._flush_counters()

    def _process_window(self, start: int, end: int) -> None:
        """One epoch window: scan once, fast-path hits, step the rest."""
        sa_s, sa_e, sa_i = self.l1.coverage()
        fa_b, fa_e, fa_i = self.fa.coverage()
        sa_hit, sa_entry, fa_hit, fa_entry = scan_window(
            self._vp[start:end], sa_s, sa_e, sa_i, fa_b, fa_e, fa_i
        )
        sa_hit_l = sa_hit.tolist()
        sa_id_l = sa_entry.tolist()
        fa_hit_l = fa_hit.tolist()
        fa_id_l = fa_entry.tolist()
        dead_sa = self._dead_sa
        dead_fa = self._dead_fa
        new_sa = self._new_sa
        dead_sa.clear()
        dead_fa.clear()
        new_sa.clear()
        vp_l = self._vp_l
        l1 = self.l1
        fa = self.fa
        step = self._step
        hits_sa = 0
        hits_fa = 0
        # Same-page repeat fast path: when an access repeats the previous
        # VPN and that access resolved as an L1-level hit, this one is
        # the identical hit -- the hit path mutates nothing but recency,
        # and the hitting entry is already MRU, so even the LRU touch is
        # a no-op. ``prev_level`` is 1 (SA hit), 2 (FA hit) or 0 (walked
        # or unknown -- take the normal path to re-establish recency).
        prev_vpn = -1
        prev_level = 0
        for offset in range(end - start):
            index = start + offset
            vpn = vp_l[index]
            if vpn == prev_vpn:
                if prev_level == 1:
                    hits_sa += 1
                    continue
                if prev_level == 2:
                    hits_fa += 1
                    continue
            else:
                prev_vpn = vpn
                if sa_hit_l[offset]:
                    eid = sa_id_l[offset]
                    if eid not in dead_sa:
                        hits_sa += 1
                        l1.touch(eid, vpn)
                        prev_level = 1
                        continue
                elif fa_hit_l[offset]:
                    fid = fa_id_l[offset]
                    if fid not in dead_fa and vpn not in new_sa:
                        hits_fa += 1
                        fa.touch(fid)
                        prev_level = 2
                        continue
            prev_level = step(index, vpn)
        self._c_accesses += end - start
        self._c_l1_sa_hits += hits_sa
        self._c_l1_fa_hits += hits_fa

    # ------------------------------------------------------------------
    # The lean scalar step (misses + stale scan positions).
    # ------------------------------------------------------------------

    def _step(self, index: int, vpn: int) -> int:
        """One access through the full MMU flow, on the lean state.

        Returns the repeat-access level for the window loop: 1 when a
        same-VPN access would now hit the L1 SA TLB on an already-MRU
        unique coverer, 2 for the same situation in the FA TLB, 0 when
        the next access must re-probe (an FA-routed or superpage fill:
        entries may overlap there, so the winning entry -- and therefore
        the recency update -- is not determined without a probe).
        """
        if self.l1.probe(vpn) is not None:
            self._c_l1_sa_hits += 1
            return 1
        if self.fa.probe(vpn) is not None:
            self._c_l1_fa_hits += 1
            return 2
        self._c_l1_misses += 1
        if self._obs is not None:
            self._obs.on_l1_miss(vpn)
        hit = self.l2.probe(vpn)
        if hit is not None:
            self._c_l2_hits += 1
            s, e, ppn, attr = hit
            base = vpn - (vpn % self._g1)
            lo = s if s > base else base
            top = base + self._g1 - 1
            hi = e if e < top else top
            self.l1.insert((lo, hi, ppn + (lo - s), attr))
            # The refilled entry is vpn's unique L1 coverer and is MRU.
            return 1
        self._c_l2_misses += 1
        # LLC pollution is applied lazily: the page walk is the only
        # reader of LLC state, so evictions scheduled for earlier
        # accesses catch up just before this walk reads the LLC.
        sched = self._sched
        pos = self._sched_pos
        if pos < len(sched):
            evict = self.llc.evict_lru_of_set
            while pos < len(sched) and sched[pos][0] < index:
                evict(sched[pos][1])
                pos += 1
            self._sched_pos = pos
        record = self._ri[index]
        latency = self._walk(vpn, record)
        self._c_walks += 1
        self._c_walk_latency += latency
        return self._fill(vpn, record)

    def _walk(self, vpn: int, record: int) -> int:
        """``ReplayWalker.walk``'s latency accounting on lean caches."""
        levels = self._rt.levels[record]
        latency = self._mmu_latency
        deepest = self.mmu_cache.deepest(vpn)
        start_level = 0
        if deepest is not None:
            start_level = deepest + 1
            if start_level > levels - 1:
                start_level = levels - 1
        path = self._rt.path[record]
        for level in range(start_level, levels):
            latency += self._access_pte(path[level])
        self.mmu_cache.fill_walk(vpn, levels)
        return latency

    def _access_pte(self, paddr: int) -> int:
        latency = self._llc_latency
        if not self.llc.access(paddr):
            latency += self._dram_latency
            self.llc.fill(paddr)
        return latency

    # ------------------------------------------------------------------
    # Fill policies (mirroring ``MMU._fill*`` over record-table rows).
    # ------------------------------------------------------------------

    def _fill(self, vpn: int, record: int) -> int:
        """Run the design's fill policy; returns the repeat-access level."""
        rt = self._rt
        if rt.is_sp[record]:
            offset = vpn % 512
            self.fa.insert(
                vpn - offset, 512, rt.pfn[record] - offset,
                rt.attr[record], True,
            )
            if self._obs is not None:
                self._obs.on_superpage_fill(vpn)
            return 0
        design = self.design
        if design is CoLTDesign.BASELINE:
            return self._fill_baseline(vpn, record)
        slot = vpn & 7
        if not rt.valid[record][slot]:
            raise ValueError(f"demanded vpn {vpn} not present in cache line")
        lo = rt.run_lo[record][slot]
        hi = rt.run_hi[record][slot]
        window = self._window
        if window is not None:
            length = hi - lo + 1
            if length > window:
                shift = slot - lo - window // 2
                if shift < 0:
                    shift = 0
                elif shift > length - window:
                    shift = length - window
                lo += shift
                hi = lo + window - 1
        if design is CoLTDesign.COLT_SA:
            return self._fill_colt_sa(vpn, record, slot, lo, hi)
        if design is CoLTDesign.COLT_FA:
            return self._fill_colt_fa(vpn, record, slot, lo, hi)
        return self._fill_colt_all(vpn, record, slot, lo, hi)

    def _fill_baseline(self, vpn: int, record: int) -> int:
        rt = self._rt
        self._insert_l2((vpn, vpn, rt.pfn[record], rt.attr[record]))
        self.l1.insert((vpn, vpn, rt.pfn[record], rt.attr[record]))
        self._count_fill(1)
        return 1

    def _clip_to_group(
        self, vpn: int, slot: int, lo: int, hi: int, group: int
    ) -> Tuple[int, int]:
        """Clip run slots ``[lo, hi]`` to ``vpn``'s aligned group."""
        first = slot - (vpn % group)
        a = lo if lo > first else first
        top = first + group - 1
        b = hi if hi < top else top
        return a, b

    def _fill_colt_sa(
        self, vpn: int, record: int, slot: int, lo: int, hi: int
    ) -> int:
        rt = self._rt
        base = vpn - slot
        a2, b2 = self._clip_to_group(vpn, slot, lo, hi, self._g2)
        self._insert_l2((
            base + a2, base + b2,
            rt.line_pfn[record][a2], rt.line_attr[record][a2],
        ))
        a1, b1 = self._clip_to_group(vpn, slot, lo, hi, self._g1)
        self.l1.insert((
            base + a1, base + b1,
            rt.line_pfn[record][a1], rt.line_attr[record][a1],
        ))
        self._count_fill(b2 - a2 + 1)
        return 1

    def _fill_colt_fa(
        self, vpn: int, record: int, slot: int, lo: int, hi: int
    ) -> int:
        rt = self._rt
        run_length = hi - lo + 1
        if run_length < 2:
            return self._fill_baseline(vpn, record)
        base = vpn - slot
        self.fa.insert(
            base + lo, run_length,
            rt.line_pfn[record][lo], rt.line_attr[record][lo], False,
        )
        if self._fa_fill_l2:
            # Echo only the demanded translation into L2 (Section 4.2.1).
            self._insert_l2((vpn, vpn, rt.pfn[record], rt.attr[record]))
        self._c_fa_routed_fills += 1
        self._count_fill(run_length)
        return 0

    def _fill_colt_all(
        self, vpn: int, record: int, slot: int, lo: int, hi: int
    ) -> int:
        rt = self._rt
        run_length = hi - lo + 1
        if run_length <= self._all_threshold:
            self._c_sa_routed_fills += 1
            return self._fill_colt_sa(vpn, record, slot, lo, hi)
        base = vpn - slot
        self.fa.insert(
            base + lo, run_length,
            rt.line_pfn[record][lo], rt.line_attr[record][lo], False,
        )
        self._c_fa_routed_fills += 1
        if self._fa_fill_l2:
            a2, b2 = self._clip_to_group(vpn, slot, lo, hi, self._g2)
            self._insert_l2((
                base + a2, base + b2,
                rt.line_pfn[record][a2], rt.line_attr[record][a2],
            ))
        self._count_fill(run_length)
        return 0

    def _insert_l2(self, item: Tuple[int, int, int, int]) -> None:
        """L2 install with inclusive back-invalidation of the L1."""
        l2 = self.l2
        l1 = self.l1
        for victim in l2.insert(item):
            for vpn in range(victim[0], victim[1] + 1):
                if l2.covering(vpn) is None:
                    l1.invalidate(vpn)

    def _count_fill(self, run_length: int) -> None:
        if run_length >= 2:
            self._c_coalesced_fills += 1
        else:
            self._c_uncoalesced_fills += 1
        if self._obs is not None:
            self._obs.on_fill(run_length)

    # ------------------------------------------------------------------
    # Shootdowns + counter flush.
    # ------------------------------------------------------------------

    def _invalidate_range(self, start: int, count: int) -> None:
        self._c_invalidations += count
        if self._obs is not None and count > 0:
            self._obs.on_shootdown(start, count=count)
        if self.design is CoLTDesign.PERFECT:
            # Perfect TLB structures are never filled; nothing to drop.
            return
        l1, l2, fa = self.l1, self.l2, self.fa
        mmuc = self.mmu_cache
        for vpn in range(start, start + count):
            l1.invalidate(vpn)
            l2.invalidate(vpn)
            fa.invalidate(vpn)
            mmuc.invalidate_vpn(vpn)

    def _flush_counters(self) -> None:
        """Fold the epoch's pending deltas into the real counter set."""
        increment = self.counters.increment
        for name in _COUNTERS:
            attr = "_c_" + name
            delta = getattr(self, attr)
            if delta:
                increment(name, delta)
                setattr(self, attr, 0)

    # ------------------------------------------------------------------
    # The ``MMU`` surface the result assembly reads.
    # ------------------------------------------------------------------

    @property
    def l1_misses(self) -> int:
        return self.counters["l1_misses"]

    @property
    def l2_misses(self) -> int:
        return self.counters["l2_misses"]

    @property
    def total_walk_cycles(self) -> int:
        return self.counters["walk_latency"]

    @property
    def total_l2_hit_cycles(self) -> int:
        return self.counters["l2_hits"] * self.config.l2_latency


def vector_replay_scenario(
    scenario: CapturedScenario, config: SimulationConfig
) -> SimulationResult:
    """Replay a captured scenario with the vectorized engine.

    Bit-identical to :func:`repro.sim.replay.replay_scenario` for the
    same inputs. Sanitized runs delegate to the scalar path: the
    sanitizers attach to the live TLB objects, which this engine does
    not materialise.
    """
    if scenario_config(config) != scenario.config:
        raise SimulationError(
            f"config {config} does not match captured scenario "
            f"{scenario.config}"
        )
    if resolve_sanitize(config.sanitize):
        return replay_scenario(scenario, config)
    mmu_config = config.mmu or make_mmu_config(config.design)
    vmmu = VectorMMU(mmu_config, scenario, config.llc_pollution_per_access)
    with span(
        "replay",
        design=config.design.value,
        benchmark=config.benchmark,
        accesses=vmmu.accesses,
        engine="vector",
    ):
        vmmu.run()
    vpns = scenario.vpns
    distinct_lines = int(np.unique(vpns >> 3).size)
    discount = float(distinct_lines * HierarchyConfig().dram_latency)
    performance = evaluate_performance(
        vmmu,
        vmmu.accesses,
        scenario.profile.core,
        compulsory_discount_cycles=discount,
    )
    return SimulationResult(
        config=config,
        profile=scenario.profile,
        accesses=vmmu.accesses,
        l1_misses=vmmu.l1_misses,
        l2_misses=vmmu.l2_misses,
        mmu_counters=vmmu.counters.snapshot(),
        kernel_counters=scenario.kernel_counters,
        performance=performance,
        perfect_performance=perfect_tlb_result(
            vmmu.accesses, scenario.profile.core
        ),
        contiguity=scenario.contiguity,
        trace_unique_pages=scenario.trace_unique_pages,
    )
