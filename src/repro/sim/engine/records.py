"""Batched decode of a captured scenario's walk-outcome records.

``ReplayWalker.walk`` decodes one record row per TLB miss: translation,
walk path, and the 8-PTE cache-line window whose contiguity run the
Coalescing Logic inspects (``repro.core.coalescing``). The vectorized
engine decodes the *whole* record table once, as array ops -- including
the per-slot maximal contiguous runs, so a fill's coalescible run is a
precomputed ``[run_lo, run_hi]`` slot interval instead of a per-miss
left/right growth loop over ``Translation`` objects.

Contiguity matches ``Translation.is_contiguous_with`` exactly: adjacent
slots chain when both are mapped, their PFNs advance together, and
their attribute bits agree modulo the hardware-managed ACCESSED/DIRTY
bits (``PageAttributes.coalescing_key``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.common.types import PageAttributes
from repro.sim.scenario import (
    _LINE_ATTR_BASE,
    _LINE_PFN_BASE,
    _MASK_COLUMN,
    _PATH_BASE,
)

#: Attribute bits that must match for two translations to coalesce --
#: the integer form of ``PageAttributes.coalescing_key``'s mask (the
#: IntFlag inversion is bounded to the defined flag universe, so this is
#: *not* ``~24``).
_KEY_MASK = int(~(PageAttributes.ACCESSED | PageAttributes.DIRTY))


def decode_records(records):
    """Decode every record row into per-slot arrays, as pure array ops.

    Returns ``(pfn, attr, is_sp, levels, path, valid, line_pfn,
    line_attr, run_lo, run_hi)`` where ``run_lo[r, s]`` / ``run_hi[r, s]``
    are the first/last slot of the maximal contiguous run containing
    slot ``s`` of row ``r`` (meaningful only where ``valid[r, s]``).
    """
    pfn = records[:, 0]
    attr = records[:, 1]
    is_sp = records[:, 2] != 0
    levels = records[:, 3]
    path = records[:, _PATH_BASE:_PATH_BASE + 4]
    mask = records[:, _MASK_COLUMN]
    slots = np.arange(8, dtype=np.int64)
    valid = (mask[:, np.newaxis] >> slots[np.newaxis, :]) & 1 != 0
    line_pfn = records[:, _LINE_PFN_BASE:_LINE_PFN_BASE + 8]
    line_attr = records[:, _LINE_ATTR_BASE:_LINE_ATTR_BASE + 8]
    key = line_attr & _KEY_MASK
    adj = valid[:, :-1] & valid[:, 1:]
    adj = adj & (line_pfn[:, 1:] == line_pfn[:, :-1] + 1)
    adj = adj & (key[:, 1:] == key[:, :-1])
    run_lo = np.zeros(valid.shape, dtype=np.int64)
    run_hi = np.full(valid.shape, 7, dtype=np.int64)
    for s in range(1, 8):
        run_lo[:, s] = np.where(adj[:, s - 1], run_lo[:, s - 1], s)
    for s in range(6, -1, -1):
        run_hi[:, s] = np.where(adj[:, s], run_hi[:, s + 1], s)
    return (
        pfn, attr, is_sp, levels, path, valid, line_pfn, line_attr,
        run_lo, run_hi,
    )


@dataclass
class RecordTable:
    """Decoded record table as plain Python lists for the lean miss path.

    The arrays are bulk-converted once per replay; the per-miss fill
    code then runs on native ints with no per-element ``np`` overhead.
    """

    pfn: List[int]
    attr: List[int]
    is_sp: List[bool]
    levels: List[int]
    path: List[List[int]]
    valid: List[List[bool]]
    line_pfn: List[List[int]]
    line_attr: List[List[int]]
    run_lo: List[List[int]]
    run_hi: List[List[int]]

    @classmethod
    def from_records(cls, records) -> "RecordTable":
        return cls(*(a.tolist() for a in decode_records(records)))
