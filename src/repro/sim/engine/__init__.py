"""Replay engine selection: the scalar oracle vs the vectorized engine.

``repro.sim.replay.replay_scenario`` is the bit-exact scalar oracle: one
Python-interpreted ``MMU.access`` per simulated access. The vectorized
engine (``repro.sim.engine.vector``) replays the same captured scenario
as an epoch-batched array program: the access log is partitioned into
epochs bounded by shootdown events (the loop-carried statements in
``results/analysis/vectorization_replay.md``), each epoch's TLB hits are
resolved by one NumPy coverage scan over a structure-of-arrays export of
the TLB state, and only the misses (and epoch boundaries) fall back to a
lean scalar step. The two engines produce bit-identical
``SimulationResult`` tables, MMU counters and coalescing histograms --
enforced by ``tests/test_engine.py`` and the CI bench gate.

Selection: the ``--engine {scalar,vector}`` CLI flag, or the
``COLT_ENGINE`` environment variable (flag wins). ``COLT_EPOCH_MAX``
bounds the epoch chunk the vectorized engine scans at once.

Sanitized runs (``COLT_SANITIZE`` / ``sanitize=True``) always take the
scalar path: the sanitizers attach to the live TLB objects, which the
vectorized engine does not materialise.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.sim.replay import replay_scenario
from repro.sim.scenario import CapturedScenario
from repro.sim.system import SimulationConfig, SimulationResult

#: Environment variable selecting the replay engine.
ENGINE_ENV = "COLT_ENGINE"

#: Environment variable bounding the vectorized engine's epoch chunk
#: (accesses scanned per coverage pass).
EPOCH_MAX_ENV = "COLT_EPOCH_MAX"

#: Recognised engine names, in precedence-documentation order.
ENGINES = ("scalar", "vector")

DEFAULT_ENGINE = "scalar"
DEFAULT_EPOCH_MAX = 4096


def resolve_engine(explicit: Optional[str] = None) -> str:
    """Resolve an engine name: explicit argument > ``COLT_ENGINE`` > scalar.

    Raises:
        ConfigurationError: the name is not one of :data:`ENGINES`.
    """
    raw = explicit if explicit is not None else os.environ.get(ENGINE_ENV, "")
    name = raw.strip().lower() or DEFAULT_ENGINE
    if name not in ENGINES:
        raise ConfigurationError(
            f"unknown replay engine {name!r}; expected one of "
            f"{', '.join(ENGINES)}"
        )
    return name


def epoch_max() -> int:
    """Vector-engine epoch chunk bound (``COLT_EPOCH_MAX``, >= 1)."""
    raw = os.environ.get(EPOCH_MAX_ENV, "").strip()
    if not raw:
        return DEFAULT_EPOCH_MAX
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_EPOCH_MAX
    return max(1, value)


def replay_with_engine(
    scenario: CapturedScenario,
    config: SimulationConfig,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Replay ``scenario`` under ``config`` with the selected engine."""
    if resolve_engine(engine) == "vector":
        from repro.sim.engine.vector import vector_replay_scenario

        return vector_replay_scenario(scenario, config)
    return replay_scenario(scenario, config)
