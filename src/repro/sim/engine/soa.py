"""Lean structure-of-arrays TLB/cache state for the vectorized engine.

These classes replicate, tuple-for-tuple, the *observable* behaviour of
the object model -- ``repro.tlb.set_associative.SetAssociativeTLB``,
``repro.tlb.fully_associative.FullyAssociativeTLB``,
``repro.cache.cache.Cache`` and ``repro.cache.mmu_cache.MMUCache`` --
while storing entries as plain ``(start, end, ppn, attr)`` interval
tuples with list-based LRU order. Coverage exports (sorted interval
arrays with a leading sentinel) feed the NumPy window scan in
``repro.sim.engine.vector``; everything else is the lean scalar fallback
the engine uses on misses and at epoch boundaries.

Behavioural contract (asserted bit-identical by ``tests/test_engine.py``):

* a set-associative entry's valid bits form one contiguous run, so
  coverage, overlap-displacement and group membership all reduce to
  inclusive interval arithmetic;
* probes return the *first* covering entry in insertion order (for the
  FA TLB entries may overlap -- attribution order matters);
* graceful-invalidation survivors re-enter through the same full-LRU
  check as ``LRUTracker.touch`` (and raise the same ``ValueError``);
* the superpage-overlap check raises before any mutation, exactly like
  ``FullyAssociativeTLB.insert``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cache.mmu_cache import CACHEABLE_LEVELS
from repro.sim.engine.records import _KEY_MASK

#: Matches ``repro.common.lru.LRUTracker.touch`` on a full tracker.
_LRU_FULL = "LRU tracker full; evict before inserting a new key"

#: Matches ``repro.tlb.fully_associative.FullyAssociativeTLB.insert``.
_SP_OVERLAP = "overlapping superpage entry"


def _sentinel_coverage(starts, ends, ids):
    s = np.asarray(starts, dtype=np.int64)
    e = np.asarray(ends, dtype=np.int64)
    d = np.asarray(ids, dtype=np.int64)
    return s, e, d


class LeanSetTLB:
    """Interval-tuple mirror of ``SetAssociativeTLB``.

    Entries are ``(start, end, ppn, attr)`` with ``start..end`` the
    inclusive VPN interval of the valid run, ``ppn`` the frame of
    ``start`` and ``attr`` the (full) attribute bits of the run's first
    translation. Per set: an insertion-ordered id->entry dict plus an
    LRU order list (index 0 = least recently used). Ids are globally
    monotonic so the window scan can detect stale attributions via the
    shared ``dead`` set; newly covered VPNs are recorded in ``new_vpns``
    so stale FA attributions can detect fresher L1 coverage.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        index_shift: int,
        graceful_invalidation: bool,
        coalescing_aware: bool,
        dead: Optional[Set[int]] = None,
        new_vpns: Optional[Set[int]] = None,
    ) -> None:
        self.shift = index_shift
        self.set_mask = num_sets - 1
        self.ways = ways
        self.graceful = graceful_invalidation
        self.coalescing_aware = coalescing_aware
        self.buckets: List[Dict[int, tuple]] = [{} for _ in range(num_sets)]
        self.orders: List[List[int]] = [[] for _ in range(num_sets)]
        self.next_id = 0
        self.dead = dead
        self.new_vpns = new_vpns

    # -- lookup --------------------------------------------------------

    def probe(self, vpn: int) -> Optional[tuple]:
        """First covering entry (touched), or None. Mirrors ``probe``."""
        si = (vpn >> self.shift) & self.set_mask
        for eid, it in self.buckets[si].items():
            if it[0] <= vpn <= it[1]:
                order = self.orders[si]
                if order[-1] != eid:
                    order.remove(eid)
                    order.append(eid)
                return it
        return None

    def covering(self, vpn: int) -> Optional[tuple]:
        """Covering entry without LRU effects. Mirrors ``entry_for``."""
        for it in self.buckets[(vpn >> self.shift) & self.set_mask].values():
            if it[0] <= vpn <= it[1]:
                return it
        return None

    def touch(self, eid: int, vpn: int) -> None:
        """Mark a scan-attributed hit entry most recently used."""
        order = self.orders[(vpn >> self.shift) & self.set_mask]
        if order[-1] != eid:
            order.remove(eid)
            order.append(eid)

    # -- fill ----------------------------------------------------------

    def insert(self, item: tuple) -> List[tuple]:
        """Install an entry, returning displaced entries (insert order)."""
        s = item[0]
        e = item[1]
        si = (s >> self.shift) & self.set_mask
        bucket = self.buckets[si]
        order = self.orders[si]
        dead = self.dead
        displaced: List[tuple] = []
        for eid in list(bucket):
            res = bucket[eid]
            if res[1] >= s and res[0] <= e:
                displaced.append(bucket.pop(eid))
                order.remove(eid)
                if dead is not None:
                    dead.add(eid)
        if len(order) >= self.ways:
            vid = self._choose_victim(bucket, order)
            order.remove(vid)
            displaced.append(bucket.pop(vid))
            if dead is not None:
                dead.add(vid)
        eid = self.next_id
        self.next_id = eid + 1
        bucket[eid] = item
        order.append(eid)
        if self.new_vpns is not None:
            self.new_vpns.update(range(s, e + 1))
        return displaced

    def _choose_victim(self, bucket: Dict[int, tuple], order: List[int]) -> int:
        if not self.coalescing_aware:
            return order[0]
        min_count = min(it[1] - it[0] for it in bucket.values())
        for eid in order:  # LRU -> MRU, like LRUTracker iteration
            it = bucket[eid]
            if it[1] - it[0] == min_count:
                return eid
        return order[0]

    # -- invalidation --------------------------------------------------

    def invalidate(self, vpn: int) -> None:
        si = (vpn >> self.shift) & self.set_mask
        bucket = self.buckets[si]
        order = self.orders[si]
        for eid in list(bucket):
            it = bucket[eid]
            if not (it[0] <= vpn <= it[1]):
                continue
            del bucket[eid]
            order.remove(eid)
            if self.dead is not None:
                self.dead.add(eid)
            if self.graceful:
                s, e, ppn, attr = it
                if vpn > s:
                    self._install_survivor(
                        bucket, order, (s, vpn - 1, ppn, attr)
                    )
                if vpn < e:
                    self._install_survivor(
                        bucket, order, (vpn + 1, e, ppn + (vpn + 1 - s), attr)
                    )

    def _install_survivor(
        self, bucket: Dict[int, tuple], order: List[int], item: tuple
    ) -> None:
        if len(order) >= self.ways:
            raise ValueError(_LRU_FULL)
        eid = self.next_id
        self.next_id = eid + 1
        bucket[eid] = item
        order.append(eid)
        if self.new_vpns is not None:
            self.new_vpns.update(range(item[0], item[1] + 1))

    # -- coverage export -----------------------------------------------

    def coverage(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sorted, globally-disjoint interval arrays with a sentinel.

        Entries of one set never interval-overlap (same group: disjoint
        valid runs; different groups: disjoint VPN windows), so one
        sorted ``searchsorted`` array covers the whole TLB. The leading
        ``(-2, -2, -1)`` sentinel keeps the scan branch-free.
        """
        starts = [-2]
        ends = [-2]
        ids = [-1]
        for bucket in self.buckets:
            for eid, it in bucket.items():
                starts.append(it[0])
                ends.append(it[1])
                ids.append(eid)
        s, e, d = _sentinel_coverage(starts, ends, ids)
        order = np.argsort(s, kind="stable")
        return s[order], e[order], d[order]


class LeanFaTLB:
    """Interval-tuple mirror of ``FullyAssociativeTLB``.

    Entries are ``(base, end, ppn, attr, is_superpage)`` with ``end``
    exclusive (``covers``: ``base <= vpn < end``). The insertion-ordered
    dict drives probe attribution (entries may overlap; first coverer
    wins), the separate LRU list drives capacity eviction.
    """

    def __init__(
        self,
        capacity: int,
        merge_on_insert: bool,
        max_span: int,
        graceful_invalidation: bool,
        dead: Optional[Set[int]] = None,
    ) -> None:
        self.capacity = capacity
        self.merge_on_insert = merge_on_insert
        self.max_span = max_span
        self.graceful = graceful_invalidation
        self.entries: Dict[int, tuple] = {}
        self.order: List[int] = []
        self.next_id = 0
        self.dead = dead

    # -- lookup --------------------------------------------------------

    def probe(self, vpn: int) -> Optional[tuple]:
        for eid, it in self.entries.items():
            if it[0] <= vpn < it[1]:
                order = self.order
                if order[-1] != eid:
                    order.remove(eid)
                    order.append(eid)
                return it
        return None

    def touch(self, eid: int) -> None:
        order = self.order
        if order[-1] != eid:
            order.remove(eid)
            order.append(eid)

    # -- fill ----------------------------------------------------------

    def insert(
        self, base: int, span: int, ppn: int, attr: int, is_sp: bool
    ) -> None:
        """Mirror of ``FullyAssociativeTLB.insert`` (victim is dropped)."""
        end = base + span
        if is_sp:
            for it in self.entries.values():
                if it[4] and it[1] > base and end > it[0]:
                    raise ValueError(_SP_OVERLAP)
        dead = self.dead
        if self.merge_on_insert and not is_sp:
            merged = True
            while merged:
                merged = False
                key = attr & _KEY_MASK
                for eid, it in list(self.entries.items()):
                    rb, re_, rp, ra, rsp = it
                    if rsp or (ra & _KEY_MASK) != key:
                        continue
                    if base <= rb:
                        lo_b, lo_e, lo_p, lo_a = base, end, ppn, attr
                        hi_b, hi_e, hi_p = rb, re_, rp
                    else:
                        lo_b, lo_e, lo_p, lo_a = rb, re_, rp, ra
                        hi_b, hi_e, hi_p = base, end, ppn
                    if (
                        lo_e == hi_b
                        and lo_p + (lo_e - lo_b) == hi_p
                        and (lo_e - lo_b) + (hi_e - hi_b) <= self.max_span
                    ):
                        base, end, ppn, attr = lo_b, hi_e, lo_p, lo_a
                        del self.entries[eid]
                        self.order.remove(eid)
                        if dead is not None:
                            dead.add(eid)
                        merged = True
                        break
        if len(self.order) >= self.capacity:
            vid = self.order.pop(0)
            del self.entries[vid]
            if dead is not None:
                dead.add(vid)
        eid = self.next_id
        self.next_id = eid + 1
        self.entries[eid] = (base, end, ppn, attr, is_sp)
        self.order.append(eid)

    # -- invalidation --------------------------------------------------

    def invalidate(self, vpn: int) -> None:
        for eid in list(self.entries):
            it = self.entries[eid]
            if not (it[0] <= vpn < it[1]):
                continue
            del self.entries[eid]
            self.order.remove(eid)
            if self.dead is not None:
                self.dead.add(eid)
            if self.graceful and not it[4]:
                b, en, p, a = it[0], it[1], it[2], it[3]
                if vpn > b:
                    self._install_survivor((b, vpn, p, a, False))
                if vpn + 1 < en:
                    self._install_survivor(
                        (vpn + 1, en, p + (vpn + 1 - b), a, False)
                    )

    def _install_survivor(self, item: tuple) -> None:
        if len(self.order) >= self.capacity:
            raise ValueError(_LRU_FULL)
        eid = self.next_id
        self.next_id = eid + 1
        self.entries[eid] = item
        self.order.append(eid)

    # -- coverage export -----------------------------------------------

    def coverage(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Interval arrays in insertion order (first coverer wins)."""
        bases = [-2]
        ends = [-2]
        ids = [-1]
        for eid, it in self.entries.items():
            bases.append(it[0])
            ends.append(it[1])
            ids.append(eid)
        return _sentinel_coverage(bases, ends, ids)


class LeanLLC:
    """Dict-per-set mirror of ``Cache`` for the PTE stream (LLC only)."""

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.sets: List[Dict[int, None]] = [{} for _ in range(num_sets)]

    def access(self, paddr: int) -> bool:
        line = paddr >> 6
        s = self.sets[line % self.num_sets]
        if line in s:
            del s[line]
            s[line] = None
            return True
        return False

    def fill(self, paddr: int) -> None:
        line = paddr >> 6
        s = self.sets[line % self.num_sets]
        if line in s:
            del s[line]
            s[line] = None
            return
        if len(s) >= self.ways:
            del s[next(iter(s))]
        s[line] = None

    def evict_lru_of_set(self, set_index: int) -> None:
        s = self.sets[set_index % self.num_sets]
        if s:
            del s[next(iter(s))]


class LeanMMUCache:
    """Single-dict mirror of the unified ``MMUCache`` (LRU over keys)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._d: Dict[tuple, None] = {}

    def deepest(self, vpn: int) -> Optional[int]:
        d = self._d
        best = None
        for level, shift in CACHEABLE_LEVELS:
            key = (level, vpn >> shift)
            if key in d:
                best = key
        if best is None:
            return None
        del d[best]
        d[best] = None
        return best[0]

    def fill_walk(self, vpn: int, levels_visited: int) -> None:
        d = self._d
        for level, shift in CACHEABLE_LEVELS:
            if level >= levels_visited - 1:
                continue
            key = (level, vpn >> shift)
            if key in d:
                del d[key]
                d[key] = None
                continue
            if len(d) >= self.capacity:
                del d[next(iter(d))]
            d[key] = None

    def invalidate_vpn(self, vpn: int) -> None:
        d = self._d
        for level, shift in CACHEABLE_LEVELS:
            d.pop((level, vpn >> shift), None)


#: Memoised pollution schedules: (accesses, per_access, num_sets) ->
#: list of (access_index, set_index). The cursor stride is independent
#: of LLC contents, so the schedule is a pure function of these inputs.
_POLLUTION_MEMO: Dict[tuple, List[Tuple[int, int]]] = {}


def pollution_schedule(
    accesses: int, per_access: float, num_sets: int
) -> List[Tuple[int, int]]:
    """Precompute ``LLCPollution``'s eviction schedule, float-exactly.

    Replays the identical per-access budget accumulation so rounding
    behaviour matches the scalar path bit for bit. The eviction for
    access ``i`` fires *after* access ``i`` (it is applied lazily before
    the next page walk, the only reader of LLC state).
    """
    if per_access <= 0.0:
        return []
    key = (accesses, per_access, num_sets)
    cached = _POLLUTION_MEMO.get(key)
    if cached is not None:
        return cached
    events: List[Tuple[int, int]] = []
    budget = 0.0
    cursor = 0
    for i in range(accesses):
        budget += per_access
        if budget >= 1.0:
            lines = int(budget)
            budget -= lines
            for _ in range(lines):
                cursor = (cursor + 101) % num_sets
                events.append((i, cursor))
    _POLLUTION_MEMO[key] = events
    return events
