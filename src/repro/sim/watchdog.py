"""Stall and memory watchdog for long experiment campaigns.

A multi-hour all-figures campaign can die in two ways PR 4's per-task
retry machinery does not see coming:

* **Stalls** -- a worker wedges (deadlocked pool pipe, pathological
  input, runaway GC) without tripping any per-task deadline, and the
  campaign silently stops making progress.
* **Memory pressure** -- captured scenarios and pool workers push RSS
  past what the machine can give, and the OOM killer takes the whole
  campaign instead of one task.

:class:`Watchdog` is a daemon monitor thread that defends against
both. The executor reports liveness through :meth:`heartbeat` (one
beat per completed task) and brackets its batches with
:meth:`begin_work`/:meth:`end_work`; the watchdog polls and

1. on **stall** -- no heartbeat for ``COLT_STALL_TIMEOUT`` seconds
   while work is outstanding -- dumps *all-thread* stacks via
   :mod:`faulthandler` into ``<dump_dir>/stall-<pid>.txt`` for the
   post-mortem, then raises a stall flag the executor consumes to
   cancel and requeue the stuck task through the ordinary retry
   machinery;
2. on **memory breach** -- RSS (self plus child workers) above
   ``COLT_MEM_BUDGET`` MiB -- climbs a degradation ladder one rung per
   breach-poll: first *shrink the pool* (the runner halves its worker
   count), then *disable prefetch* (the runner replays scenario groups
   one at a time and drops captured logs between them), and only after
   both rungs failed does it arm :meth:`should_abort`, turning an
   opaque OOM kill into a clean :class:`MemoryBudgetError` with the
   journal intact.

All wall-clock reads live here and only pace *monitoring*; nothing in
this module feeds a ``SimulationResult`` (the file is on the lint's
wall-clock allow-list for exactly this scope).

Environment knobs:

* ``COLT_STALL_TIMEOUT`` -- seconds without task completion before a
  stall fires (unset/0 disables stall detection).
* ``COLT_MEM_BUDGET`` -- RSS budget in MiB (unset/0 disables).
* ``COLT_DUMP_DIR`` -- stack-dump directory (default
  ``.colt-cache/dumps``).
"""

from __future__ import annotations

import faulthandler
import os
import threading
import time
from pathlib import Path
from typing import Callable, Optional

from repro.common.statistics import CounterSet
from repro.obs.live import get_progress
from repro.obs.logging import get_logger
from repro.obs.registry import bind_counterset, get_registry
from repro.obs.trace import current_tracer, obs_active

_LOG = get_logger(__name__)

#: Environment knobs.
STALL_TIMEOUT_ENV = "COLT_STALL_TIMEOUT"
MEM_BUDGET_ENV = "COLT_MEM_BUDGET"
DUMP_DIR_ENV = "COLT_DUMP_DIR"

#: Default stack-dump directory (beside the result store).
DEFAULT_DUMP_DIR = os.path.join(".colt-cache", "dumps")

#: Degradation ladder rungs (compared with ``>=``).
DEGRADE_NONE = 0
DEGRADE_SHRINK_POOL = 1
DEGRADE_NO_PREFETCH = 2
DEGRADE_ABORT = 3

#: Counter names (bound to the metrics registry as ``colt_watchdog_*``).
WATCHDOG_COUNTERS = (
    "stalls",
    "stack_dumps",
    "mem_breaches",
    "pool_shrinks",
    "prefetch_disables",
    "budget_aborts",
)


def resolve_dump_dir(override: Optional[str] = None) -> Path:
    """The stack-dump directory: override > ``COLT_DUMP_DIR`` > default."""
    if override:
        return Path(override)
    return Path(os.environ.get(DUMP_DIR_ENV, "").strip() or DEFAULT_DUMP_DIR)


def read_rss_bytes(pid: Optional[int] = None) -> Optional[int]:
    """Current RSS of ``pid`` (default: this process) from ``/proc``.

    Returns ``None`` where ``/proc`` is unavailable (macOS, Windows) --
    the memory watchdog simply stays quiet there.
    """
    try:
        with open(f"/proc/{pid or os.getpid()}/status", "rb") as handle:
            for line in handle:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def _child_pids() -> list:
    """Direct children of this process (pool workers), via ``/proc``."""
    pids = []
    base = Path(f"/proc/{os.getpid()}/task")
    try:
        for task in base.iterdir():
            children = (task / "children").read_text().split()
            pids.extend(int(child) for child in children)
    except (OSError, ValueError):
        pass
    return pids


def process_tree_rss() -> Optional[int]:
    """RSS of this process plus its direct children, or ``None``."""
    own = read_rss_bytes()
    if own is None:
        return None
    total = own
    for pid in _child_pids():
        child = read_rss_bytes(pid)
        if child is not None:
            total += child
    return total


class Watchdog:
    """Background monitor: stall stack dumps + RSS degradation ladder.

    Args:
        stall_timeout_s: seconds without a heartbeat (while work is
            outstanding) before a stall fires; ``None``/0 disables.
        mem_budget_bytes: RSS ceiling; ``None``/0 disables.
        dump_dir: where stall stack dumps land.
        poll_interval_s: monitor wake period (default: min(1s,
            stall_timeout/4)).
        rss_fn: RSS probe, injectable for tests; defaults to
            :func:`process_tree_rss`.
        counters: external tally to use (a fresh one otherwise).
    """

    def __init__(
        self,
        stall_timeout_s: Optional[float] = None,
        mem_budget_bytes: Optional[int] = None,
        dump_dir=None,
        poll_interval_s: Optional[float] = None,
        rss_fn: Optional[Callable[[], Optional[int]]] = None,
        counters: Optional[CounterSet] = None,
    ) -> None:
        self.stall_timeout_s = (
            float(stall_timeout_s) if stall_timeout_s else None
        )
        self.mem_budget_bytes = (
            int(mem_budget_bytes) if mem_budget_bytes else None
        )
        self.dump_dir = resolve_dump_dir(dump_dir)
        if poll_interval_s is None:
            poll_interval_s = 1.0
            if self.stall_timeout_s is not None:
                poll_interval_s = min(1.0, self.stall_timeout_s / 4.0)
        self.poll_interval_s = max(0.01, float(poll_interval_s))
        self._rss_fn = rss_fn if rss_fn is not None else process_tree_rss
        self.counters = (
            counters if counters is not None
            else CounterSet(WATCHDOG_COUNTERS)
        )
        self._rss_gauge = None
        self._degradation_gauge = None
        if obs_active():
            registry = get_registry()
            bind_counterset(registry, "colt_watchdog", self.counters)
            self._rss_gauge = registry.gauge(
                "colt_watchdog_rss_bytes",
                help="Last sampled RSS of the run (self + pool workers)",
                unit="bytes",
            )
            self._degradation_gauge = registry.gauge(
                "colt_watchdog_degradation",
                help="Memory-pressure degradation rung (0=none, 3=abort)",
            )
            # Pre-create the empty-label series on the construction
            # thread: the monitor thread then only ever overwrites an
            # existing dict slot, never grows one mid-snapshot.
            self._rss_gauge.set(0)
            self._degradation_gauge.set(0)

        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._busy = 0
        self._last_beat = time.monotonic()
        self._stall_pending = False
        self._degradation = DEGRADE_NONE
        self._abort = False
        self.last_dump_path: Optional[Path] = None
        self.last_rss_bytes: Optional[int] = None

    @classmethod
    def from_env(
        cls,
        stall_timeout_s: Optional[float] = None,
        mem_budget_mib: Optional[float] = None,
        dump_dir=None,
    ) -> Optional["Watchdog"]:
        """Watchdog from env knobs (CLI overrides win); None when idle.

        A watchdog with neither a stall timeout nor a memory budget
        would only burn a thread, so ``None`` is returned instead.
        """
        if stall_timeout_s is None:
            raw = os.environ.get(STALL_TIMEOUT_ENV, "").strip()
            if raw:
                stall_timeout_s = float(raw)
        if mem_budget_mib is None:
            raw = os.environ.get(MEM_BUDGET_ENV, "").strip()
            if raw:
                mem_budget_mib = float(raw)
        if not stall_timeout_s and not mem_budget_mib:
            return None
        return cls(
            stall_timeout_s=stall_timeout_s or None,
            mem_budget_bytes=(
                int(mem_budget_mib * 1024 * 1024) if mem_budget_mib else None
            ),
            dump_dir=dump_dir,
        )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "Watchdog":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._monitor, name="colt-watchdog", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)

    def __enter__(self) -> "Watchdog":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Executor-facing surface.
    # ------------------------------------------------------------------

    def begin_work(self) -> None:
        """A batch of tasks is outstanding: stall detection arms."""
        with self._lock:
            self._busy += 1
            self._last_beat = time.monotonic()

    def end_work(self) -> None:
        with self._lock:
            self._busy = max(0, self._busy - 1)
            self._stall_pending = False

    def heartbeat(self) -> None:
        """A task completed; resets the stall clock."""
        with self._lock:
            self._last_beat = time.monotonic()

    def consume_stall(self) -> bool:
        """True exactly once per fired stall (executor requeue hook)."""
        with self._lock:
            fired, self._stall_pending = self._stall_pending, False
            return fired

    @property
    def degradation(self) -> int:
        """Current memory-pressure rung (``DEGRADE_*``)."""
        with self._lock:
            return self._degradation

    def should_abort(self) -> bool:
        """True once the ladder is exhausted: give up cleanly now."""
        with self._lock:
            return self._abort

    # ------------------------------------------------------------------
    # Monitor internals.
    # ------------------------------------------------------------------

    def _monitor(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            self._check_stall()
            self._check_memory()

    def _check_stall(self) -> None:
        if self.stall_timeout_s is None:
            return
        with self._lock:
            busy = self._busy > 0
            quiet_for = time.monotonic() - self._last_beat
            already_flagged = self._stall_pending
        if not busy or already_flagged or quiet_for < self.stall_timeout_s:
            return
        self.counters.increment("stalls")
        path = self._dump_stacks(
            f"stall: no task completion for {quiet_for:.1f}s "
            f"(timeout {self.stall_timeout_s:g}s)"
        )
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                "watchdog.stall", cat="watchdog",
                quiet_s=round(quiet_for, 3),
                dump=str(path) if path else "",
            )
        _LOG.warning(
            "stall watchdog fired after %.1fs without progress%s",
            quiet_for,
            f"; stacks dumped to {path}" if path else "",
        )
        with self._lock:
            self._stall_pending = True
            self._last_beat = time.monotonic()

    def _dump_stacks(self, reason: str) -> Optional[Path]:
        """Append an all-thread stack dump to the per-pid dump file."""
        path = self.dump_dir / f"stall-{os.getpid()}.txt"
        try:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            with path.open("a", encoding="utf-8") as handle:
                handle.write(f"=== colt watchdog: {reason} ===\n")
                handle.flush()
                faulthandler.dump_traceback(file=handle, all_threads=True)
                handle.write("\n")
        except OSError as exc:
            _LOG.warning("could not write stall stack dump: %s", exc)
            return None
        self.counters.increment("stack_dumps")
        with self._lock:
            self.last_dump_path = path
        return path

    def _check_memory(self) -> None:
        rss = self._rss_fn()
        if rss is not None:
            with self._lock:
                self.last_rss_bytes = rss
                rung = self._degradation
            if self._rss_gauge is not None:
                self._rss_gauge.set(rss)
            get_progress().update_section(
                "watchdog", rss_bytes=rss, degradation=rung
            )
        if self.mem_budget_bytes is None or self.should_abort():
            return
        if rss is None or rss <= self.mem_budget_bytes:
            return
        self.counters.increment("mem_breaches")
        self._escalate(rss)

    def _escalate(self, rss: int) -> None:
        """Climb one rung of the degradation ladder per breach-poll."""
        with self._lock:
            self._degradation = min(self._degradation + 1, DEGRADE_ABORT)
            rung = self._degradation
        if rung == DEGRADE_SHRINK_POOL:
            self.counters.increment("pool_shrinks")
            action = "shrinking the worker pool"
        elif rung == DEGRADE_NO_PREFETCH:
            self.counters.increment("prefetch_disables")
            action = "disabling batch prefetch"
        else:
            self.counters.increment("budget_aborts")
            with self._lock:
                self._abort = True
            action = "requesting a clean abort"
        if self._degradation_gauge is not None:
            self._degradation_gauge.set(rung)
        get_progress().update_section("watchdog", degradation=rung)
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                "watchdog.mem_pressure", cat="watchdog",
                rss_mib=round(rss / (1024 * 1024), 1),
                budget_mib=round(self.mem_budget_bytes / (1024 * 1024), 1),
                rung=rung,
            )
        _LOG.warning(
            "memory watchdog: RSS %.0f MiB over budget %.0f MiB; %s "
            "(rung %d/%d)",
            rss / (1024 * 1024),
            self.mem_budget_bytes / (1024 * 1024),
            action, rung, DEGRADE_ABORT,
        )
