"""On-disk content-addressed result store for simulation results.

``ExperimentRunner`` backs its in-process memo with this store so that
``python -m repro.experiments fig18 fig21`` reuses results across
invocations exactly as the in-memory cache does within one. Entries are
keyed by a stable SHA-256 of:

* the canonical serialisation of the full :class:`SimulationConfig`
  (nested dataclasses flattened field by field, enums by value), and
* a fingerprint of the code-relevant architectural constants
  (``repro.common.constants``) plus a store schema version.

The constants fingerprint means a change to, say, the LLC size or the
coalescing window defaults silently invalidates every cached result --
stale numbers can never leak into a figure. It does *not* cover
arbitrary code changes; bump :data:`STORE_VERSION` when simulator
behaviour changes without a constant moving (the capture-record layout
counts as such a change).

Writes are atomic (temp file + ``os.replace`` in the same directory),
so concurrent runner processes may share one store: both compute the
same bits and whichever finishes last wins with an identical payload.

The store location defaults to ``.colt-cache/`` in the working
directory; override with the ``COLT_RESULT_CACHE`` environment
variable, disable with ``--no-cache`` (CLI) or ``store=None``
(library). Clear it with :meth:`ResultStore.clear` or simply
``rm -rf .colt-cache``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Optional

from repro.common import constants
from repro.common.statistics import CounterSet
from repro.obs.logging import get_logger
from repro.obs.registry import bind_counterset, get_registry
from repro.obs.trace import current_tracer, obs_active
from repro.sim.system import SimulationConfig, SimulationResult

_LOG = get_logger(__name__)

#: Environment variable naming the store directory.
STORE_ENV = "COLT_RESULT_CACHE"

#: Default store directory (relative to the working directory).
DEFAULT_STORE_DIR = ".colt-cache"

#: Bump on any behavioural change not captured by config or constants
#: (e.g. capture-record layout, walk-latency accounting).
STORE_VERSION = 1


def _encode(value):
    """Canonical JSON-compatible encoding of a config value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        encoded = {"__dataclass__": type(value).__name__}
        for field in dataclasses.fields(value):
            encoded[field.name] = _encode(getattr(value, field.name))
        return encoded
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "value": value.value}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for hashing")


def _constants_fingerprint() -> dict:
    """The architectural constants a result depends on, by name."""
    return {
        name: value
        for name, value in sorted(vars(constants).items())
        if name.isupper() and isinstance(value, (bool, int, float, str))
    }


def config_key(config: SimulationConfig) -> str:
    """Stable content hash of a config + code-relevant constants."""
    payload = {
        "version": STORE_VERSION,
        "config": _encode(config),
        "constants": _constants_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultStore:
    """Directory of pickled :class:`SimulationResult`s, content-addressed."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.counters = CounterSet(["hits", "misses", "evictions", "saves"])
        self._tracer = current_tracer()
        if obs_active():
            bind_counterset(get_registry(), "colt_store", self.counters)

    @classmethod
    def from_env(cls, default: Optional[str] = DEFAULT_STORE_DIR
                 ) -> Optional["ResultStore"]:
        """Store at ``$COLT_RESULT_CACHE``, else ``default``.

        ``COLT_RESULT_CACHE=`` (empty) or ``0`` disables the store, as
        does ``default=None`` when the variable is unset.
        """
        location = os.environ.get(STORE_ENV)
        if location is not None:
            if location.strip() in ("", "0", "off", "none"):
                return None
            return cls(location)
        if default is None:
            return None
        return cls(default)

    def _path(self, config: SimulationConfig) -> Path:
        return self.root / f"{config_key(config)}.pkl"

    def load(self, config: SimulationConfig) -> Optional[SimulationResult]:
        """Return the stored result for ``config``, or None."""
        if self._tracer is None:
            return self._load(config)
        with self._tracer.span("store.get", cat="store") as span_args:
            result = self._load(config)
            span_args["hit"] = result is not None
            return result

    def _load(self, config: SimulationConfig) -> Optional[SimulationResult]:
        path = self._path(config)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.counters.increment("misses")
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError):
            # A torn or stale entry: drop it and recompute.
            _LOG.warning("dropping unreadable store entry %s", path.name)
            path.unlink(missing_ok=True)
            self.counters.increment("evictions")
            self.counters.increment("misses")
            return None
        if not isinstance(result, SimulationResult) or result.config != config:
            _LOG.warning("dropping mismatched store entry %s", path.name)
            path.unlink(missing_ok=True)
            self.counters.increment("evictions")
            self.counters.increment("misses")
            return None
        self.counters.increment("hits")
        return result

    def save(self, config: SimulationConfig, result: SimulationResult) -> None:
        """Persist ``result`` atomically (safe under concurrent writers)."""
        if self._tracer is None:
            self._save(config, result)
            return
        with self._tracer.span("store.put", cat="store"):
            self._save(config, result)

    def _save(self, config: SimulationConfig, result: SimulationResult) -> None:
        path = self._path(config)
        temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with temp.open("wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp, path)
        self.counters.increment("saves")

    def clear(self) -> int:
        """Delete every stored entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))
