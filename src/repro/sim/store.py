"""On-disk content-addressed result store for simulation results.

``ExperimentRunner`` backs its in-process memo with this store so that
``python -m repro.experiments fig18 fig21`` reuses results across
invocations exactly as the in-memory cache does within one. Entries are
keyed by a stable SHA-256 of:

* the canonical serialisation of the full :class:`SimulationConfig`
  (nested dataclasses flattened field by field, enums by value), and
* a fingerprint of the code-relevant architectural constants
  (``repro.common.constants``) plus a store schema version.

The constants fingerprint means a change to, say, the LLC size or the
coalescing window defaults silently invalidates every cached result --
stale numbers can never leak into a figure. It does *not* cover
arbitrary code changes; bump :data:`STORE_VERSION` when simulator
behaviour changes without a constant moving (the capture-record layout
counts as such a change).

Writes are atomic and durable (``repro.common.atomicio``: temp file,
``fsync``, ``os.replace`` in the same directory), so concurrent runner
processes may share one store -- both compute the same bits and
whichever finishes last wins with an identical payload -- and a kill
mid-save can never leave a torn entry.

Entries are *checksum-framed*: a magic prefix, the payload length, and
a SHA-256 over the pickle bytes precede the payload, so a torn write or
a flipped bit is detected before ``pickle`` ever parses hostile bytes.
Entries that fail the frame check -- or whose unpickling raises any of
the broad net of exceptions a corrupt pickle can produce -- are
*quarantined* under ``.colt-cache/quarantine/`` (never silently
unlinked) and recomputed; per-exception-class counters record what was
seen. Pre-framing entries (raw pickle, no magic) still load.

A store whose directory cannot be created (read-only filesystem,
path shadowed by a file) degrades to store-less operation with a
warning instead of failing the run: loads miss, saves are dropped.

The store location defaults to ``.colt-cache/`` in the working
directory; override with the ``COLT_RESULT_CACHE`` environment
variable, disable with ``--no-cache`` (CLI) or ``store=None``
(library). Clear it with :meth:`ResultStore.clear` or simply
``rm -rf .colt-cache``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Optional

from repro.common import constants
from repro.common.atomicio import atomic_write_bytes
from repro.common.statistics import CounterSet
from repro.obs.logging import get_logger
from repro.obs.registry import bind_counterset, get_registry
from repro.obs.trace import current_tracer, obs_active
from repro.sim.faults import FaultPlan, corrupt_bytes
from repro.sim.system import SimulationConfig, SimulationResult

_LOG = get_logger(__name__)

#: Environment variable naming the store directory.
STORE_ENV = "COLT_RESULT_CACHE"

#: Default store directory (relative to the working directory).
DEFAULT_STORE_DIR = ".colt-cache"

#: Subdirectory undecodable entries are moved into (never re-read).
QUARANTINE_DIR = "quarantine"

#: Bump on any behavioural change not captured by config or constants
#: (e.g. capture-record layout, walk-latency accounting).
STORE_VERSION = 1

#: Magic prefix of a checksum-framed entry (version byte included).
STORE_MAGIC = b"COLTRS1\n"

#: Frame header: magic + 8-byte big-endian payload length + SHA-256.
_HEADER_LEN = len(STORE_MAGIC) + 8 + 32

#: Everything a torn frame or hostile pickle payload is known to raise.
#: ``UnpicklingError``/``EOFError``/``AttributeError`` are the classic
#: truncation/stale-class cases; a malformed stream can also raise
#: ``ValueError``/``IndexError``/``TypeError``/``KeyError``, and a
#: pickle referencing a module that no longer exists raises
#: ``ImportError``. (``ValueError`` also covers this module's own
#: frame-check failures.)
_CORRUPT_EXCEPTIONS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ValueError,
    IndexError,
    ImportError,
    TypeError,
    KeyError,
)


def frame_payload(payload: bytes) -> bytes:
    """Wrap pickle bytes in the length + SHA-256 integrity frame."""
    return (
        STORE_MAGIC
        + len(payload).to_bytes(8, "big")
        + hashlib.sha256(payload).digest()
        + payload
    )


def unframe_payload(blob: bytes) -> bytes:
    """Verify and strip the integrity frame; raises ``ValueError``.

    Blobs without the magic prefix are returned unchanged (legacy
    pre-framing entries -- their only guard is the unpickler's own
    exception net).
    """
    if not blob.startswith(STORE_MAGIC):
        return blob
    if len(blob) < _HEADER_LEN:
        raise ValueError(
            f"torn store frame: {len(blob)} bytes, header needs "
            f"{_HEADER_LEN}"
        )
    magic_len = len(STORE_MAGIC)
    length = int.from_bytes(blob[magic_len:magic_len + 8], "big")
    digest = blob[magic_len + 8:_HEADER_LEN]
    payload = blob[_HEADER_LEN:]
    if len(payload) != length:
        raise ValueError(
            f"torn store frame: {len(payload)} of {length} payload bytes"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise ValueError("store frame checksum mismatch")
    return payload


def _encode(value):
    """Canonical JSON-compatible encoding of a config value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        encoded = {"__dataclass__": type(value).__name__}
        for field in dataclasses.fields(value):
            encoded[field.name] = _encode(getattr(value, field.name))
        return encoded
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "value": value.value}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for hashing")


def _constants_fingerprint() -> dict:
    """The architectural constants a result depends on, by name."""
    return {
        name: value
        for name, value in sorted(vars(constants).items())
        if name.isupper() and isinstance(value, (bool, int, float, str))
    }


def constants_fingerprint() -> dict:
    """Public view of the constants fingerprint (campaign journals
    embed it so a resumed campaign refuses to mix results computed
    under different architectural constants)."""
    return _constants_fingerprint()


def canonical_encode(value):
    """Public view of the canonical config encoding (campaign
    fingerprints reuse it for the scale preset)."""
    return _encode(value)


def config_key(config: SimulationConfig) -> str:
    """Stable content hash of a config + code-relevant constants."""
    payload = {
        "version": STORE_VERSION,
        "config": _encode(config),
        "constants": _constants_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultStore:
    """Directory of pickled :class:`SimulationResult`s, content-addressed.

    Args:
        root: store directory (created on demand; an uncreatable root
            degrades the store to a warned no-op instead of raising).
        faults: optional :class:`FaultPlan` whose ``store.write`` specs
            corrupt entries as they are written (chaos testing);
            defaults to the plan named by ``COLT_FAULTS``.
    """

    def __init__(self, root, faults: Optional[FaultPlan] = None) -> None:
        self.root = Path(root)
        self.counters = CounterSet(
            ["hits", "misses", "evictions", "saves", "quarantines",
             "save_errors", "io_errors"]
        )
        self._faults = faults if faults is not None else FaultPlan.from_env()
        self._write_index = 0
        self._disabled = False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            self._disabled = True
            _LOG.warning(
                "result store disabled: cannot create %s (%s); "
                "continuing without a cache",
                self.root, exc,
            )
        self._tracer = current_tracer()
        if obs_active():
            bind_counterset(get_registry(), "colt_store", self.counters)

    @property
    def disabled(self) -> bool:
        """True when the store degraded to store-less operation."""
        return self._disabled

    @classmethod
    def from_env(cls, default: Optional[str] = DEFAULT_STORE_DIR
                 ) -> Optional["ResultStore"]:
        """Store at ``$COLT_RESULT_CACHE``, else ``default``.

        ``COLT_RESULT_CACHE=`` (empty) or ``0`` disables the store, as
        does ``default=None`` when the variable is unset. A store root
        that cannot be created also yields ``None`` (store-less
        operation) rather than failing the experiment run.
        """
        location = os.environ.get(STORE_ENV)
        if location is not None:
            if location.strip() in ("", "0", "off", "none"):
                return None
            store = cls(location)
        elif default is None:
            return None
        else:
            store = cls(default)
        return None if store.disabled else store

    def _path(self, config: SimulationConfig) -> Path:
        return self.root / f"{config_key(config)}.pkl"

    def load(self, config: SimulationConfig) -> Optional[SimulationResult]:
        """Return the stored result for ``config``, or None."""
        if self._tracer is None:
            return self._load(config)
        with self._tracer.span("store.get", cat="store") as span_args:
            result = self._load(config)
            span_args["hit"] = result is not None
            return result

    def _load(self, config: SimulationConfig) -> Optional[SimulationResult]:
        if self._disabled:
            return None
        path = self._path(config)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.counters.increment("misses")
            return None
        except OSError as exc:
            _LOG.warning("store read failed for %s: %s", path.name, exc)
            self.counters.increment("io_errors")
            self.counters.increment("misses")
            return None
        try:
            result = pickle.loads(unframe_payload(blob))
        except _CORRUPT_EXCEPTIONS as exc:
            # A torn, corrupted or hostile entry: quarantine for
            # post-mortem (never silently unlink) and recompute.
            self._quarantine(path, exc)
            self.counters.increment("misses")
            return None
        if not isinstance(result, SimulationResult) or result.config != config:
            # Decodable but stale/mismatched (e.g. a key collision or
            # hand-edited entry): evict outright, nothing to autopsy.
            _LOG.warning("dropping mismatched store entry %s", path.name)
            path.unlink(missing_ok=True)
            self.counters.increment("evictions")
            self.counters.increment("misses")
            return None
        self.counters.increment("hits")
        return result

    def _quarantine(self, path: Path, exc: BaseException) -> None:
        """Move an undecodable entry aside, tagged by exception class."""
        self.counters.increment("quarantines")
        self.counters.increment(f"corrupt_{type(exc).__name__.lower()}")
        quarantine = self.root / QUARANTINE_DIR
        try:
            quarantine.mkdir(exist_ok=True)
            os.replace(path, quarantine / path.name)
            _LOG.warning(
                "quarantined undecodable store entry %s -> %s/ (%s: %s)",
                path.name, QUARANTINE_DIR, type(exc).__name__, exc,
            )
        except OSError as move_exc:
            _LOG.warning(
                "dropping undecodable store entry %s "
                "(quarantine failed: %s; original error %s: %s)",
                path.name, move_exc, type(exc).__name__, exc,
            )
            path.unlink(missing_ok=True)

    def save(self, config: SimulationConfig, result: SimulationResult) -> None:
        """Persist ``result`` atomically (safe under concurrent writers)."""
        if self._tracer is None:
            self._save(config, result)
            return
        with self._tracer.span("store.put", cat="store"):
            self._save(config, result)

    def _save(self, config: SimulationConfig, result: SimulationResult) -> None:
        if self._disabled:
            return
        frame = frame_payload(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        )
        index = self._write_index
        self._write_index += 1
        if self._faults is not None:
            kind = self._faults.corruption(index)
            if kind is not None:
                frame = corrupt_bytes(frame, kind)
        path = self._path(config)
        try:
            atomic_write_bytes(path, frame)
        except OSError as exc:
            # Disk full / permissions lost mid-run: degrade to a warned
            # dropped save, the in-process cache still has the result.
            _LOG.warning("store save failed for %s: %s", path.name, exc)
            self.counters.increment("save_errors")
            return
        self.counters.increment("saves")

    def clear(self) -> int:
        """Delete every stored entry (quarantined included); count removed."""
        if self._disabled:
            return 0
        removed = 0
        quarantine = self.root / QUARANTINE_DIR
        for directory in (self.root, quarantine):
            if not directory.is_dir():
                continue
            for path in directory.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if self._disabled:
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))
