"""Deterministic fault injection for the resilient experiment runner.

The runner's crash tolerance (``repro.sim.resilience``) is only
credible if it can be exercised on a *seeded schedule*: the same
``COLT_FAULTS`` plan must kill the same task of the same batch every
time, so a chaos test can assert the recovered results are bit-identical
to a fault-free run. This module is that schedule. A :class:`FaultPlan`
is a set of :class:`FaultSpec` triggers keyed by *site* (``capture``,
``replay``, ``campaign``, ``store.write``) and the task's deterministic
index within that site -- never by wall-clock, pid, or pool scheduling
order.

Fault kinds:

``crash``
    Hard-kill the worker process (``os._exit``), which breaks the
    ``ProcessPoolExecutor`` -- the messiest failure a batch can see.
    When fired in the parent process (serial execution, or after the
    runner degraded to in-process mode) it raises
    :class:`~repro.common.errors.InjectedFaultError` instead, because
    exiting the parent would kill the experiment rather than a worker.
``raise``
    Raise :class:`~repro.common.errors.InjectedFaultError` inside the
    task -- an ordinary worker exception.
``delay``
    ``time.sleep`` for the spec's seconds before the task body runs,
    pushing the task past a per-task deadline so the parent's
    ``future.result(timeout=...)`` trips.
``torn`` / ``corrupt``
    Mutate a result-store write (truncate the framed payload / flip a
    payload byte) so the checksum-verified load path must quarantine
    the entry. Applied by :meth:`repro.sim.store.ResultStore._save`
    via :meth:`FaultPlan.corruption`. ``torn`` additionally targets
    the per-shard write-ahead journal of a distributed worker
    (``dist.journal``), indexed by that worker's journal write count.
``worker-lost`` / ``shard-desync``
    Distributed-layer faults, fired at the ``dist`` site and indexed
    by *worker id*. ``worker-lost`` hard-kills the targeted worker
    subprocess when its first assignment arrives (the coordinator must
    detect the loss and reassign the shard); ``shard-desync`` makes
    the worker report a perturbed constants fingerprint, so the
    coordinator must quarantine the shard instead of merging it.
    Queried by :meth:`FaultPlan.dist_fault` in
    ``repro.sim.dist.worker``.

Grammar (``COLT_FAULTS`` environment variable, ``;``-separated)::

    kind@site:index[,index...][xTIMES][/SECONDS]

    COLT_FAULTS="crash@capture:0;raise@replay:1x2;delay@replay:0/0.5"
    COLT_FAULTS="torn@store.write:0;corrupt@store.write:2,3"
    COLT_FAULTS="worker-lost@dist:1;torn@dist.journal:0"

``xTIMES`` fires the fault on attempts ``0..TIMES-1`` of the task
(default 1: only the first attempt faults, so a single retry
recovers); ``/SECONDS`` is the ``delay`` duration. Because the fault
fires by (site, index, attempt), a retried task deterministically
escapes a ``x1`` fault no matter which worker re-runs it.

``time.sleep`` is the only wall-clock interaction here, and it only
*delays* work -- injected faults never feed a number into a
``SimulationResult``, which is the invariant the chaos tests pin.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, InjectedFaultError
from repro.common.statistics import CounterSet
from repro.obs.registry import get_registry
from repro.obs.trace import obs_active

#: Environment variable carrying the fault plan (workers inherit it).
FAULTS_ENV = "COLT_FAULTS"

#: Exit status of a ``crash``-faulted worker (shows up in pool logs).
CRASH_EXIT_CODE = 86

#: Fault kinds executed inside a task.
EXECUTION_KINDS = ("crash", "raise", "delay")

#: Fault kinds applied to result-store (and shard-journal) writes.
STORE_KINDS = ("torn", "corrupt")

#: Fault kinds for the distributed coordinator/worker layer
#: (``repro.sim.dist``), indexed by worker id.
DIST_KINDS = ("worker-lost", "shard-desync")

#: Sites execution faults may target. ``campaign`` fires in the parent
#: at the top of a campaign experiment (indexed by its position in the
#: manifest order), so chaos tests can kill a campaign mid-flight and
#: assert the journal stayed consistent; ``crash`` there demotes to
#: :class:`~repro.common.errors.InjectedFaultError` like any other
#: parent-process fire.
TASK_SITES = ("capture", "replay", "campaign")

#: The store-write site.
STORE_SITE = "store.write"

#: The distributed-worker site (``worker-lost``/``shard-desync``,
#: indexed by worker id) and the per-shard journal write site
#: (``torn``/``corrupt``, indexed by that worker's journal writes).
DIST_SITE = "dist"
DIST_JOURNAL_SITE = "dist.journal"

_SPEC_RE = re.compile(
    r"^(?P<kind>[a-z]+(?:-[a-z]+)*)@(?P<site>[a-z.]+)"
    r":(?P<indices>\d+(?:,\d+)*)"
    r"(?:x(?P<times>\d+))?(?:/(?P<seconds>\d+(?:\.\d+)?))?$"
)


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: fire ``kind`` at ``site`` for the given task indices.

    Attributes:
        kind: one of ``crash``/``raise``/``delay``/``torn``/``corrupt``
            /``worker-lost``/``shard-desync``.
        site: ``capture``, ``replay``, ``campaign``, ``store.write``,
            ``dist`` or ``dist.journal``.
        indices: deterministic per-site task (or write) indices to hit.
        times: fault fires while ``attempt < times`` (default 1).
        seconds: sleep duration for ``delay`` faults.
    """

    kind: str
    site: str
    indices: Tuple[int, ...]
    times: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind in EXECUTION_KINDS:
            if self.site not in TASK_SITES:
                raise ConfigurationError(
                    f"fault kind {self.kind!r} targets task sites "
                    f"{TASK_SITES}, not {self.site!r}"
                )
        elif self.kind in STORE_KINDS:
            if self.site not in (STORE_SITE, DIST_JOURNAL_SITE):
                raise ConfigurationError(
                    f"fault kind {self.kind!r} targets {STORE_SITE!r} "
                    f"or {DIST_JOURNAL_SITE!r}, not {self.site!r}"
                )
        elif self.kind in DIST_KINDS:
            if self.site != DIST_SITE:
                raise ConfigurationError(
                    f"fault kind {self.kind!r} targets {DIST_SITE!r} "
                    f"(indexed by worker id), not {self.site!r}"
                )
        else:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{EXECUTION_KINDS + STORE_KINDS + DIST_KINDS}"
            )
        if self.times < 1:
            raise ConfigurationError(
                f"fault times must be >= 1, got {self.times}"
            )

    def matches(self, site: str, index: int, attempt: int) -> bool:
        return (
            site == self.site
            and index in self.indices
            and attempt < self.times
        )

    def render(self) -> str:
        text = f"{self.kind}@{self.site}:{','.join(map(str, self.indices))}"
        if self.times != 1:
            text += f"x{self.times}"
        if self.seconds:
            text += f"/{self.seconds:g}"
        return text


class FaultPlan:
    """A picklable, deterministic schedule of injected faults.

    The plan records the pid it was built in: ``crash`` faults hard-kill
    only when fired from a *different* process (a pool worker), and
    degrade to :class:`InjectedFaultError` in the parent, so serial and
    downgraded-to-serial execution stays recoverable.

    ``counters`` tallies fired faults per kind in the firing process;
    when observability is active each firing also increments the
    ``colt_faults_injected`` registry counter (labelled by kind and
    site), which pool workers ship back through the standard obs
    payload drain.
    """

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self.specs = tuple(specs)
        self.counters = CounterSet(
            EXECUTION_KINDS + STORE_KINDS + DIST_KINDS
        )
        self._parent_pid = os.getpid()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def render(self) -> str:
        """The plan back in ``COLT_FAULTS`` grammar (for logs)."""
        return ";".join(spec.render() for spec in self.specs)

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``COLT_FAULTS`` grammar into a plan."""
        specs = []
        for part in text.split(";"):
            part = part.strip()
            if not part:
                continue
            match = _SPEC_RE.match(part)
            if match is None:
                raise ConfigurationError(
                    f"cannot parse fault spec {part!r}; expected "
                    "kind@site:index[,index...][xTIMES][/SECONDS]"
                )
            specs.append(
                FaultSpec(
                    kind=match.group("kind"),
                    site=match.group("site"),
                    indices=tuple(
                        int(i) for i in match.group("indices").split(",")
                    ),
                    times=int(match.group("times") or 1),
                    seconds=float(match.group("seconds") or 0.0),
                )
            )
        return cls(specs)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``COLT_FAULTS``, or None when unset/empty."""
        text = os.environ.get(FAULTS_ENV, "").strip()
        if not text:
            return None
        plan = cls.parse(text)
        return plan if plan else None

    # ------------------------------------------------------------------
    # Firing.
    # ------------------------------------------------------------------

    def _record(self, kind: str, site: str) -> None:
        self.counters.increment(kind)
        if obs_active():
            get_registry().counter(
                "colt_faults_injected",
                help="faults fired by the COLT_FAULTS plan",
            ).inc(kind=kind, site=site)

    def fire(self, site: str, index: int, attempt: int = 0) -> None:
        """Execute any scheduled task fault for (site, index, attempt).

        Called at the top of a capture/replay task body. May sleep
        (``delay``), raise (``raise``, or ``crash`` in the parent
        process), or never return (``crash`` in a worker).
        """
        for spec in self.specs:
            if spec.kind not in EXECUTION_KINDS:
                continue
            if not spec.matches(site, index, attempt):
                continue
            self._record(spec.kind, site)
            if spec.kind == "delay":
                time.sleep(spec.seconds)
                continue
            if spec.kind == "crash" and os.getpid() != self._parent_pid:
                # A real worker death: no exception, no cleanup, the
                # parent sees BrokenProcessPool.
                os._exit(CRASH_EXIT_CODE)
            raise InjectedFaultError(
                f"injected {spec.kind} fault at {site}[{index}] "
                f"attempt {attempt} ({spec.render()})"
            )

    def corruption(self, index: int) -> Optional[str]:
        """The store-write fault kind scheduled for write ``index``."""
        return self.corruption_at(STORE_SITE, index)

    def corruption_at(self, site: str, index: int) -> Optional[str]:
        """The write-corruption kind scheduled for ``site`` write
        ``index`` (``store.write`` entries or ``dist.journal`` shard
        journal rewrites), or None."""
        for spec in self.specs:
            if spec.kind in STORE_KINDS and spec.matches(site, index, 0):
                self._record(spec.kind, site)
                return spec.kind
        return None

    def dist_fault(
        self, site: str, index: int, attempt: int = 0
    ) -> Optional[str]:
        """The distributed fault kind scheduled for worker ``index``.

        Queried by a worker subprocess once at startup (``attempt`` 0);
        ``worker-lost`` arms a hard ``os._exit`` on the worker's first
        assignment, ``shard-desync`` perturbs the constants fingerprint
        it reports. Recording happens in the worker process, so the
        coordinator counts detections (lost/desynced shards), not
        firings.
        """
        for spec in self.specs:
            if spec.kind in DIST_KINDS and spec.matches(
                site, index, attempt
            ):
                self._record(spec.kind, site)
                return spec.kind
        return None


def corrupt_bytes(data: bytes, kind: str) -> bytes:
    """Apply a ``torn`` (truncate) or ``corrupt`` (bit-flip) mutation."""
    if kind == "torn":
        return data[: len(data) // 2]
    if kind == "corrupt":
        mutated = bytearray(data)
        mutated[len(mutated) // 2] ^= 0x5A
        return bytes(mutated)
    raise ConfigurationError(f"unknown store corruption kind {kind!r}")
