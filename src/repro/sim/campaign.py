"""Resumable experiment campaigns: journal, runner, graceful shutdown.

Regenerating the full paper evaluation (Table 1, the contiguity
figures, the TLB figures, the ablations) is a long multi-batch run.
PR 4's :class:`~repro.sim.resilience.ResilientExecutor` protects the
inside of one ``run_batch`` call; this module protects the *campaign*:
a Ctrl-C, OOM kill or hung worker between batches must not lose
campaign-level progress, and a restarted process must pick up exactly
where the killed one stopped.

Three pieces:

* :class:`CampaignManifest` -- a crash-safe JSON **write-ahead
  journal** under the cache dir enumerating every experiment with
  ``pending`` / ``running`` / ``done`` / ``failed`` status plus a
  fingerprint of the scale preset, experiment list and architectural
  constants. Every transition is journaled *before* the work it
  describes (mark-running precedes the run, mark-done follows it), and
  every rewrite is atomic (``repro.common.atomicio``), so the journal
  is consistent at any kill point: a ``running`` entry after a crash
  means exactly "this experiment was in flight and must rerun".
* :class:`CampaignRunner` -- drives
  :class:`~repro.sim.runner.ExperimentRunner` experiment by
  experiment, skipping journaled ``done`` entries on ``--resume``
  (their tables reload from the atomic per-experiment dumps), writing
  each completed experiment's table to disk, and honouring the
  shutdown coordinator and watchdog between batches.
* :class:`ShutdownCoordinator` -- signal-safe graceful shutdown. The
  **first** SIGINT/SIGTERM only sets a flag: the executor cancels
  pending work, completed results checkpoint to the store, the
  campaign journals its state, and the CLI flushes observability
  artifacts before exiting with :data:`SHUTDOWN_EXIT_CODE`. A
  **second** signal restores the default handler and re-raises it --
  the hard abort for when graceful is taking too long (the journal is
  still consistent, because it is write-ahead).

Determinism note: the journal records *what happened*, never *when* --
no wall-clock enters this module, so resumed campaigns reproduce
interrupted ones bit for bit.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.atomicio import atomic_write_json, atomic_write_text
from repro.common.errors import (
    CampaignError,
    MemoryBudgetError,
    ShutdownRequested,
    TaskExecutionError,
)
from repro.common.statistics import CounterSet
from repro.obs.live import get_progress
from repro.obs.logging import get_logger
from repro.obs.registry import bind_counterset, get_registry
from repro.obs.trace import obs_active, span
from repro.sim.runner import ExperimentRunner
from repro.sim.store import canonical_encode, constants_fingerprint
from repro.sim.watchdog import Watchdog

_LOG = get_logger(__name__)

#: Journal schema version (bump on layout changes).
CAMPAIGN_VERSION = 1

#: Exit status of a run that shut down gracefully on the first signal
#: with a consistent journal -- distinct from 0 (complete), 1 (error)
#: and the shell's 128+signum (hard kill), so wrappers can distinguish
#: "resume me" from "debug me".
SHUTDOWN_EXIT_CODE = 75  # EX_TEMPFAIL: transient, retry (resume) later

#: Journal entry statuses.
STATUS_PENDING = "pending"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"
_STATUSES = (STATUS_PENDING, STATUS_RUNNING, STATUS_DONE, STATUS_FAILED)

#: Counter names (bound to the registry as ``colt_campaign_*``).
CAMPAIGN_COUNTERS = (
    "experiments",
    "completed",
    "skipped",
    "failed",
    "interrupted",
    "resumed",
    "demotions",
    "journal_writes",
)


def campaign_fingerprint(scale, experiment_ids: Sequence[str]) -> str:
    """Stable hash of everything a journal's results depend on.

    A resumed campaign must refuse to mix results across scale presets,
    experiment lists, or architectural-constant changes -- any of those
    silently changes every number in the paper. The replay engine
    (``--engine`` / ``COLT_ENGINE``) is deliberately *not* part of the
    fingerprint: both engines produce bit-identical results, so a
    campaign interrupted under one may resume under the other.
    """
    payload = {
        "version": CAMPAIGN_VERSION,
        "scale": canonical_encode(scale),
        "ids": list(experiment_ids),
        "constants": constants_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ShutdownCoordinator:
    """Two-stage SIGINT/SIGTERM handling for long runs.

    First signal: remember it and let every polling site (executor
    waits, campaign loop, experiment loop) wind down gracefully.
    Second signal: restore the default handler and re-raise, so an
    operator is never trapped behind a graceful path that hangs.

    Install from the main thread only (CPython restricts
    ``signal.signal``); library code receives an installed coordinator
    and merely polls :attr:`requested` / calls :meth:`check`.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.signal_name: Optional[str] = None
        self._previous: Dict[int, object] = {}

    @property
    def requested(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        """Raise :class:`ShutdownRequested` if a signal arrived."""
        if self._event.is_set():
            raise ShutdownRequested(self.signal_name or "signal")

    def request(self, signal_name: str = "request()") -> None:
        """Programmatic trigger (tests, embedding)."""
        if not self._event.is_set():
            self.signal_name = signal_name
        self._event.set()

    def _handle(self, signum, frame) -> None:
        name = signal.Signals(signum).name
        if self._event.is_set():
            # Second signal: get out of the way and take the default
            # (fatal) behaviour -- the write-ahead journal is already
            # consistent, so a hard abort loses nothing but politeness.
            _LOG.warning("second %s: hard abort", name)
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        self.signal_name = name
        self._event.set()
        _LOG.warning(
            "%s received: cancelling pending work, checkpointing "
            "completed results, journaling state (signal again to "
            "hard-abort)", name,
        )

    def install(self, signals=(signal.SIGINT, signal.SIGTERM)
                ) -> "ShutdownCoordinator":
        for sig in signals:
            self._previous[sig] = signal.signal(sig, self._handle)
        return self

    def restore(self) -> None:
        for sig, previous in self._previous.items():
            signal.signal(sig, previous)
        self._previous.clear()

    def __enter__(self) -> "ShutdownCoordinator":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.restore()


class CampaignManifest:
    """The write-ahead journal: experiment list + status, on disk.

    Every mutation rewrites the whole JSON document atomically; the
    document is small (one entry per experiment), so rewrite-the-world
    is simpler and safer than appending. ``save()`` happens *before*
    dependent work starts and *after* it finishes, which makes every
    status trustworthy at any kill point.
    """

    def __init__(
        self,
        path,
        experiment_ids: Sequence[str],
        fingerprint: str,
        entries: Optional[Dict[str, dict]] = None,
    ) -> None:
        self.path = Path(path)
        self.experiment_ids: Tuple[str, ...] = tuple(experiment_ids)
        self.fingerprint = fingerprint
        self.entries: Dict[str, dict] = entries if entries is not None else {
            exp_id: {"status": STATUS_PENDING, "attempts": 0, "error": None}
            for exp_id in self.experiment_ids
        }
        self.writes = 0

    # -- construction ---------------------------------------------------

    @classmethod
    def fresh(cls, path, experiment_ids: Sequence[str], fingerprint: str
              ) -> "CampaignManifest":
        """New all-pending journal, written to disk immediately."""
        manifest = cls(path, experiment_ids, fingerprint)
        manifest.save()
        return manifest

    @classmethod
    def load(cls, path) -> "CampaignManifest":
        """Parse a journal; :class:`CampaignError` when unusable."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CampaignError(
                f"no campaign journal at {path}; start one without "
                "--resume first"
            ) from None
        except (OSError, ValueError) as exc:
            raise CampaignError(
                f"unreadable campaign journal {path}: {exc}"
            ) from exc
        if not isinstance(data, dict) or data.get("version") != \
                CAMPAIGN_VERSION:
            raise CampaignError(
                f"campaign journal {path} has version "
                f"{data.get('version') if isinstance(data, dict) else '?'}, "
                f"this build writes {CAMPAIGN_VERSION}; delete it to start "
                "fresh"
            )
        try:
            ids = tuple(data["experiments"])
            entries = {
                exp_id: dict(data["entries"][exp_id]) for exp_id in ids
            }
            fingerprint = data["fingerprint"]
        except (KeyError, TypeError) as exc:
            raise CampaignError(
                f"campaign journal {path} is missing fields: {exc}"
            ) from exc
        for exp_id, entry in entries.items():
            if entry.get("status") not in _STATUSES:
                raise CampaignError(
                    f"campaign journal {path}: experiment {exp_id!r} has "
                    f"unknown status {entry.get('status')!r}"
                )
        return cls(path, ids, fingerprint, entries)

    def save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            self.path,
            {
                "version": CAMPAIGN_VERSION,
                "fingerprint": self.fingerprint,
                "experiments": list(self.experiment_ids),
                "entries": self.entries,
            },
            indent=2,
            sort_keys=True,
        )
        self.writes += 1

    # -- queries --------------------------------------------------------

    def status(self, exp_id: str) -> str:
        return self.entries[exp_id]["status"]

    def counts(self) -> Dict[str, int]:
        tally = {status: 0 for status in _STATUSES}
        for entry in self.entries.values():
            tally[entry["status"]] += 1
        return tally

    def pending_ids(self) -> List[str]:
        """Experiments a (resumed) campaign still has to run.

        ``failed`` entries are retried on resume -- exhaustion is often
        environmental (OOM, disk) and the point of resuming is a second
        chance; ``done`` entries are never recomputed.
        """
        return [
            exp_id for exp_id in self.experiment_ids
            if self.entries[exp_id]["status"] != STATUS_DONE
        ]

    def is_complete(self) -> bool:
        return all(
            entry["status"] == STATUS_DONE for entry in self.entries.values()
        )

    # -- write-ahead transitions ---------------------------------------

    def _transition(self, exp_id: str, status: str,
                    error: Optional[str] = None) -> None:
        entry = self.entries[exp_id]
        entry["status"] = status
        entry["error"] = error
        if status == STATUS_RUNNING:
            entry["attempts"] = int(entry.get("attempts", 0)) + 1
        self.save()

    def mark_running(self, exp_id: str) -> None:
        self._transition(exp_id, STATUS_RUNNING)

    def mark_done(self, exp_id: str) -> None:
        self._transition(exp_id, STATUS_DONE)

    def mark_failed(self, exp_id: str, error: str) -> None:
        self._transition(exp_id, STATUS_FAILED, error=error)

    def mark_pending(self, exp_id: str) -> None:
        self._transition(exp_id, STATUS_PENDING)

    def demote_running(self) -> List[str]:
        """Resume-time repair: in-flight entries of a killed process
        go back to ``pending`` (their work never journaled as done).
        Returns the demoted experiment ids so the caller can account
        for the repair instead of performing it silently."""
        demoted = []
        for exp_id, entry in self.entries.items():
            if entry["status"] == STATUS_RUNNING:
                entry["status"] = STATUS_PENDING
                demoted.append(exp_id)
        if demoted:
            self.save()
        return demoted


@dataclass
class CampaignStatus:
    """What one :meth:`CampaignRunner.run` call did."""

    completed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    interrupted: Optional[str] = None  # signal name when shut down early
    tables: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed and self.interrupted is None


class CampaignRunner:
    """Drives the experiment registry batch-by-batch under the journal.

    Args:
        manifest: the write-ahead journal (fresh or resumed).
        runner: the shared :class:`ExperimentRunner` (store-backed).
        scale: the :class:`~repro.experiments.scale.ExperimentScale`
            every experiment runs at.
        tables_dir: where per-experiment table dumps land (atomic
            writes; reloaded instead of recomputed on resume).
        shutdown: optional coordinator polled between experiments.
        watchdog: optional watchdog; its abort flag is honoured
            between experiments (the runner itself honours the
            degradation ladder inside batches).
        faults: optional fault plan; ``<kind>@campaign:<index>`` specs
            fire before experiment ``index`` starts (chaos testing the
            journal's kill-anywhere consistency).
    """

    def __init__(
        self,
        manifest: CampaignManifest,
        runner: ExperimentRunner,
        scale,
        tables_dir,
        shutdown: Optional[ShutdownCoordinator] = None,
        watchdog: Optional[Watchdog] = None,
        faults=None,
        on_experiment=None,
    ) -> None:
        self.manifest = manifest
        self.runner = runner
        self.scale = scale
        self.tables_dir = Path(tables_dir)
        self.shutdown = shutdown
        self.watchdog = watchdog
        self._faults = faults
        self._on_experiment = on_experiment
        self.counters = CounterSet(CAMPAIGN_COUNTERS)
        if obs_active():
            bind_counterset(get_registry(), "colt_campaign", self.counters)

    def _table_path(self, exp_id: str) -> Path:
        return self.tables_dir / f"{exp_id}.txt"

    def _publish_progress(self, current: Optional[str] = None) -> None:
        """Post manifest counts to the live tracker (telemetry plane)."""
        get_progress().update_section(
            "campaign",
            current=current,
            total=len(self.manifest.experiment_ids),
            **self.manifest.counts(),
        )

    def run(self) -> CampaignStatus:
        """Run every non-``done`` experiment; journal every transition.

        Returns instead of raising on graceful shutdown (the status
        carries the signal name); propagates hard failures
        (:class:`MemoryBudgetError`, injected campaign faults) with the
        journal already consistent.
        """
        # Local import: the registry imports the runner module tree;
        # importing it lazily keeps repro.sim importable on its own.
        from repro.experiments.registry import get_experiment

        status = CampaignStatus()
        get_progress().update(phase="campaign")
        self._publish_progress()
        demoted = self.manifest.demote_running()
        if demoted:
            self.counters.increment("resumed", len(demoted))
            self.counters.increment("demotions", len(demoted))
            if obs_active():
                get_registry().counter(
                    "colt_campaign_demotions",
                    help="in-flight experiments demoted to pending "
                    "on resume",
                ).inc(len(demoted))
            _LOG.warning(
                "journal had %d in-flight experiment(s) from a killed "
                "run; requeued: %s", len(demoted), ", ".join(demoted),
            )
        for index, exp_id in enumerate(self.manifest.experiment_ids):
            if self.watchdog is not None and self.watchdog.should_abort():
                raise MemoryBudgetError(
                    "memory watchdog exhausted its degradation ladder; "
                    f"campaign journaled at {self.manifest.path} -- "
                    "resume with a larger budget or fewer jobs"
                )
            if self.shutdown is not None and self.shutdown.requested:
                status.interrupted = self.shutdown.signal_name
                break
            if self.manifest.status(exp_id) == STATUS_DONE:
                self.counters.increment("skipped")
                status.skipped.append(exp_id)
                table_path = self._table_path(exp_id)
                if table_path.exists():
                    status.tables[exp_id] = table_path.read_text(
                        encoding="utf-8"
                    )
                continue
            self.counters.increment("experiments")
            self.manifest.mark_running(exp_id)
            self.counters.increment("journal_writes")
            self._publish_progress(current=exp_id)
            if self._faults is not None:
                # After mark-running: an injected death here leaves the
                # nastiest journal state (in flight), which resume must
                # repair via demote_running().
                self._faults.fire("campaign", index)
            if self.shutdown is not None and self.shutdown.requested:
                # A signal landed between the journal transition and
                # launch. A cache-warm experiment might never reach the
                # executor's shutdown poll, so requeue it here.
                self.manifest.mark_pending(exp_id)
                self.counters.increment("journal_writes")
                self.counters.increment("interrupted")
                status.interrupted = self.shutdown.signal_name
                break
            experiment = get_experiment(exp_id)
            try:
                with span("campaign.experiment", cat="campaign", id=exp_id):
                    result = experiment.run(self.scale, self.runner)
            except ShutdownRequested as exc:
                # Nothing of this experiment was journaled as done;
                # requeue it and report the interruption.
                self.manifest.mark_pending(exp_id)
                self.counters.increment("journal_writes")
                self.counters.increment("interrupted")
                status.interrupted = exc.signal_name
                break
            except TaskExecutionError as exc:
                self.manifest.mark_failed(exp_id, str(exc))
                self.counters.increment("journal_writes")
                self.counters.increment("failed")
                self._publish_progress()
                status.failed.append(exp_id)
                _LOG.error("experiment %s failed permanently: %s",
                           exp_id, exc)
                continue
            table = result.format_table()
            self.tables_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(self._table_path(exp_id), table + "\n")
            self.manifest.mark_done(exp_id)
            self.counters.increment("journal_writes")
            self.counters.increment("completed")
            status.completed.append(exp_id)
            status.tables[exp_id] = table
            self._publish_progress()
            if self._on_experiment is not None:
                self._on_experiment(exp_id)
        self._publish_progress()
        get_progress().update(
            phase="interrupted" if status.interrupted else "idle"
        )
        if status.interrupted is not None:
            with span("campaign.shutdown", cat="campaign",
                      signal=status.interrupted):
                _LOG.warning(
                    "campaign interrupted by %s: %d done, %d still "
                    "pending; resume with --resume",
                    status.interrupted,
                    self.manifest.counts()[STATUS_DONE],
                    len(self.manifest.pending_ids()),
                )
        return status
