"""Crash-tolerant task execution for the experiment runner.

One crashed worker used to abort an entire ``ExperimentRunner`` batch:
``pool.map`` over captures and bare ``future.result()`` over replays
propagated the first exception and discarded every completed capture
and replay with it. :class:`ResilientExecutor` replaces both fan-outs
with per-task submission under an explicit :class:`RetryPolicy`:

* **Attribution** -- every :class:`TaskSpec` carries the offending
  config's benchmark/seed/design context, so a permanent failure names
  the scenario, not just a pickled traceback.
* **Bounded retries** -- failed tasks are resubmitted up to
  ``max_retries`` times with deterministic exponential backoff
  (``backoff_s * backoff_factor ** attempt``; no jitter -- reruns must
  schedule identically).
* **Per-task deadlines** -- ``timeout_s`` bounds each
  ``future.result`` wait; a timed-out task is retried and the stale
  future ignored (both attempts compute identical results, so the
  duplicate is harmless). Pooled tasks additionally arm a
  worker-side :mod:`faulthandler` dump at the same deadline, so a
  blown ``COLT_TASK_TIMEOUT`` leaves ``task-<pid>.txt`` under the
  dump dir showing *where* the worker was stuck, not just that it
  was.
* **Shutdown and stall hooks** -- an installed
  :class:`~repro.sim.campaign.ShutdownCoordinator` turns the first
  SIGINT/SIGTERM into a :class:`~repro.common.errors.ShutdownRequested`
  raised at the next safe point (pending futures cancelled, completed
  results already yielded -- and therefore checkpointed); a
  :class:`~repro.sim.watchdog.Watchdog` heartbeat is sent per
  completed task, and a fired stall cancels and requeues the stuck
  task through the same retry machinery a timeout uses.
* **Pool recovery** -- a ``BrokenProcessPool`` (worker killed by the
  OS, the oom-killer, or a ``crash`` fault) rebuilds the pool once;
  a second break degrades gracefully to serial in-process execution
  with a logged downgrade, where injected ``crash`` faults demote to
  ordinary exceptions (see ``repro.sim.faults``).
* **Incremental completion** -- :meth:`ResilientExecutor.run` is a
  generator yielding each task's result as soon as it resolves, so the
  runner checkpoints completed results into the store *before* a later
  failure can raise. Exhausted tasks raise
  :class:`~repro.common.errors.TaskExecutionError` only after every
  survivor has been yielded.

The executor is deliberately ignorant of what tasks compute: fault
injection lives in the task bodies (``repro.sim.runner``) and in the
store, keyed by the deterministic (site, index, attempt) triple the
executor maintains here.

``time.sleep`` (backoff) is the only wall-clock interaction; nothing
here feeds a ``SimulationResult``.
"""

from __future__ import annotations

import faulthandler
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.errors import (
    ShutdownRequested,
    StallError,
    TaskExecutionError,
)
from repro.common.statistics import CounterSet
from repro.obs.logging import get_logger
from repro.obs.trace import span
from repro.sim.watchdog import Watchdog, resolve_dump_dir

_LOG = get_logger(__name__)

#: Wait-slice for shutdown/stall polling while blocked on a future.
_POLL_SLICE_S = 0.1


def _run_armed(fn, args, attempt, timeout_s, dump_dir):
    """Worker-side task wrapper: faulthandler dump at the deadline.

    Arms ``faulthandler.dump_traceback_later`` for the parent's
    per-task deadline, so when the parent gives up on this task the
    worker has already written its all-thread stacks to
    ``<dump_dir>/task-<pid>.txt`` -- the post-mortem says *where* the
    worker was stuck. Disarmed on completion; a task that finishes in
    time leaves no dump.
    """
    try:
        path = Path(dump_dir) / f"task-{os.getpid()}.txt"
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = path.open("a", encoding="utf-8")
    except OSError as exc:
        # The task still runs; only the post-mortem dump is lost, and
        # that degradation must be visible, not silent.
        _LOG.warning(
            "deadline stack dumps disabled for this task: %s", exc
        )
        return fn(*args, attempt)
    try:
        faulthandler.dump_traceback_later(
            timeout_s, exit=False, file=handle
        )
        return fn(*args, attempt)
    finally:
        faulthandler.cancel_dump_traceback_later()
        handle.close()
        try:
            # A task that met its deadline dumped nothing: do not
            # litter the dump dir with empty files.
            if path.stat().st_size == 0:
                path.unlink()
        except OSError:
            pass

#: Counter names the executor maintains (bound to the metrics registry
#: as ``colt_resilience_*`` by the runner when observability is on).
RESILIENCE_COUNTERS = (
    "tasks",
    "retries",
    "timeouts",
    "task_errors",
    "pool_rebuilds",
    "serial_downgrades",
    "failures",
)

#: Environment knobs for the default policy.
RETRIES_ENV = "COLT_RETRIES"
TIMEOUT_ENV = "COLT_TASK_TIMEOUT"
BACKOFF_ENV = "COLT_BACKOFF"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry/backoff/deadline knobs for one runner.

    Attributes:
        max_retries: resubmissions allowed per task (attempts are
            ``0..max_retries``; 0 disables retrying).
        backoff_s: base sleep before the first retry.
        backoff_factor: multiplier per subsequent retry (deterministic
            exponential backoff, no jitter).
        timeout_s: per-task deadline for pooled execution; ``None``
            waits forever. Serial execution cannot preempt a running
            task, so deadlines only apply when a pool is in play.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    timeout_s: Optional[float] = None

    def backoff(self, attempt: int) -> float:
        """Sleep before retrying a task that failed ``attempt``."""
        return self.backoff_s * self.backoff_factor**attempt

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy from ``COLT_RETRIES``/``COLT_TASK_TIMEOUT``/``COLT_BACKOFF``."""
        policy = cls()
        retries = os.environ.get(RETRIES_ENV, "").strip()
        if retries:
            policy = replace(policy, max_retries=max(0, int(retries)))
        timeout = os.environ.get(TIMEOUT_ENV, "").strip()
        if timeout:
            seconds = float(timeout)
            policy = replace(
                policy, timeout_s=seconds if seconds > 0 else None
            )
        backoff = os.environ.get(BACKOFF_ENV, "").strip()
        if backoff:
            policy = replace(policy, backoff_s=max(0.0, float(backoff)))
        return policy


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: a picklable function plus attribution.

    ``fn`` is called as ``fn(*args, attempt)`` -- the attempt number is
    appended so task bodies can key fault injection on it. ``site`` and
    ``index`` identify the task deterministically across reruns (and
    across retries: the index never changes, only the attempt).
    """

    fn: Callable
    args: Tuple
    site: str
    index: int
    context: Dict[str, object]
    attempt: int = 0

    def describe(self) -> str:
        detail = ", ".join(f"{k}={v}" for k, v in self.context.items())
        return f"{self.site} task {self.index} ({detail})"


class ResilientExecutor:
    """Retrying, pool-recovering, incrementally-yielding task executor.

    One executor spans one ``run_batch``: the capture wave and the
    replay wave share its (lazily created) process pool, mirroring the
    single pool the pre-resilience runner used. Use as a context
    manager so the pool is torn down even when a wave raises.
    """

    def __init__(
        self,
        jobs: int,
        policy: Optional[RetryPolicy] = None,
        counters: Optional[CounterSet] = None,
        initializer: Optional[Callable] = None,
        shutdown=None,
        watchdog: Optional[Watchdog] = None,
        dump_dir=None,
    ) -> None:
        self._jobs = max(1, int(jobs))
        self._policy = policy if policy is not None else RetryPolicy()
        self.counters = (
            counters if counters is not None else CounterSet(RESILIENCE_COUNTERS)
        )
        self._initializer = initializer
        self._shutdown = shutdown
        self._watchdog = watchdog
        self._dump_dir = str(resolve_dump_dir(dump_dir))
        self._pool: Optional[ProcessPoolExecutor] = None
        self._rebuilt = False
        self._serial = self._jobs <= 1

    # ------------------------------------------------------------------
    # Pool lifecycle.
    # ------------------------------------------------------------------

    def __enter__(self) -> "ResilientExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._shutdown_pool()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._jobs, initializer=self._initializer
            )
        return self._pool

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _recover_pool(self) -> None:
        """After a break: rebuild once, then downgrade to serial."""
        self._shutdown_pool()
        if not self._rebuilt:
            self._rebuilt = True
            self.counters.increment("pool_rebuilds")
            with span("resilience.pool_rebuild", cat="resilience"):
                _LOG.warning(
                    "worker pool broke; rebuilding it once before "
                    "degrading to serial execution"
                )
        else:
            self._serial = True
            self.counters.increment("serial_downgrades")
            with span("resilience.serial_downgrade", cat="resilience"):
                _LOG.warning(
                    "worker pool broke again; downgrading to serial "
                    "in-process execution for the rest of the batch"
                )

    # ------------------------------------------------------------------
    # Retry bookkeeping.
    # ------------------------------------------------------------------

    def _next_attempt(
        self,
        task: TaskSpec,
        reason: object,
        failures: List[TaskExecutionError],
    ) -> Optional[TaskSpec]:
        """Back off and return the retry, or record a permanent failure."""
        if task.attempt >= self._policy.max_retries:
            self.counters.increment("failures")
            failures.append(
                TaskExecutionError(
                    f"{task.describe()} failed permanently after "
                    f"{task.attempt + 1} attempt(s): {reason}",
                    context=task.context,
                )
            )
            return None
        self.counters.increment("retries")
        delay = self._policy.backoff(task.attempt)
        _LOG.warning(
            "retrying %s (attempt %d/%d, backoff %.3fs): %s",
            task.describe(),
            task.attempt + 1,
            self._policy.max_retries,
            delay,
            reason,
        )
        with span(
            "resilience.retry",
            cat="resilience",
            site=task.site,
            index=task.index,
            attempt=task.attempt + 1,
        ):
            if delay > 0:
                time.sleep(delay)
        return replace(task, attempt=task.attempt + 1)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def _check_shutdown(self) -> None:
        if self._shutdown is not None and self._shutdown.requested:
            raise ShutdownRequested(
                getattr(self._shutdown, "signal_name", None) or "signal"
            )

    def _heartbeat(self) -> None:
        if self._watchdog is not None:
            self._watchdog.heartbeat()

    def _await(self, future):
        """``future.result`` bounded by the deadline, sliced so the
        wait stays responsive to shutdown signals and stall firings."""
        timeout = self._policy.timeout_s
        if self._shutdown is None and self._watchdog is None:
            return future.result(timeout=timeout)
        waited = 0.0
        while True:
            self._check_shutdown()
            if self._watchdog is not None and self._watchdog.consume_stall():
                raise StallError(
                    "stall watchdog fired: cancelling and requeueing "
                    f"(stack dump under {self._watchdog.dump_dir})"
                )
            slice_s = _POLL_SLICE_S
            if timeout is not None:
                slice_s = min(slice_s, max(0.0, timeout - waited))
            try:
                return future.result(timeout=slice_s)
            except FutureTimeoutError:
                waited += slice_s
                if timeout is not None and waited >= timeout:
                    raise

    def _drain_on_shutdown(self, submitted, consumed: int
                           ) -> Iterator[Tuple[TaskSpec, object]]:
        """First signal arrived mid-wave: cancel what has not run,
        yield what already finished, so every completed result still
        checkpoints before :class:`ShutdownRequested` propagates."""
        for task, future in submitted[consumed:]:
            if future.done() and not future.cancelled() \
                    and future.exception() is None:
                self._heartbeat()
                yield task, future.result()
            else:
                future.cancel()

    def run(
        self, tasks: Sequence[TaskSpec]
    ) -> Iterator[Tuple[TaskSpec, object]]:
        """Yield ``(task, result)`` as each task resolves.

        Successful results are yielded immediately (in submission order
        within a round), so the caller can checkpoint them before any
        permanent failure raises. After the final round, the first
        :class:`TaskExecutionError` raises; additional permanent
        failures are logged. A graceful-shutdown request raises
        :class:`ShutdownRequested` after cancelling unstarted work and
        yielding everything already complete.
        """
        failures: List[TaskExecutionError] = []
        pending = list(tasks)
        if pending and self._watchdog is not None:
            self._watchdog.begin_work()
        try:
            while pending:
                self._check_shutdown()
                batch, pending = pending, []
                if self._serial:
                    for task in batch:
                        self._check_shutdown()
                        yield from self._run_serial(task, failures)
                    continue
                pool = self._ensure_pool()
                submitted = []
                for task in batch:
                    self.counters.increment("tasks")
                    submitted.append((task, self._submit(pool, task)))
                pool_broken = False
                for position, (task, future) in enumerate(submitted):
                    try:
                        result = self._await(future)
                    except ShutdownRequested:
                        yield from self._drain_on_shutdown(
                            submitted, position
                        )
                        raise
                    except BrokenProcessPool:
                        pool_broken = True
                        retry = self._next_attempt(
                            task, "worker process died", failures
                        )
                        if retry is not None:
                            pending.append(retry)
                    except FutureTimeoutError:
                        self.counters.increment("timeouts")
                        retry = self._next_attempt(
                            task,
                            f"deadline of {self._policy.timeout_s}s "
                            f"exceeded (worker stacks, if it was stuck, "
                            f"dumped under {self._dump_dir})",
                            failures,
                        )
                        if retry is not None:
                            pending.append(retry)
                    except StallError as exc:
                        future.cancel()
                        retry = self._next_attempt(task, exc, failures)
                        if retry is not None:
                            pending.append(retry)
                    except Exception as exc:
                        self.counters.increment("task_errors")
                        retry = self._next_attempt(task, exc, failures)
                        if retry is not None:
                            pending.append(retry)
                    else:
                        self._heartbeat()
                        yield task, result
                if pool_broken:
                    self._recover_pool()
        finally:
            if tasks and self._watchdog is not None:
                self._watchdog.end_work()
        if failures:
            for extra in failures[1:]:
                _LOG.error("additional permanent failure: %s", extra)
            raise failures[0]

    def _submit(self, pool: ProcessPoolExecutor, task: TaskSpec):
        """Submit one attempt; deadline-bearing tasks get the
        worker-side faulthandler arming wrapper."""
        if self._policy.timeout_s is not None:
            return pool.submit(
                _run_armed,
                task.fn,
                task.args,
                task.attempt,
                self._policy.timeout_s,
                self._dump_dir,
            )
        return pool.submit(task.fn, *task.args, task.attempt)

    def _run_serial(
        self, task: TaskSpec, failures: List[TaskExecutionError]
    ) -> Iterator[Tuple[TaskSpec, object]]:
        """In-process execution (jobs=1, or post-downgrade)."""
        current = task
        while True:
            self.counters.increment("tasks")
            try:
                result = current.fn(*current.args, current.attempt)
            except Exception as exc:
                self.counters.increment("task_errors")
                retry = self._next_attempt(current, exc, failures)
                if retry is None:
                    return
                current = retry
                continue
            self._heartbeat()
            yield current, result
            return
