"""Crash-tolerant task execution for the experiment runner.

One crashed worker used to abort an entire ``ExperimentRunner`` batch:
``pool.map`` over captures and bare ``future.result()`` over replays
propagated the first exception and discarded every completed capture
and replay with it. :class:`ResilientExecutor` replaces both fan-outs
with per-task submission under an explicit :class:`RetryPolicy`:

* **Attribution** -- every :class:`TaskSpec` carries the offending
  config's benchmark/seed/design context, so a permanent failure names
  the scenario, not just a pickled traceback.
* **Bounded retries** -- failed tasks are resubmitted up to
  ``max_retries`` times with deterministic exponential backoff
  (``backoff_s * backoff_factor ** attempt``; no jitter -- reruns must
  schedule identically).
* **Per-task deadlines** -- ``timeout_s`` bounds each
  ``future.result`` wait; a timed-out task is retried and the stale
  future ignored (both attempts compute identical results, so the
  duplicate is harmless).
* **Pool recovery** -- a ``BrokenProcessPool`` (worker killed by the
  OS, the oom-killer, or a ``crash`` fault) rebuilds the pool once;
  a second break degrades gracefully to serial in-process execution
  with a logged downgrade, where injected ``crash`` faults demote to
  ordinary exceptions (see ``repro.sim.faults``).
* **Incremental completion** -- :meth:`ResilientExecutor.run` is a
  generator yielding each task's result as soon as it resolves, so the
  runner checkpoints completed results into the store *before* a later
  failure can raise. Exhausted tasks raise
  :class:`~repro.common.errors.TaskExecutionError` only after every
  survivor has been yielded.

The executor is deliberately ignorant of what tasks compute: fault
injection lives in the task bodies (``repro.sim.runner``) and in the
store, keyed by the deterministic (site, index, attempt) triple the
executor maintains here.

``time.sleep`` (backoff) is the only wall-clock interaction; nothing
here feeds a ``SimulationResult``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.errors import TaskExecutionError
from repro.common.statistics import CounterSet
from repro.obs.logging import get_logger
from repro.obs.trace import span

_LOG = get_logger(__name__)

#: Counter names the executor maintains (bound to the metrics registry
#: as ``colt_resilience_*`` by the runner when observability is on).
RESILIENCE_COUNTERS = (
    "tasks",
    "retries",
    "timeouts",
    "task_errors",
    "pool_rebuilds",
    "serial_downgrades",
    "failures",
)

#: Environment knobs for the default policy.
RETRIES_ENV = "COLT_RETRIES"
TIMEOUT_ENV = "COLT_TASK_TIMEOUT"
BACKOFF_ENV = "COLT_BACKOFF"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry/backoff/deadline knobs for one runner.

    Attributes:
        max_retries: resubmissions allowed per task (attempts are
            ``0..max_retries``; 0 disables retrying).
        backoff_s: base sleep before the first retry.
        backoff_factor: multiplier per subsequent retry (deterministic
            exponential backoff, no jitter).
        timeout_s: per-task deadline for pooled execution; ``None``
            waits forever. Serial execution cannot preempt a running
            task, so deadlines only apply when a pool is in play.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    timeout_s: Optional[float] = None

    def backoff(self, attempt: int) -> float:
        """Sleep before retrying a task that failed ``attempt``."""
        return self.backoff_s * self.backoff_factor**attempt

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy from ``COLT_RETRIES``/``COLT_TASK_TIMEOUT``/``COLT_BACKOFF``."""
        policy = cls()
        retries = os.environ.get(RETRIES_ENV, "").strip()
        if retries:
            policy = replace(policy, max_retries=max(0, int(retries)))
        timeout = os.environ.get(TIMEOUT_ENV, "").strip()
        if timeout:
            seconds = float(timeout)
            policy = replace(
                policy, timeout_s=seconds if seconds > 0 else None
            )
        backoff = os.environ.get(BACKOFF_ENV, "").strip()
        if backoff:
            policy = replace(policy, backoff_s=max(0.0, float(backoff)))
        return policy


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: a picklable function plus attribution.

    ``fn`` is called as ``fn(*args, attempt)`` -- the attempt number is
    appended so task bodies can key fault injection on it. ``site`` and
    ``index`` identify the task deterministically across reruns (and
    across retries: the index never changes, only the attempt).
    """

    fn: Callable
    args: Tuple
    site: str
    index: int
    context: Dict[str, object]
    attempt: int = 0

    def describe(self) -> str:
        detail = ", ".join(f"{k}={v}" for k, v in self.context.items())
        return f"{self.site} task {self.index} ({detail})"


class ResilientExecutor:
    """Retrying, pool-recovering, incrementally-yielding task executor.

    One executor spans one ``run_batch``: the capture wave and the
    replay wave share its (lazily created) process pool, mirroring the
    single pool the pre-resilience runner used. Use as a context
    manager so the pool is torn down even when a wave raises.
    """

    def __init__(
        self,
        jobs: int,
        policy: Optional[RetryPolicy] = None,
        counters: Optional[CounterSet] = None,
        initializer: Optional[Callable] = None,
    ) -> None:
        self._jobs = max(1, int(jobs))
        self._policy = policy if policy is not None else RetryPolicy()
        self.counters = (
            counters if counters is not None else CounterSet(RESILIENCE_COUNTERS)
        )
        self._initializer = initializer
        self._pool: Optional[ProcessPoolExecutor] = None
        self._rebuilt = False
        self._serial = self._jobs <= 1

    # ------------------------------------------------------------------
    # Pool lifecycle.
    # ------------------------------------------------------------------

    def __enter__(self) -> "ResilientExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._shutdown_pool()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._jobs, initializer=self._initializer
            )
        return self._pool

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _recover_pool(self) -> None:
        """After a break: rebuild once, then downgrade to serial."""
        self._shutdown_pool()
        if not self._rebuilt:
            self._rebuilt = True
            self.counters.increment("pool_rebuilds")
            with span("resilience.pool_rebuild", cat="resilience"):
                _LOG.warning(
                    "worker pool broke; rebuilding it once before "
                    "degrading to serial execution"
                )
        else:
            self._serial = True
            self.counters.increment("serial_downgrades")
            with span("resilience.serial_downgrade", cat="resilience"):
                _LOG.warning(
                    "worker pool broke again; downgrading to serial "
                    "in-process execution for the rest of the batch"
                )

    # ------------------------------------------------------------------
    # Retry bookkeeping.
    # ------------------------------------------------------------------

    def _next_attempt(
        self,
        task: TaskSpec,
        reason: object,
        failures: List[TaskExecutionError],
    ) -> Optional[TaskSpec]:
        """Back off and return the retry, or record a permanent failure."""
        if task.attempt >= self._policy.max_retries:
            self.counters.increment("failures")
            failures.append(
                TaskExecutionError(
                    f"{task.describe()} failed permanently after "
                    f"{task.attempt + 1} attempt(s): {reason}",
                    context=task.context,
                )
            )
            return None
        self.counters.increment("retries")
        delay = self._policy.backoff(task.attempt)
        _LOG.warning(
            "retrying %s (attempt %d/%d, backoff %.3fs): %s",
            task.describe(),
            task.attempt + 1,
            self._policy.max_retries,
            delay,
            reason,
        )
        with span(
            "resilience.retry",
            cat="resilience",
            site=task.site,
            index=task.index,
            attempt=task.attempt + 1,
        ):
            if delay > 0:
                time.sleep(delay)
        return replace(task, attempt=task.attempt + 1)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(
        self, tasks: Sequence[TaskSpec]
    ) -> Iterator[Tuple[TaskSpec, object]]:
        """Yield ``(task, result)`` as each task resolves.

        Successful results are yielded immediately (in submission order
        within a round), so the caller can checkpoint them before any
        permanent failure raises. After the final round, the first
        :class:`TaskExecutionError` raises; additional permanent
        failures are logged.
        """
        failures: List[TaskExecutionError] = []
        pending = list(tasks)
        while pending:
            batch, pending = pending, []
            if self._serial:
                for task in batch:
                    yield from self._run_serial(task, failures)
                continue
            pool = self._ensure_pool()
            submitted = []
            for task in batch:
                self.counters.increment("tasks")
                submitted.append(
                    (task, pool.submit(task.fn, *task.args, task.attempt))
                )
            pool_broken = False
            for task, future in submitted:
                try:
                    result = future.result(timeout=self._policy.timeout_s)
                except BrokenProcessPool:
                    pool_broken = True
                    retry = self._next_attempt(
                        task, "worker process died", failures
                    )
                    if retry is not None:
                        pending.append(retry)
                except FutureTimeoutError:
                    self.counters.increment("timeouts")
                    retry = self._next_attempt(
                        task,
                        f"deadline of {self._policy.timeout_s}s exceeded",
                        failures,
                    )
                    if retry is not None:
                        pending.append(retry)
                except Exception as exc:
                    self.counters.increment("task_errors")
                    retry = self._next_attempt(task, exc, failures)
                    if retry is not None:
                        pending.append(retry)
                else:
                    yield task, result
            if pool_broken:
                self._recover_pool()
        if failures:
            for extra in failures[1:]:
                _LOG.error("additional permanent failure: %s", extra)
            raise failures[0]

    def _run_serial(
        self, task: TaskSpec, failures: List[TaskExecutionError]
    ) -> Iterator[Tuple[TaskSpec, object]]:
        """In-process execution (jobs=1, or post-downgrade)."""
        current = task
        while True:
            self.counters.increment("tasks")
            try:
                result = current.fn(*current.args, current.attempt)
            except Exception as exc:
                self.counters.increment("task_errors")
                retry = self._next_attempt(current, exc, failures)
                if retry is None:
                    return
                current = retry
                continue
            yield current, result
            return
