"""Replay phase: stream a captured scenario through any design's MMU.

The counterpart of ``repro.sim.scenario``: given a
:class:`CapturedScenario`, rebuild a fresh TLB/MMU/cache stack for the
requested :class:`CoLTDesign` and replay the translation log through it
-- no kernel, no buddy allocator, no trace generation. The replayed
``SimulationResult`` is bit-identical to a monolithic
``SystemSimulator`` run of the same configuration (asserted by
``repro.analysis.determinism --replay`` and the tier-1 tests), because
every input the MMU observes is reproduced exactly:

* the walk outcome of each access (translation, walk-path addresses,
  8-PTE cache-line window) as the page table held it *at that access*;
* TLB shootdowns, applied before the access index they preceded in the
  capture (trailing events still land before the counter snapshot);
* the LLC pollution schedule, which shares :class:`LLCPollution` with
  the monolithic path.

``ReplayWalker`` mirrors ``repro.walker.page_walker.PageWalker``'s
latency accounting (MMU-cache skip + per-level PTE fetches through the
cache hierarchy) from the captured walk path. Its page table is a shim
that answers ``lookup`` for the access being replayed, which is all the
observe-only ``TLBSanitizer.after_fill`` cross-check needs -- replays
run fine with ``COLT_SANITIZE=1``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.errors import SimulationError
from repro.common.statistics import CounterSet
from repro.common.types import PageAttributes, Translation, WalkResult
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.mmu_cache import MMUCache
from repro.core.mmu import MMU, make_mmu_config
from repro.core.performance import evaluate_performance, perfect_tlb_result
from repro.obs.trace import span
from repro.sim.scenario import (
    _LINE_ATTR_BASE,
    _LINE_PFN_BASE,
    _MASK_COLUMN,
    _PATH_BASE,
    CapturedScenario,
    LLCPollution,
    scenario_config,
)
from repro.sim.system import SimulationConfig, SimulationResult


class _ReplayPageTable:
    """Answers ``lookup`` for the translation most recently replayed.

    The real walker resolves translations from the live page table; in
    a replay the log *is* the page table. The shim is refreshed by
    :meth:`ReplayWalker.walk`, which covers the only architectural
    reader on the replay path (the sanitizer's fill cross-check).
    """

    def __init__(self) -> None:
        self._vpn: Optional[int] = None
        self._translation: Optional[Translation] = None

    def set(self, translation: Translation) -> None:
        self._vpn = translation.vpn
        self._translation = translation

    def lookup(self, vpn: int) -> Optional[Translation]:
        if vpn == self._vpn:
            return self._translation
        return None


class ReplayWalker:
    """Drop-in ``PageWalker`` fed from a captured translation log.

    The caller advances :attr:`cursor` to the access index being
    replayed; a walk decodes that access's record and reproduces the
    live walker's latency accounting against this replay's own cache
    hierarchy and MMU cache (whose state evolves with this design's
    miss pattern, exactly as in the monolithic run).
    """

    def __init__(
        self,
        scenario: CapturedScenario,
        caches: CacheHierarchy,
        mmu_cache: Optional[MMUCache] = None,
    ) -> None:
        self._scenario = scenario
        self._caches = caches
        self._mmu_cache = mmu_cache
        self._page_table = _ReplayPageTable()
        self.cursor = 0
        self.counters = CounterSet(
            ["walks", "levels_fetched", "total_latency", "superpage_walks"]
        )

    @property
    def page_table(self) -> _ReplayPageTable:
        return self._page_table

    @property
    def mmu_cache(self) -> Optional[MMUCache]:
        return self._mmu_cache

    def walk(self, vpn: int) -> WalkResult:
        scenario = self._scenario
        index = self.cursor
        expected = int(scenario.vpns[index])
        if vpn != expected:
            raise SimulationError(
                f"replay desync at access {index}: walk of vpn {vpn}, "
                f"captured vpn {expected}"
            )
        row = scenario.records[int(scenario.record_index[index])]
        translation = Translation(
            vpn=vpn,
            pfn=int(row[0]),
            attributes=PageAttributes(int(row[1])),
            is_superpage=bool(row[2]),
        )
        self._page_table.set(translation)
        self.counters.increment("walks")

        levels = int(row[3])
        start_level = 0
        latency = 0
        if self._mmu_cache is not None:
            latency += self._mmu_cache.config.latency
            deepest = self._mmu_cache.deepest_cached_level(vpn)
            if deepest is not None:
                start_level = min(deepest + 1, levels - 1)
        fetched = 0
        for level in range(start_level, levels):
            latency += self._caches.access_pte(int(row[_PATH_BASE + level]))
            fetched += 1
        if self._mmu_cache is not None:
            self._mmu_cache.fill_walk(vpn, levels_visited=levels)

        if translation.is_superpage:
            self.counters.increment("superpage_walks")
            line = ()
        else:
            mask = int(row[_MASK_COLUMN])
            base = vpn & ~0x7
            line = tuple(
                Translation(
                    vpn=base + offset,
                    pfn=int(row[_LINE_PFN_BASE + offset]),
                    attributes=PageAttributes(
                        int(row[_LINE_ATTR_BASE + offset])
                    ),
                )
                for offset in range(8)
                if mask >> offset & 1
            )
        self.counters.increment("levels_fetched", fetched)
        self.counters.increment("total_latency", latency)
        return WalkResult(
            translation=translation,
            cache_line_translations=line,
            latency=latency,
            memory_accesses=fetched,
        )


def replay_scenario(
    scenario: CapturedScenario, config: SimulationConfig
) -> SimulationResult:
    """Replay a captured scenario under ``config``'s TLB design.

    ``config`` must describe the same scenario the capture ran (same
    benchmark, kernel config, seed, ...); only its ``design`` / ``mmu``
    / ``sanitize`` fields are free to differ.
    """
    if scenario_config(config) != scenario.config:
        raise SimulationError(
            f"config {config} does not match captured scenario "
            f"{scenario.config}"
        )
    mmu_config = config.mmu or make_mmu_config(config.design)
    caches = CacheHierarchy(HierarchyConfig())
    walker = ReplayWalker(scenario, caches, MMUCache())
    mmu = MMU(mmu_config, walker, sanitize=config.sanitize)
    pollution = LLCPollution(caches.llc, config.llc_pollution_per_access)

    vpns = scenario.vpns
    before = scenario.inval_before
    starts = scenario.inval_start
    counts = scenario.inval_count
    pending = 0
    total_events = int(before.size)
    access = mmu.access
    invalidate_range = mmu.invalidate_range

    with span(
        "replay",
        design=config.design.value,
        benchmark=config.benchmark,
        accesses=int(vpns.size),
    ):
        for index in range(vpns.size):
            while pending < total_events and int(before[pending]) <= index:
                invalidate_range(int(starts[pending]), int(counts[pending]))
                pending += 1
            walker.cursor = index
            access(int(vpns[index]))
            pollution.after_access()
        # Shootdowns that trailed the final access still reach the MMU
        # before its counters are snapshotted.
        while pending < total_events:
            invalidate_range(int(starts[pending]), int(counts[pending]))
            pending += 1

        if mmu.sanitizer is not None:
            mmu.sanitizer.full_scan()

    distinct_lines = int(np.unique(vpns >> 3).size)
    discount = float(distinct_lines * caches.config.dram_latency)
    performance = evaluate_performance(
        mmu,
        int(vpns.size),
        scenario.profile.core,
        compulsory_discount_cycles=discount,
    )
    return SimulationResult(
        config=config,
        profile=scenario.profile,
        accesses=int(vpns.size),
        l1_misses=mmu.l1_misses,
        l2_misses=mmu.l2_misses,
        mmu_counters=mmu.counters.snapshot(),
        kernel_counters=scenario.kernel_counters,
        performance=performance,
        perfect_performance=perfect_tlb_result(
            int(vpns.size), scenario.profile.core
        ),
        contiguity=scenario.contiguity,
        trace_unique_pages=scenario.trace_unique_pages,
    )
