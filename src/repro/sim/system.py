"""Full-system simulation: OS substrate + workload + MMU, end to end.

``SystemSimulator`` reproduces the paper's methodology (Section 5.2) in
one object:

1. boot a kernel with the chosen THS/defrag configuration, age it like a
   long-running machine, optionally start memhog (Section 5.1.1's system
   configurations);
2. create the benchmark process, execute its memory plan (up-front
   mallocs populate eagerly; other regions fault on demand), and
   generate its access trace from the profile's phase mixture;
3. stream the trace through the MMU of the configured CoLT design, with
   OS activity (demand faults, background churn, compaction ticks, THP
   splits, reclaim) interleaved and TLB shootdowns propagated.

Because the OS evolution is deterministic in the seed and independent of
the TLB design, running the same configuration with different designs
yields identical page tables and traces -- the comparisons of Figures
18-21 are therefore apples-to-apples, exactly like the paper's replayed
traces.

The OS side lives in :class:`repro.sim.scenario.ScenarioEngine`, which
this monolithic simulator shares with the capture+replay pipeline
(``repro.sim.scenario`` / ``repro.sim.replay``); ``SystemSimulator``
attaches a live MMU to the engine's access stream, the capture path
attaches a recorder. :func:`simulate` remains the one-call monolithic
entry point; batch work should go through
:class:`repro.sim.runner.ExperimentRunner`, which captures each
scenario once and replays it per design, in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.common.errors import ConfigurationError, WorkloadError
from repro.common.statistics import CounterSnapshot
from repro.contiguity.scanner import ContiguityReport
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.mmu_cache import MMUCache
from repro.core.mmu import MMU, CoLTDesign, MMUConfig, make_mmu_config
from repro.core.performance import (
    PerformanceResult,
    evaluate_performance,
    perfect_tlb_result,
)
from repro.obs.trace import span
from repro.osmem.kernel import Kernel, KernelConfig
from repro.osmem.memhog import AgingProfile
from repro.osmem.process import Process
from repro.sim.scenario import LLCPollution, ScenarioEngine
from repro.walker.page_walker import PageWalker
from repro.workloads.benchmarks import BenchmarkProfile, get_benchmark
from repro.workloads.trace import Trace, scaled_region_pages


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one simulated run depends on.

    Attributes:
        benchmark: profile name (see ``repro.workloads.BENCHMARKS``).
        design: TLB organisation to simulate.
        kernel: kernel configuration (THS / defrag / memory size / seed).
        memhog_fraction: 0 disables memhog; 0.25 / 0.50 reproduce the
            paper's load studies (Sections 6.4-6.5).
        accesses: length of the access trace.
        scale: footprint scale factor applied to region sizes.
        seed: root seed for workload and churn randomness.
        mmu: explicit MMU configuration; None derives the paper-standard
            one for ``design`` via :func:`make_mmu_config`.
        aging: aging profile; None skips aging (pristine machine).
        tick_every: accesses between kernel background ticks (0
            disables; the first tick fires after ``tick_every``
            accesses, not before the first reference).
        churn_every: accesses between background-process allocations
            during the run (0 disables). Live-system churn competes with
            the benchmark for buddy blocks, which is what keeps demand
            -faulted contiguity at realistic levels.
        churn_pages: size of each churn allocation.
        churn_live_limit: live churn allocations before the oldest is
            freed.
        llc_pollution_per_access: expected LLC lines evicted per access
            by the benchmark's data traffic (a proxy for routing every
            load/store through the cache model).
        sanitize: attach the runtime sanitizers of
            ``repro.analysis.sanitizers`` to the TLBs, buddy allocator
            and page tables. ``None`` (the default) defers to the
            ``COLT_SANITIZE`` environment variable; simulated behaviour
            is identical either way, sanitizers only observe.
    """

    benchmark: str = "mcf"
    design: CoLTDesign = CoLTDesign.BASELINE
    kernel: KernelConfig = field(default_factory=KernelConfig)
    memhog_fraction: float = 0.0
    accesses: int = 200_000
    scale: float = 1.0
    seed: int = 42
    mmu: Optional[MMUConfig] = None
    aging: Optional[AgingProfile] = field(default_factory=AgingProfile)
    tick_every: int = 2_000
    churn_every: int = 48
    churn_pages: int = 24
    churn_live_limit: int = 32
    llc_pollution_per_access: float = 0.01
    sanitize: Optional[bool] = None

    def __post_init__(self) -> None:
        """Reject impossible runs at construction, not hours in.

        Campaign resubmission makes late failures expensive: a config
        that cannot ever simulate should fail here with a message that
        says what to change, not after its capture wave is scheduled.
        """
        if self.accesses < 1:
            raise ConfigurationError(
                f"accesses must be >= 1, got {self.accesses} -- an "
                "empty trace has nothing to measure"
            )
        if not 0.0 <= self.memhog_fraction < 1.0:
            raise ConfigurationError(
                f"memhog_fraction must be in [0, 1), got "
                f"{self.memhog_fraction}"
            )
        if self.scale <= 0:
            raise ConfigurationError(
                f"scale must be positive, got {self.scale}"
            )
        for knob in (
            "tick_every", "churn_every", "churn_pages", "churn_live_limit"
        ):
            value = getattr(self, knob)
            if value < 0:
                raise ConfigurationError(
                    f"{knob} must be >= 0 (0 disables it), got {value}"
                )
        if self.churn_every > 0 and self.churn_pages < 1:
            raise ConfigurationError(
                "churn is enabled (churn_every="
                f"{self.churn_every}) but churn_pages is "
                f"{self.churn_pages}; each churn allocation needs >= 1 "
                "page, or set churn_every=0 to disable churn"
            )
        if self.llc_pollution_per_access < 0:
            raise ConfigurationError(
                "llc_pollution_per_access must be >= 0, got "
                f"{self.llc_pollution_per_access}"
            )
        try:
            profile = get_benchmark(self.benchmark)
        except WorkloadError as exc:
            raise ConfigurationError(str(exc)) from None
        footprint = sum(
            scaled_region_pages(profile, self.scale).values()
        )
        if footprint > self.kernel.num_frames:
            raise ConfigurationError(
                f"benchmark {self.benchmark!r} at scale {self.scale} "
                f"maps {footprint} pages but physical memory is only "
                f"{self.kernel.num_frames} frames; lower scale or "
                "raise kernel.num_frames"
            )

    def with_updates(self, **kwargs) -> "SimulationConfig":
        return replace(self, **kwargs)


@dataclass
class SimulationResult:
    """Outputs of one run."""

    config: SimulationConfig
    profile: BenchmarkProfile
    accesses: int
    l1_misses: int
    l2_misses: int
    mmu_counters: CounterSnapshot
    kernel_counters: CounterSnapshot
    performance: PerformanceResult
    perfect_performance: PerformanceResult
    contiguity: ContiguityReport
    trace_unique_pages: int

    @property
    def l1_mpmi(self) -> float:
        return self.l1_misses * 1e6 / self.performance.instructions

    @property
    def l2_mpmi(self) -> float:
        return self.l2_misses * 1e6 / self.performance.instructions

    @property
    def average_contiguity(self) -> float:
        return self.contiguity.average_contiguity

    def summary(self) -> str:
        cfg = self.config
        return (
            f"{self.profile.name} [{cfg.design.value}] "
            f"THS={'on' if cfg.kernel.ths_enabled else 'off'} "
            f"defrag={'on' if cfg.kernel.defrag_enabled else 'off'} "
            f"memhog={cfg.memhog_fraction:.0%}: "
            f"L1 MPMI {self.l1_mpmi:.0f}, L2 MPMI {self.l2_mpmi:.0f}, "
            f"avg contiguity {self.average_contiguity:.1f}, "
            f"CPI {self.performance.cpi:.3f}"
        )


class SystemSimulator:
    """Boots, loads, and runs one configuration end to end (monolithic).

    The OS substrate is a :class:`ScenarioEngine`; this class adds the
    live MMU and the LLC-pollution model to the engine's access stream.
    ``kernel`` / ``process`` / ``trace`` are views onto the engine.
    """

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self._engine = ScenarioEngine(config)
        self.profile = self._engine.profile
        self.mmu: Optional[MMU] = None
        self._caches: Optional[CacheHierarchy] = None

    @property
    def kernel(self) -> Optional[Kernel]:
        return self._engine.kernel

    @property
    def process(self) -> Optional[Process]:
        return self._engine.process

    @property
    def trace(self) -> Optional[Trace]:
        return self._engine.trace

    def prepare(self) -> None:
        """Boot the kernel, age it, start memhog, lay out the benchmark."""
        self._engine.prepare()
        self.mmu = self._build_mmu()

    def _build_mmu(self) -> MMU:
        config = self.config
        mmu_config = config.mmu or make_mmu_config(config.design)
        caches = CacheHierarchy(HierarchyConfig())
        walker = PageWalker(self.process.page_table, caches, MMUCache())
        mmu = MMU(mmu_config, walker, sanitize=config.sanitize)

        bench_pid = self.process.pid

        def on_invalidation(pid: int, start_vpn: int, count: int) -> None:
            if pid == bench_pid:
                mmu.invalidate_range(start_vpn, count)

        self.kernel.add_invalidation_listener(on_invalidation)
        self._caches = caches
        return mmu

    def run(self) -> SimulationResult:
        """Execute the access stream; returns the collected results."""
        if self.kernel is None:
            self.prepare()
        mmu = self.mmu
        access = mmu.access
        pollution = LLCPollution(
            self._caches.llc, self.config.llc_pollution_per_access
        )
        after_access = pollution.after_access

        def on_access(index: int, vpn: int) -> None:
            access(vpn)
            after_access()

        with span(
            "simulate",
            design=self.config.design.value,
            benchmark=self.config.benchmark,
            accesses=self.config.accesses,
        ):
            self._engine.run_loop(on_access)

            # A parting full sweep: if anything drifted during the run,
            # fail here rather than hand back silently-corrupt statistics.
            self.sanity_check()

        # Discount the DRAM cost of compulsory PTE-line fetches: every
        # design pays them once per distinct line, and at the paper's
        # trace lengths they are negligible (see repro.core.performance).
        trace = self.trace
        distinct_lines = int(np.unique(trace.vpns >> 3).size)
        discount = float(
            distinct_lines * self._caches.config.dram_latency
        )
        performance = evaluate_performance(
            mmu,
            len(trace.vpns),
            self.profile.core,
            compulsory_discount_cycles=discount,
        )
        return SimulationResult(
            config=self.config,
            profile=self.profile,
            accesses=len(trace.vpns),
            l1_misses=mmu.l1_misses,
            l2_misses=mmu.l2_misses,
            mmu_counters=mmu.counters.snapshot(),
            kernel_counters=self.kernel.counters.snapshot(),
            performance=performance,
            perfect_performance=perfect_tlb_result(
                len(trace.vpns), self.profile.core
            ),
            contiguity=ContiguityReport.from_process(self.process),
            trace_unique_pages=trace.unique_pages,
        )

    def sanity_check(self) -> None:
        """Force a full scan of every attached sanitizer (no-op if off).

        Raises :class:`repro.common.errors.SanitizerError` on the first
        violated invariant.
        """
        if self.mmu is not None and self.mmu.sanitizer is not None:
            self.mmu.sanitizer.full_scan()
        self._engine.sanity_check()


def simulate(config: SimulationConfig) -> SimulationResult:
    """One-call convenience wrapper: prepare + run (monolithic path)."""
    simulator = SystemSimulator(config)
    simulator.prepare()
    return simulator.run()
