"""Comparison metrics across designs: the numbers the figures plot."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.statistics import percent_eliminated
from repro.core.mmu import CoLTDesign
from repro.sim.system import SimulationResult


@dataclass(frozen=True)
class EliminationRow:
    """Per-benchmark miss-elimination percentages (Figures 18-20)."""

    benchmark: str
    design: str
    l1_eliminated_pct: float
    l2_eliminated_pct: float


@dataclass(frozen=True)
class PerformanceRow:
    """Per-benchmark runtime improvement over baseline (Figure 21)."""

    benchmark: str
    design: str
    improvement_pct: float


def elimination_row(
    baseline: SimulationResult, variant: SimulationResult
) -> EliminationRow:
    """Fraction of the baseline's TLB misses a variant eliminates."""
    return EliminationRow(
        benchmark=baseline.profile.name,
        design=variant.config.design.value,
        l1_eliminated_pct=percent_eliminated(
            baseline.l1_misses, variant.l1_misses
        ),
        l2_eliminated_pct=percent_eliminated(
            baseline.l2_misses, variant.l2_misses
        ),
    )


def performance_row(
    baseline: SimulationResult, variant: SimulationResult
) -> PerformanceRow:
    """Runtime improvement of a variant over the baseline design."""
    if variant.config.design is CoLTDesign.PERFECT:
        improvement = variant.perfect_performance.improvement_over(
            baseline.performance
        )
    else:
        improvement = variant.performance.improvement_over(
            baseline.performance
        )
    return PerformanceRow(
        benchmark=baseline.profile.name,
        design=variant.config.design.value,
        improvement_pct=improvement,
    )
