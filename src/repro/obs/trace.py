"""Structured event tracer: ring-buffered spans and instants.

The tracer records *when* the simulator spends its wall-clock time --
kernel boot, aging, each capture, each replay, store get/put,
compaction passes -- plus sampled per-access TLB events (miss, fill
with run length, shootdown). Events live in a bounded ring buffer
(oldest dropped first) and export to Chrome/Perfetto trace-event JSON
via ``repro.obs.export``, so a run can be opened directly in
``ui.perfetto.dev`` or ``chrome://tracing``.

Gating follows the ``COLT_SANITIZE`` pattern: tracing is off unless the
``COLT_TRACE`` environment variable is truthy (the ``--trace`` CLI flag
sets it, and ``ProcessPoolExecutor`` workers inherit it). When off,
:func:`current_tracer` returns ``None`` and every hook site reduces to
one ``is not None`` check -- the simulation hot paths carry no other
cost. Tracing only *observes*: a traced run produces bit-identical
``SimulationResult``s to an untraced one (enforced by
``tests/test_obs.py`` and the CI traced-determinism smoke).

Wall-clock reads live in this module only, on the determinism lint's
allow-list: trace timestamps describe the run, they never feed
simulation results.

Environment knobs:

* ``COLT_TRACE`` -- enable tracing (``1/true/yes/on``).
* ``COLT_TRACE_BUFFER`` -- ring capacity in events (default 262144).
* ``COLT_TRACE_SAMPLE`` -- keep every Nth per-access TLB event
  (default 64; spans are never sampled).
"""

from __future__ import annotations

import os
import time
from collections import deque
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: Environment variable that switches the tracer on.
TRACE_ENV = "COLT_TRACE"

#: Environment variable sizing the event ring buffer.
TRACE_BUFFER_ENV = "COLT_TRACE_BUFFER"

#: Environment variable setting the per-access event sampling period.
TRACE_SAMPLE_ENV = "COLT_TRACE_SAMPLE"

#: Environment variable that enables metrics collection without tracing
#: (the ``--profile`` / ``--report`` CLI flags set it).
PROFILE_ENV = "COLT_PROFILE"

_DEFAULT_BUFFER = 262_144
_DEFAULT_SAMPLE = 64

_FALSEY = frozenset(("", "0", "false", "no", "off"))


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in _FALSEY


def tracing_requested() -> bool:
    """True when ``COLT_TRACE`` asks for traced execution."""
    return _env_truthy(TRACE_ENV)


def profiling_requested() -> bool:
    """True when ``COLT_PROFILE`` asks for metrics collection."""
    return _env_truthy(PROFILE_ENV)


def obs_active() -> bool:
    """True when any observability sink (tracer or metrics) is live."""
    return current_tracer() is not None or profiling_requested()


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


@dataclass
class TraceEvent:
    """One trace-event record (Chrome trace-event "X", "i" or "C").

    ``ts_us``/``dur_us`` are microseconds on the monotonic clock
    (``CLOCK_MONOTONIC`` -- comparable across the processes of one
    machine, which is what lets worker events interleave with the
    parent's on a shared timeline).
    """

    name: str
    cat: str
    ph: str
    ts_us: float
    pid: int
    tid: int
    dur_us: Optional[float] = None
    args: Dict[str, object] = field(default_factory=dict)


class Tracer:
    """Bounded ring buffer of :class:`TraceEvent` records."""

    def __init__(
        self,
        capacity: Optional[int] = None,
        sample_every: Optional[int] = None,
    ) -> None:
        if capacity is None:
            capacity = _env_int(TRACE_BUFFER_ENV, _DEFAULT_BUFFER)
        if sample_every is None:
            sample_every = _env_int(TRACE_SAMPLE_ENV, _DEFAULT_SAMPLE)
        self.capacity = max(1, capacity)
        #: Per-access TLB events keep 1 in ``sample_every``.
        self.sample_every = max(1, sample_every)
        self._events: deque = deque(maxlen=self.capacity)
        #: Events pushed out of the ring by newer ones.
        self.dropped = 0
        self._pid = os.getpid()

    # -- recording ------------------------------------------------------

    def _append(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    @contextmanager
    def span(self, name: str, cat: str = "phase", **args) -> Iterator[dict]:
        """Record a complete ("X") event around the ``with`` body.

        Yields the event's mutable ``args`` dict so the body can attach
        outcomes (``span_args["migrated"] = n``) before the span closes.
        """
        arg_dict: Dict[str, object] = dict(args)
        start = time.perf_counter_ns()
        try:
            yield arg_dict
        finally:
            end = time.perf_counter_ns()
            self._append(
                TraceEvent(
                    name=name,
                    cat=cat,
                    ph="X",
                    ts_us=start / 1000.0,
                    dur_us=(end - start) / 1000.0,
                    pid=self._pid,
                    tid=0,
                    args=arg_dict,
                )
            )

    def instant(self, name: str, cat: str = "event", **args) -> None:
        """Record an instant ("i") event."""
        self._append(
            TraceEvent(
                name=name,
                cat=cat,
                ph="i",
                ts_us=time.perf_counter_ns() / 1000.0,
                pid=self._pid,
                tid=0,
                args=dict(args),
            )
        )

    def counter(self, name: str, cat: str = "counter", **series) -> None:
        """Record a counter ("C") sample -- a timeline in Perfetto."""
        self._append(
            TraceEvent(
                name=name,
                cat=cat,
                ph="C",
                ts_us=time.perf_counter_ns() / 1000.0,
                pid=self._pid,
                tid=0,
                args=dict(series),
            )
        )

    # -- reading --------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def drain(self) -> List[TraceEvent]:
        """Return and clear the buffered events (worker hand-off)."""
        events = list(self._events)
        self._events.clear()
        return events

    def __len__(self) -> int:
        return len(self._events)


# ---------------------------------------------------------------------------
# Process-local tracer, resolved lazily from the environment.
# ---------------------------------------------------------------------------

_TRACER: Optional[Tracer] = None
_RESOLVED = False


def current_tracer() -> Optional[Tracer]:
    """The process tracer, or ``None`` when tracing is off.

    Resolved from ``COLT_TRACE`` on first call; hook sites grab the
    reference once at construction and pay a single ``is not None``
    check afterwards.
    """
    global _TRACER, _RESOLVED
    if not _RESOLVED:
        _RESOLVED = True
        if tracing_requested():
            _TRACER = Tracer()
    return _TRACER


def enable_tracing(
    capacity: Optional[int] = None, sample_every: Optional[int] = None
) -> Tracer:
    """Explicitly switch tracing on for this process."""
    global _TRACER, _RESOLVED
    _RESOLVED = True
    if _TRACER is None:
        _TRACER = Tracer(capacity=capacity, sample_every=sample_every)
    return _TRACER


def disable_tracing() -> None:
    """Switch tracing off (buffered events are discarded)."""
    global _TRACER, _RESOLVED
    _TRACER = None
    _RESOLVED = True


def reset_tracing() -> None:
    """Forget the resolved state; the next call re-reads ``COLT_TRACE``.

    Used by tests and by pool-worker initialisers: a forked worker
    inherits the parent's tracer *including its buffered events*, which
    would otherwise be reported twice once the worker drains.
    """
    global _TRACER, _RESOLVED
    _TRACER = None
    _RESOLVED = False


def span(name: str, cat: str = "phase", **args):
    """Module-level convenience span: a no-op context when tracing is off.

    For coarse, per-phase call sites (boot, capture, replay). Hot loops
    should hold the tracer reference themselves.
    """
    tracer = current_tracer()
    if tracer is None:
        return nullcontext({})
    return tracer.span(name, cat=cat, **args)
