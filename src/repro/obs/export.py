"""Exporters: Chrome/Perfetto trace-event JSON and metrics snapshots.

Three serialisations, all plain-stdlib:

* **Chrome trace-event JSON** (:func:`chrome_trace_dict` /
  :func:`write_chrome_trace` / :func:`parse_chrome_trace`): the JSON
  object format (``{"traceEvents": [...]}``) that both
  ``chrome://tracing`` and Perfetto's trace processor ingest. Complete
  spans are ``ph="X"``, instants ``ph="i"``, counter timelines
  ``ph="C"``. The parser is the exporter's inverse -- the round trip is
  asserted by ``tests/test_obs.py`` and the CI trace-validation step.
* **Metrics JSON** (:func:`write_metrics_json` /
  :func:`read_metrics_json`): a :class:`MetricsSnapshot` with a schema
  tag, for ``tools/obs_report.py`` and CI artifacts.
* **Metrics CSV** (:func:`metrics_csv`): one row per series, for
  spreadsheet triage.

:func:`validate_chrome_trace` performs the structural checks the CI
traced-run job relies on (every event carries the required keys with
the right types) and returns human-readable problems instead of
raising, so the CLI can print them all at once.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.common.atomicio import atomic_write_json
from repro.obs.registry import MetricsSnapshot
from repro.obs.trace import TraceEvent

#: ``ph`` values this exporter emits (and the validator accepts).
_KNOWN_PHASES = frozenset(("X", "i", "C", "M"))


def chrome_trace_dict(
    events: List[TraceEvent], metadata: Optional[Dict[str, object]] = None
) -> dict:
    """Events as a Chrome trace-event JSON object (Perfetto-loadable)."""
    trace_events: List[dict] = []
    names: Dict[int, str] = {}
    for event in events:
        record: Dict[str, object] = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            "ts": event.ts_us,
            "pid": event.pid,
            "tid": event.tid,
            "args": dict(event.args),
        }
        if event.ph == "X":
            record["dur"] = 0.0 if event.dur_us is None else event.dur_us
        if event.ph == "i":
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)
        names.setdefault(event.pid, "")
    # Name each process track so worker fan-out reads at a glance.
    for pid in sorted(names):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"colt pid {pid}"},
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def write_chrome_trace(
    path: Union[str, Path],
    events: List[TraceEvent],
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Write the Chrome trace JSON; returns the path written.

    Atomic: a crash (or SIGKILL) mid-export leaves the previous trace
    artifact intact rather than a truncated, unparseable one.
    """
    path = Path(path)
    atomic_write_json(path, chrome_trace_dict(events, metadata))
    return path


def parse_chrome_trace(source: Union[str, Path, dict]) -> List[TraceEvent]:
    """Inverse of :func:`chrome_trace_dict` (metadata events skipped).

    Accepts a path, a JSON string, or an already-parsed dict.
    """
    if isinstance(source, dict):
        data = source
    else:
        text: str
        if isinstance(source, Path) or (
            isinstance(source, str) and "\n" not in source
            and source.strip().endswith(".json")
        ):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = str(source)
        data = json.loads(text)
    events: List[TraceEvent] = []
    for record in data.get("traceEvents", ()):
        if record.get("ph") == "M":
            continue
        events.append(
            TraceEvent(
                name=record["name"],
                cat=record.get("cat", ""),
                ph=record["ph"],
                ts_us=float(record["ts"]),
                dur_us=(
                    float(record["dur"]) if "dur" in record else None
                ),
                pid=int(record["pid"]),
                tid=int(record.get("tid", 0)),
                args=dict(record.get("args", {})),
            )
        )
    return events


def validate_chrome_trace(data: dict) -> List[str]:
    """Structural problems with a trace JSON object ([] when valid)."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["top level is not a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        problems.append("'traceEvents' is empty")
    for index, record in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(record, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = record.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        if "name" not in record or "pid" not in record:
            problems.append(f"{where}: missing name/pid")
        if ph != "M" and not isinstance(record.get("ts"), (int, float)):
            problems.append(f"{where}: missing numeric ts")
        if ph == "X" and not isinstance(record.get("dur"), (int, float)):
            problems.append(f"{where}: complete event missing numeric dur")
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break
    return problems


def span_names(events: List[TraceEvent]) -> Dict[str, int]:
    """Complete-span name -> occurrence count (validation helper)."""
    counts: Dict[str, int] = {}
    for event in events:
        if event.ph == "X":
            counts[event.name] = counts.get(event.name, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# Metrics snapshots.
# ---------------------------------------------------------------------------


def write_metrics_json(
    path: Union[str, Path], snapshot: MetricsSnapshot
) -> Path:
    path = Path(path)
    atomic_write_json(
        path, snapshot.to_json_dict(), indent=2, sort_keys=True
    )
    return path


def read_metrics_json(path: Union[str, Path]) -> MetricsSnapshot:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return MetricsSnapshot.from_json_dict(data)


def metrics_csv(snapshot: MetricsSnapshot) -> str:
    """One CSV row per series: name,kind,unit,labels,value,count,sum."""
    out = io.StringIO()
    out.write("name,kind,unit,labels,value,count,sum\n")
    for name in sorted(snapshot.instruments):
        entry = snapshot.instruments[name]
        for sample in entry["series"]:
            labels = ";".join(
                f"{k}={v}" for k, v in sorted(sample["labels"].items())
            )
            if "value" in sample:
                value, count, total = sample["value"], "", ""
            else:
                value = ""
                count, total = sample["count"], sample["sum"]
            out.write(
                f"{name},{entry['kind']},{entry.get('unit', '')},"
                f"\"{labels}\",{value},{count},{total}\n"
            )
    return out.getvalue()
