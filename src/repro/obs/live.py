"""Live, process-local progress state for the telemetry plane.

A :class:`ProgressTracker` is a tiny thread-safe blackboard: producers
(the campaign loop, the experiment runner, the watchdog monitor
thread) publish small facts a few times per experiment -- never per
simulated access -- and the telemetry server thread
(:mod:`repro.obs.serve`) reads a consistent copy to answer
``/progress``. Publishing is unconditional and costs one dict update
under an uncontended lock, so the tracker is always on; the HTTP
server is the opt-in part (``COLT_TELEMETRY_PORT`` /
``--telemetry-port``).

The tracker never feeds back into simulation: it is written by the
simulator and only ever *read* by the server, which keeps telemetry on
the same bit-identity footing as the rest of ``repro.obs``.
"""

from __future__ import annotations

import copy
import threading
from typing import Dict, Optional


class ProgressTracker:
    """Thread-safe key/value progress state with nested sections.

    Top-level fields describe the run (``phase``, ``figure``,
    ``engine``); named sections group related facts (``campaign`` for
    manifest counts, ``watchdog`` for degradation/RSS). Readers get
    deep copies, so a snapshot can be serialised while producers keep
    writing.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._state: Dict[str, object] = {"phase": "idle"}

    def update(self, **fields) -> None:
        """Merge ``fields`` into the top-level state."""
        with self._lock:
            self._state.update(fields)

    def update_section(self, section: str, **fields) -> None:
        """Merge ``fields`` into the nested dict ``state[section]``."""
        with self._lock:
            current = self._state.get(section)
            merged = dict(current) if isinstance(current, dict) else {}
            merged.update(fields)
            self._state[section] = merged

    def clear_section(self, section: str) -> None:
        with self._lock:
            self._state.pop(section, None)

    def snapshot(self) -> Dict[str, object]:
        """A deep copy of the current state (safe to serialise)."""
        with self._lock:
            return copy.deepcopy(self._state)


# ---------------------------------------------------------------------------
# Process-local default tracker.
# ---------------------------------------------------------------------------

_PROGRESS: Optional[ProgressTracker] = None
_PROGRESS_LOCK = threading.Lock()


def get_progress() -> ProgressTracker:
    """The process-local default tracker (created on first use)."""
    global _PROGRESS
    with _PROGRESS_LOCK:
        if _PROGRESS is None:
            _PROGRESS = ProgressTracker()
        return _PROGRESS


def reset_progress() -> None:
    """Drop the default tracker (tests, worker-process resets)."""
    global _PROGRESS
    with _PROGRESS_LOCK:
        _PROGRESS = None
