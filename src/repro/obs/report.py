"""Human run reports: phases, workers, store, coalescing, fragmentation.

:class:`RunReport` condenses one invocation's trace events and metrics
snapshot into the handful of numbers a perf PR needs before it starts:
where the wall-clock went (per-phase span totals), whether the
``ProcessPoolExecutor`` workers were actually busy (per-pid
utilisation), whether the result store earned its keep (hit ratio),
what the coalescing logic produced per design (run-length histograms),
and how fragmented the buddy allocator ran (free-page timeline from the
kernel-tick counter track).

Build one from live objects (``RunReport.build(events, snapshot)``)
after a ``--report`` run, or offline from artifacts with
``tools/obs_report.py trace.json --metrics metrics.json``. Rendering is
plain text; the trace JSON remains the lossless artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import MetricsSnapshot
from repro.obs.trace import TraceEvent

#: Span categories that count as "work" for worker utilisation.
_WORK_CATEGORIES = frozenset(("phase", "experiment"))


def _merged_extent_ms(intervals: List[Tuple[float, float]]) -> float:
    """Total µs covered by a union of (start, end) intervals, in ms."""
    covered = 0.0
    cursor = float("-inf")
    for begin, finish in sorted(intervals):
        if finish <= cursor:
            continue
        covered += finish - max(begin, cursor)
        cursor = finish
    return covered / 1000.0


@dataclass
class PhaseLine:
    """Aggregate of every complete span sharing one name."""

    name: str
    count: int
    total_ms: float

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0


@dataclass
class WorkerLine:
    """Busy time of one process on the shared monotonic timeline."""

    pid: int
    spans: int
    busy_ms: float
    utilisation: float  # busy / whole-run wall interval


@dataclass
class RunReport:
    """Everything the renderer needs, already aggregated."""

    phases: List[PhaseLine] = field(default_factory=list)
    workers: List[WorkerLine] = field(default_factory=list)
    wall_ms: float = 0.0
    store: Dict[str, float] = field(default_factory=dict)
    resilience: Dict[str, float] = field(default_factory=dict)
    campaign: Dict[str, float] = field(default_factory=dict)
    watchdog: Dict[str, float] = field(default_factory=dict)
    coalescing: Dict[str, dict] = field(default_factory=dict)
    buddy_timeline: Dict[str, float] = field(default_factory=dict)
    instrument_count: int = 0
    event_count: int = 0
    dropped_events: int = 0

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        events: List[TraceEvent],
        snapshot: Optional[MetricsSnapshot] = None,
        dropped_events: int = 0,
    ) -> "RunReport":
        report = cls(
            event_count=len(events), dropped_events=dropped_events
        )
        report._aggregate_spans(events)
        report._aggregate_buddy(events)
        if snapshot is not None:
            report.instrument_count = len(snapshot)
            report._aggregate_store(snapshot)
            report._aggregate_resilience(snapshot)
            report._aggregate_campaign(snapshot)
            report._aggregate_watchdog(snapshot)
            report._aggregate_coalescing(snapshot)
        return report

    def _aggregate_spans(self, events: List[TraceEvent]) -> None:
        phases: Dict[str, Tuple[int, float]] = {}
        # Work spans nest (experiment > run_batch > replay), so per-pid
        # busy time must merge intervals rather than sum durations --
        # summing would report several-hundred-percent utilisation for
        # a serial run.
        intervals: Dict[int, List[Tuple[float, float]]] = {}
        span_counts: Dict[int, int] = {}
        start: Optional[float] = None
        end: Optional[float] = None
        for event in events:
            if start is None or event.ts_us < start:
                start = event.ts_us
            finish = event.ts_us + (event.dur_us or 0.0)
            if end is None or finish > end:
                end = finish
            if event.ph != "X":
                continue
            dur_ms = (event.dur_us or 0.0) / 1000.0
            count, total = phases.get(event.name, (0, 0.0))
            phases[event.name] = (count + 1, total + dur_ms)
            if event.cat in _WORK_CATEGORIES:
                intervals.setdefault(event.pid, []).append(
                    (event.ts_us, finish)
                )
                span_counts[event.pid] = span_counts.get(event.pid, 0) + 1
        self.wall_ms = ((end - start) / 1000.0) if start is not None else 0.0
        self.phases = [
            PhaseLine(name, count, total)
            for name, (count, total) in sorted(
                phases.items(), key=lambda item: -item[1][1]
            )
        ]
        self.workers = [
            WorkerLine(
                pid=pid,
                spans=span_counts[pid],
                busy_ms=_merged_extent_ms(pid_intervals),
                utilisation=(
                    _merged_extent_ms(pid_intervals) / self.wall_ms
                    if self.wall_ms
                    else 0.0
                ),
            )
            for pid, pid_intervals in sorted(intervals.items())
        ]

    def _aggregate_buddy(self, events: List[TraceEvent]) -> None:
        samples = [
            float(event.args["free_pages"])
            for event in events
            if event.ph == "C" and event.name == "buddy"
            and "free_pages" in event.args
        ]
        if samples:
            self.buddy_timeline = {
                "samples": len(samples),
                "first": samples[0],
                "min": min(samples),
                "max": max(samples),
                "last": samples[-1],
            }

    def _aggregate_store(self, snapshot: MetricsSnapshot) -> None:
        hits = snapshot.counter_total("colt_store_hits")
        misses = snapshot.counter_total("colt_store_misses")
        if hits or misses:
            self.store = {
                "hits": hits,
                "misses": misses,
                "evictions": snapshot.counter_total("colt_store_evictions"),
                "saves": snapshot.counter_total("colt_store_saves"),
                "hit_ratio": hits / (hits + misses) if hits + misses else 0.0,
            }

    def _aggregate_resilience(self, snapshot: MetricsSnapshot) -> None:
        totals = {
            name: snapshot.counter_total(f"colt_resilience_{name}")
            for name in (
                "retries", "timeouts", "task_errors", "pool_rebuilds",
                "serial_downgrades", "failures",
            )
        }
        totals["quarantines"] = snapshot.counter_total(
            "colt_store_quarantines"
        )
        totals["faults_injected"] = snapshot.counter_total(
            "colt_faults_injected"
        )
        # A fault-free run reports nothing: the resilience layer is
        # interesting only when it absorbed damage.
        if any(totals.values()):
            self.resilience = totals

    def _aggregate_campaign(self, snapshot: MetricsSnapshot) -> None:
        totals = {
            name: snapshot.counter_total(f"colt_campaign_{name}")
            for name in (
                "experiments", "completed", "skipped", "failed",
                "interrupted", "resumed", "journal_writes",
            )
        }
        # Only campaign-mode invocations carry these counters.
        if any(totals.values()):
            self.campaign = totals

    def _aggregate_watchdog(self, snapshot: MetricsSnapshot) -> None:
        totals = {
            name: snapshot.counter_total(f"colt_watchdog_{name}")
            for name in (
                "stalls", "stack_dumps", "mem_breaches", "pool_shrinks",
                "prefetch_disables", "budget_aborts",
            )
        }
        # A healthy run trips nothing; report only absorbed trouble.
        if any(totals.values()):
            self.watchdog = totals

    def _aggregate_coalescing(self, snapshot: MetricsSnapshot) -> None:
        entry = snapshot.get("colt_coalesce_run_length")
        if entry is None:
            return
        for sample in entry["series"]:
            design = sample["labels"].get("design", "?")
            merged = self.coalescing.setdefault(
                design,
                {
                    "count": 0,
                    "sum": 0.0,
                    "buckets": list(sample["buckets"]),
                    "counts": [0] * len(sample["counts"]),
                },
            )
            merged["count"] += sample["count"]
            merged["sum"] += sample["sum"]
            for i, c in enumerate(sample["counts"]):
                merged["counts"][i] += c

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------

    def render(self) -> str:
        lines: List[str] = ["=== CoLT run report ==="]
        lines.append(
            f"trace: {self.event_count} events"
            + (f" ({self.dropped_events} dropped)" if self.dropped_events
               else "")
            + f", {self.instrument_count} instruments, "
            f"wall {self.wall_ms / 1000.0:.2f}s"
        )

        if self.phases:
            lines.append("")
            lines.append("phase wall-time (sum over spans):")
            width = max(len(p.name) for p in self.phases)
            for phase in self.phases:
                lines.append(
                    f"  {phase.name:<{width}}  {phase.total_ms:10.1f} ms"
                    f"  x{phase.count:<5d} (mean {phase.mean_ms:.2f} ms)"
                )

        if self.workers:
            lines.append("")
            lines.append("worker utilisation (busy phase-time / run wall):")
            for worker in self.workers:
                bar = "#" * int(round(min(worker.utilisation, 1.0) * 20))
                lines.append(
                    f"  pid {worker.pid:<8d} {worker.busy_ms:10.1f} ms "
                    f"in {worker.spans:4d} spans  "
                    f"[{bar:<20}] {worker.utilisation:6.1%}"
                )

        if self.store:
            lines.append("")
            lines.append(
                "result store: "
                f"{self.store['hits']:.0f} hits, "
                f"{self.store['misses']:.0f} misses, "
                f"{self.store['evictions']:.0f} evictions, "
                f"{self.store['saves']:.0f} saves "
                f"({self.store['hit_ratio']:.0%} hit ratio)"
            )

        if self.resilience:
            parts = [
                f"{value:.0f} {name}"
                for name, value in self.resilience.items()
                if value
            ]
            lines.append("")
            lines.append("resilience: " + ", ".join(parts))

        if self.campaign:
            parts = [
                f"{value:.0f} {name}"
                for name, value in self.campaign.items()
                if value
            ]
            lines.append("")
            lines.append("campaign: " + ", ".join(parts))

        if self.watchdog:
            parts = [
                f"{value:.0f} {name}"
                for name, value in self.watchdog.items()
                if value
            ]
            lines.append("")
            lines.append("watchdog: " + ", ".join(parts))

        if self.coalescing:
            lines.append("")
            lines.append("coalescing run lengths per design:")
            for design in sorted(self.coalescing):
                data = self.coalescing[design]
                mean = data["sum"] / data["count"] if data["count"] else 0.0
                parts = []
                for bound, count in zip(data["buckets"], data["counts"]):
                    if count:
                        parts.append(f"<={bound:g}:{count}")
                if data["counts"][len(data["buckets"])]:
                    parts.append(f"inf:{data['counts'][len(data['buckets'])]}")
                lines.append(
                    f"  {design:<10} {data['count']:8d} fills, "
                    f"mean run {mean:.2f}  [{' '.join(parts)}]"
                )

        if self.buddy_timeline:
            t = self.buddy_timeline
            lines.append("")
            lines.append(
                "buddy free pages over run: "
                f"first {t['first']:.0f} -> last {t['last']:.0f} "
                f"(min {t['min']:.0f}, max {t['max']:.0f}, "
                f"{t['samples']:.0f} tick samples)"
            )

        return "\n".join(lines) + "\n"
