"""Metrics registry: named counters, gauges and histograms with labels.

The registry is the numeric half of ``repro.obs`` (the structured
tracer in ``repro.obs.trace`` is the temporal half). Components create
instruments once -- ``registry.counter("colt_store_hits")`` -- and
update them through cheap handle methods; experiment harnesses call
:meth:`MetricsRegistry.snapshot` to obtain an immutable, JSON-ready
:class:`MetricsSnapshot` for export (``repro.obs.export``) or reporting
(``repro.obs.report``).

Two integration styles coexist:

* **direct instruments** -- hot components that already pay for an
  update (the result store, the runner) increment a :class:`Counter`
  or observe into a :class:`Histogram` directly;
* **collectors** -- components whose event counting already flows
  through a :class:`repro.common.statistics.CounterSet` register a
  *collector* via :func:`bind_counterset`: a zero-hot-path-cost bridge
  that reads the counter set lazily at snapshot time, Prometheus
  style. Collectors keep their counter sets alive until the next
  ``snapshot(reset=True)`` drain, so short-lived components (one MMU
  per replay) still report; samples from multiple instances of the
  same component (several kernels, several MMUs) sum.

Snapshots merge (:meth:`MetricsRegistry.merge_snapshot`), which is how
the :class:`repro.sim.runner.ExperimentRunner` folds the registries of
its ``ProcessPoolExecutor`` workers into the parent process's view:
counters and histograms add, gauges keep the merged value.

The process-local default registry (:func:`get_registry`) is what every
simulator component binds into. Like the tracer, it is only *populated*
when observability is active (``COLT_TRACE`` / ``COLT_PROFILE``, or
the ``--trace`` / ``--profile`` / ``--report`` CLI flags); with
observability off no component binds anything, so the registry costs
one ``is None``-style check per component construction and nothing per
simulated access.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.statistics import CounterSet

#: Label sets are keyed by their sorted item tuple.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (``<=``); an implicit +inf
#: bucket always follows. Chosen for coalescing run lengths (1-8 within
#: a PTE cache line) with headroom for range entries and page counts.
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 3, 4, 6, 8, 16, 64, 256, 1024)


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Instrument:
    """Base class: one named metric with per-label-set series."""

    kind = "instrument"

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        self.name = name
        self.help = help
        self.unit = unit

    def series(self) -> Iterable[Tuple[LabelKey, object]]:
        raise NotImplementedError


class Counter(Instrument):
    """Monotonically-increasing event count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        super().__init__(name, help, unit)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0)

    def series(self):
        return self._series.items()


class Gauge(Instrument):
    """Last-written value (free pages, worker count, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        super().__init__(name, help, unit)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        self._series[_label_key(labels)] = value

    def value(self, **labels) -> Optional[float]:
        return self._series.get(_label_key(labels))

    def series(self):
        return self._series.items()


@dataclass
class HistogramState:
    """Bucket counts (+inf implicit last), observation count and sum."""

    buckets: Tuple[float, ...]
    counts: List[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` (batched events)."""
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += count
        self.count += count
        self.sum += value * count

    def merge(self, other: "HistogramState") -> None:
        if other.buckets != self.buckets:
            raise ConfigurationError(
                f"cannot merge histograms with buckets {other.buckets} "
                f"into {self.buckets}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum


class Histogram(Instrument):
    """Distribution of observations over fixed buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        super().__init__(name, help, unit)
        self.buckets = tuple(buckets) if buckets else DEFAULT_BUCKETS
        self._series: Dict[LabelKey, HistogramState] = {}

    def observe(self, value: float, count: int = 1, **labels) -> None:
        """Record ``count`` observations of ``value`` for one label set.

        The ``count`` weight lets batching producers (the vectorized
        replay engine) fold a run of identical events into one call;
        the resulting state is identical to ``count`` unweighted calls.
        """
        key = _label_key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = HistogramState(self.buckets)
        state.observe(value, count)

    def state(self, **labels) -> Optional[HistogramState]:
        return self._series.get(_label_key(labels))

    def series(self):
        return self._series.items()


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, JSON-ready view of a registry at one point in time.

    ``instruments`` maps instrument name to::

        {"kind": "counter|gauge|histogram", "help": ..., "unit": ...,
         "series": [{"labels": {...}, "value": v}                   # counter/gauge
                    | {"labels": {...}, "count": n, "sum": s,
                       "buckets": [bound...], "counts": [c...]}]}   # histogram
    """

    instruments: Dict[str, dict]

    def __len__(self) -> int:
        return len(self.instruments)

    def __contains__(self, name: str) -> bool:
        return name in self.instruments

    def get(self, name: str) -> Optional[dict]:
        return self.instruments.get(name)

    def counter_total(self, name: str) -> float:
        """Sum of a counter's series across every label set (0 if absent)."""
        entry = self.instruments.get(name)
        if entry is None:
            return 0
        return sum(s.get("value", 0) for s in entry["series"])

    def to_json_dict(self) -> dict:
        return {"schema": "colt-metrics-v1", "instruments": self.instruments}

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "MetricsSnapshot":
        if data.get("schema") != "colt-metrics-v1":
            raise ConfigurationError(
                f"not a colt metrics snapshot: schema={data.get('schema')!r}"
            )
        return cls(instruments=dict(data["instruments"]))


#: A collector yields ``(name, kind, labels_dict, value)`` samples at
#: snapshot time; same-name/same-labels counter samples sum.
Collector = Callable[[], Iterable[Tuple[str, str, Mapping[str, object], float]]]


class MetricsRegistry:
    """Process-local home of every instrument and collector."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._collectors: List[Collector] = []
        # Serialises snapshot/merge against each other: the telemetry
        # server thread (repro.obs.serve) snapshots while the main
        # thread folds worker snapshots in. Instrument *updates* stay
        # lock-free -- they mutate per-instrument dicts the snapshot
        # reads via list() copies, and the one writer that runs off the
        # main thread (the watchdog) only touches pre-created keys.
        self._lock = threading.RLock()

    # -- instrument creation (get-or-create, kind-checked) -------------

    def _get_or_create(self, cls, name: str, **kwargs) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"instrument {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                return existing
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", unit: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help, unit=unit)

    def gauge(self, name: str, help: str = "", unit: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help, unit=unit)

    def histogram(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help=help, unit=unit, buckets=buckets
        )

    def register_collector(self, collector: Collector) -> None:
        with self._lock:
            self._collectors.append(collector)

    def __len__(self) -> int:
        return len(self._instruments)

    # -- snapshots ------------------------------------------------------

    def snapshot(self, reset: bool = False) -> MetricsSnapshot:
        """Materialise every instrument and collector sample.

        ``reset=True`` is the worker-drain mode: after snapshotting, all
        instrument series are cleared and collectors dropped, so a
        pooled worker process that is reused for several tasks never
        reports the same events twice.
        """
        out: Dict[str, dict] = {}
        with self._lock:
            instruments = dict(self._instruments)
            collectors = list(self._collectors)
            if reset:
                self._instruments.clear()
                self._collectors.clear()
            return self._materialise(instruments, collectors, out)

    def _materialise(
        self,
        instruments: Dict[str, Instrument],
        collectors: List[Collector],
        out: Dict[str, dict],
    ) -> MetricsSnapshot:
        for name, instrument in instruments.items():
            series = []
            for key, value in list(instrument.series()):
                entry = {"labels": dict(key)}
                if isinstance(value, HistogramState):
                    entry.update(
                        count=value.count,
                        sum=value.sum,
                        buckets=list(value.buckets),
                        counts=list(value.counts),
                    )
                else:
                    entry["value"] = value
                series.append(entry)
            if series:
                out[name] = {
                    "kind": instrument.kind,
                    "help": instrument.help,
                    "unit": instrument.unit,
                    "series": series,
                }

        # Collector samples accumulate on top (summing duplicates).
        for collector in collectors:
            for name, kind, labels, value in collector():
                entry = out.setdefault(
                    name, {"kind": kind, "help": "", "unit": "", "series": []}
                )
                label_dict = {str(k): str(v) for k, v in labels.items()}
                for sample in entry["series"]:
                    if sample["labels"] == label_dict and "value" in sample:
                        sample["value"] += value
                        break
                else:
                    entry["series"].append(
                        {"labels": label_dict, "value": value}
                    )

        return MetricsSnapshot(instruments=out)

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (worker) snapshot into this registry's instruments.

        Counters and histograms add; gauges keep the incoming value
        (the freshest observation wins). Histogram samples whose bucket
        bounds differ from the registered instrument's are rejected
        with :class:`ConfigurationError` -- merging them would silently
        misalign per-bucket counts.
        """
        with self._lock:
            self._merge_snapshot_locked(snapshot)

    def _merge_snapshot_locked(self, snapshot: MetricsSnapshot) -> None:
        for name, entry in snapshot.instruments.items():
            kind = entry["kind"]
            if kind == "histogram":
                buckets = None
                for sample in entry["series"]:
                    buckets = tuple(sample["buckets"])
                    break
                hist = self.histogram(
                    name, help=entry.get("help", ""),
                    unit=entry.get("unit", ""), buckets=buckets,
                )
                for sample in entry["series"]:
                    sample_buckets = tuple(sample["buckets"])
                    if sample_buckets != hist.buckets:
                        raise ConfigurationError(
                            f"cannot merge histogram '{name}': snapshot "
                            f"bucket bounds {sample_buckets} differ from "
                            f"registered bounds {hist.buckets}"
                        )
                    state = HistogramState(
                        buckets=sample_buckets,
                        counts=list(sample["counts"]),
                        count=sample["count"],
                        sum=sample["sum"],
                    )
                    key = _label_key(sample["labels"])
                    mine = hist._series.get(key)
                    if mine is None:
                        hist._series[key] = state
                    else:
                        mine.merge(state)
            elif kind == "gauge":
                gauge = self.gauge(
                    name, help=entry.get("help", ""), unit=entry.get("unit", "")
                )
                for sample in entry["series"]:
                    gauge.set(sample["value"], **sample["labels"])
            else:
                counter = self.counter(
                    name, help=entry.get("help", ""), unit=entry.get("unit", "")
                )
                for sample in entry["series"]:
                    counter.inc(sample["value"], **sample["labels"])


def bind_counterset(
    registry: MetricsRegistry,
    prefix: str,
    counters: CounterSet,
    **labels,
) -> None:
    """Expose a ``CounterSet`` through ``registry`` at snapshot time.

    Registers a collector emitting one counter sample per
    ``{prefix}_{name}``; the hot path that increments the ``CounterSet``
    is untouched, Prometheus style. The collector holds a strong
    reference: simulator components are short-lived (one MMU per
    replay, one kernel per capture) and must still report after their
    run ends, so the registry keeps their counters alive until
    ``snapshot(reset=True)`` -- the worker-drain mode -- releases them.
    Samples from multiple instances with the same prefix and labels sum.
    """
    label_dict = {str(k): str(v) for k, v in labels.items()}

    def collect():
        for name, value in counters.as_dict().items():
            yield f"{prefix}_{name}", "counter", label_dict, value

    registry.register_collector(collect)


# ---------------------------------------------------------------------------
# Process-local default registry.
# ---------------------------------------------------------------------------

_REGISTRY: Optional[MetricsRegistry] = None


def get_registry() -> MetricsRegistry:
    """The process-local default registry (created on first use)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


def set_registry(registry: Optional[MetricsRegistry]) -> None:
    """Replace the default registry (tests, worker-process resets)."""
    global _REGISTRY
    _REGISTRY = registry
