"""repro.obs: unified telemetry across the OS/TLB/runner stack.

One subsystem, four pieces (see DESIGN.md section 6):

* :mod:`repro.obs.registry` -- metrics registry (counters, gauges,
  histograms with labels); components bind their ``CounterSet``s via
  zero-hot-path-cost collectors.
* :mod:`repro.obs.trace` -- ring-buffered structured tracer (spans for
  boot/capture/replay/store/compaction, sampled per-access TLB
  events), gated by ``COLT_TRACE`` like the sanitizers' gate.
* :mod:`repro.obs.export` -- Chrome/Perfetto trace-event JSON, metrics
  JSON/CSV.
* :mod:`repro.obs.report` -- the human :class:`RunReport` (per-phase
  wall-time, worker utilisation, store hit ratio, coalescing
  histograms, buddy fragmentation timeline).

Observability never mutates simulator state: a traced run's
``SimulationResult``s are bit-identical to an untraced run's, and with
everything disabled the hooks cost one ``is None`` check each.
"""

from repro.obs.hooks import (
    KernelObserver,
    MMUObserver,
    ObsPayload,
    drain_worker_obs,
    reset_worker_obs,
)
from repro.obs.logging import configure_logging, get_logger
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    bind_counterset,
    get_registry,
    set_registry,
)
from repro.obs.report import RunReport
from repro.obs.trace import (
    PROFILE_ENV,
    TRACE_ENV,
    TraceEvent,
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    obs_active,
    reset_tracing,
    span,
    tracing_requested,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KernelObserver",
    "MMUObserver",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ObsPayload",
    "PROFILE_ENV",
    "RunReport",
    "TRACE_ENV",
    "TraceEvent",
    "Tracer",
    "bind_counterset",
    "configure_logging",
    "current_tracer",
    "disable_tracing",
    "drain_worker_obs",
    "enable_tracing",
    "get_logger",
    "get_registry",
    "obs_active",
    "reset_tracing",
    "reset_worker_obs",
    "set_registry",
    "span",
    "tracing_requested",
]
