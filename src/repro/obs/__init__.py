"""repro.obs: unified telemetry across the OS/TLB/runner stack.

One subsystem, four pieces (see DESIGN.md section 6):

* :mod:`repro.obs.registry` -- metrics registry (counters, gauges,
  histograms with labels); components bind their ``CounterSet``s via
  zero-hot-path-cost collectors.
* :mod:`repro.obs.trace` -- ring-buffered structured tracer (spans for
  boot/capture/replay/store/compaction, sampled per-access TLB
  events), gated by ``COLT_TRACE`` like the sanitizers' gate.
* :mod:`repro.obs.export` -- Chrome/Perfetto trace-event JSON, metrics
  JSON/CSV.
* :mod:`repro.obs.report` -- the human :class:`RunReport` (per-phase
  wall-time, worker utilisation, store hit ratio, coalescing
  histograms, buddy fragmentation timeline).

The telemetry plane (DESIGN.md section 11) builds on those:

* :mod:`repro.obs.live` -- thread-safe :class:`ProgressTracker`
  blackboard the campaign/runner/watchdog publish into;
* :mod:`repro.obs.serve` -- opt-in HTTP endpoint (``/metrics`` in
  Prometheus text format, ``/progress`` JSON, ``/healthz``);
* :mod:`repro.obs.history` -- persistent ``colt-history-v1`` run
  records with trend/diff/regression-gate helpers
  (``tools/obs_history.py``).

Observability never mutates simulator state: a traced run's
``SimulationResult``s are bit-identical to an untraced run's, and with
everything disabled the hooks cost one ``is None`` check each.
"""

from repro.obs.hooks import (
    KernelObserver,
    MMUObserver,
    ObsPayload,
    drain_worker_obs,
    reset_worker_obs,
)
from repro.obs.history import (
    HISTORY_ENV,
    HISTORY_SCHEMA,
    append_record,
    build_record,
    history_path,
    load_history,
)
from repro.obs.live import ProgressTracker, get_progress, reset_progress
from repro.obs.logging import configure_logging, get_logger
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    bind_counterset,
    get_registry,
    set_registry,
)
from repro.obs.report import RunReport
from repro.obs.serve import (
    TELEMETRY_PORT_ENV,
    TelemetryServer,
    prometheus_text,
    telemetry_port_from_env,
)
from repro.obs.trace import (
    PROFILE_ENV,
    TRACE_ENV,
    TraceEvent,
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    obs_active,
    reset_tracing,
    span,
    tracing_requested,
)

__all__ = [
    "Counter",
    "Gauge",
    "HISTORY_ENV",
    "HISTORY_SCHEMA",
    "Histogram",
    "KernelObserver",
    "MMUObserver",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ObsPayload",
    "PROFILE_ENV",
    "ProgressTracker",
    "RunReport",
    "TELEMETRY_PORT_ENV",
    "TRACE_ENV",
    "TelemetryServer",
    "TraceEvent",
    "Tracer",
    "append_record",
    "bind_counterset",
    "build_record",
    "configure_logging",
    "current_tracer",
    "disable_tracing",
    "drain_worker_obs",
    "enable_tracing",
    "get_logger",
    "get_progress",
    "get_registry",
    "history_path",
    "load_history",
    "obs_active",
    "prometheus_text",
    "reset_progress",
    "reset_tracing",
    "reset_worker_obs",
    "set_registry",
    "span",
    "telemetry_port_from_env",
    "tracing_requested",
]
