"""Component-side observability hooks and worker hand-off plumbing.

The simulator's components stay ignorant of exporters and reports; they
talk to two small observer classes defined here:

* :class:`MMUObserver` -- attached by ``repro.core.mmu.MMU`` when
  observability is active. Feeds the per-design coalescing run-length
  histogram and emits *sampled* per-access TLB trace events (L1 miss,
  fill with run length, superpage fill, shootdown). ``create`` returns
  ``None`` when observability is off, so the MMU's only disabled-mode
  cost is an ``is not None`` check on its miss/fill/shootdown paths --
  the hit path is untouched.
* :class:`KernelObserver` -- attached by ``repro.osmem.kernel.Kernel``.
  Samples the buddy allocator's fragmentation state (free pages,
  largest free order) into gauges and a Perfetto counter-track
  timeline on every background tick.

The bottom half is the ``ProcessPoolExecutor`` hand-off:
:func:`drain_worker_obs` snapshots-and-resets a worker's tracer and
registry into a picklable :class:`ObsPayload` that rides back with the
task result; the parent folds it in via
:meth:`repro.obs.registry.MetricsRegistry.merge_snapshot`.
:func:`reset_worker_obs` runs as the pool initializer so a forked
worker drops the events and instruments it inherited from the parent
(they would otherwise be double-reported).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.obs.registry import (
    MetricsRegistry,
    MetricsSnapshot,
    bind_counterset,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    TraceEvent,
    Tracer,
    current_tracer,
    obs_active,
    reset_tracing,
)


class MMUObserver:
    """Sampled TLB events + coalescing histograms for one MMU."""

    __slots__ = ("_hist", "_design", "_tracer", "_sample", "_ticker")

    def __init__(self, design: str, tracer: Optional[Tracer]) -> None:
        self._design = design
        self._tracer = tracer
        self._sample = tracer.sample_every if tracer is not None else 1
        self._ticker = 0
        self._hist = get_registry().histogram(
            "colt_coalesce_run_length",
            help="translations per TLB fill, by design (1 = uncoalesced)",
            unit="translations",
        )

    @staticmethod
    def create(design: str) -> Optional["MMUObserver"]:
        """An observer when observability is active, else ``None``."""
        if not obs_active():
            return None
        return MMUObserver(design, current_tracer())

    def _sampled(self, count: int = 1) -> bool:
        """Advance the sampling ticker by ``count`` events.

        For ``count == 1`` this is the classic 1-in-N decimator. Batched
        callers (the vectorized replay engine) advance it by the whole
        batch in one call: the ticker lands exactly where ``count``
        single steps would leave it, so downstream sampling decisions
        stay aligned with the scalar engine's, and at most one instant
        is emitted per batch (the point of batching).
        """
        self._ticker += count
        if self._ticker >= self._sample:
            self._ticker %= self._sample
            return True
        return False

    def on_l1_miss(self, vpn: int, count: int = 1) -> None:
        if self._tracer is not None and self._sampled(count):
            self._tracer.instant(
                "tlb.miss", cat="tlb", vpn=vpn, level="l1",
                design=self._design,
            )

    def on_fill(self, run_length: int, count: int = 1) -> None:
        self._hist.observe(run_length, count, design=self._design)
        if self._tracer is not None and self._sampled(count):
            self._tracer.instant(
                "tlb.fill", cat="tlb", run_length=run_length,
                coalesced=run_length >= 2, design=self._design,
            )

    def on_superpage_fill(self, vpn: int, count: int = 1) -> None:
        if self._tracer is not None and self._sampled(count):
            self._tracer.instant(
                "tlb.superpage_fill", cat="tlb", vpn=vpn,
                design=self._design,
            )

    def on_shootdown(self, vpn: int, count: int = 1) -> None:
        """One shootdown, or a batched range of ``count`` of them."""
        if self._tracer is not None and self._sampled(count):
            self._tracer.instant(
                "tlb.shootdown", cat="tlb", vpn=vpn, design=self._design,
            )


class KernelObserver:
    """Buddy-fragmentation timeline + kernel counter bridging."""

    __slots__ = ("_buddy", "_tracer", "_free_gauge", "_order_gauge")

    def __init__(self, kernel) -> None:
        self._buddy = kernel.buddy
        self._tracer = current_tracer()
        registry = get_registry()
        self._free_gauge = registry.gauge(
            "colt_buddy_free_pages",
            help="free 4KB frames in the buddy allocator",
            unit="pages",
        )
        self._order_gauge = registry.gauge(
            "colt_buddy_largest_free_order",
            help="largest order with a free buddy block (-1 when empty)",
        )
        bind_counterset(registry, "colt_kernel", kernel.counters)

    @staticmethod
    def create(kernel) -> Optional["KernelObserver"]:
        if not obs_active():
            return None
        return KernelObserver(kernel)

    def on_tick(self) -> None:
        """Sample the fragmentation state (called per background tick)."""
        free = self._buddy.free_pages
        order = self._buddy.largest_free_order()
        self._free_gauge.set(free)
        self._order_gauge.set(-1 if order is None else order)
        if self._tracer is not None:
            self._tracer.counter(
                "buddy", cat="os", free_pages=free,
                largest_free_order=-1 if order is None else order,
            )


# ---------------------------------------------------------------------------
# Worker-process hand-off.
# ---------------------------------------------------------------------------


@dataclass
class ObsPayload:
    """One worker task's drained observability output (picklable)."""

    events: List[TraceEvent]
    metrics: MetricsSnapshot
    dropped_events: int = 0


def drain_worker_obs() -> Optional[ObsPayload]:
    """Snapshot-and-reset this process's tracer and registry.

    Returns ``None`` when observability is off (the common case: the
    task result ships with zero extra payload). Draining resets both
    sinks so a reused pool worker reports each event exactly once.
    """
    if not obs_active():
        return None
    tracer = current_tracer()
    events: List[TraceEvent] = []
    dropped = 0
    if tracer is not None:
        events = tracer.drain()
        dropped = tracer.dropped
        tracer.dropped = 0
    metrics = get_registry().snapshot(reset=True)
    return ObsPayload(events=events, metrics=metrics, dropped_events=dropped)


#: True once this process has been initialised as a pool worker.
_IN_POOL_WORKER = False


def in_pool_worker() -> bool:
    """True in a pool worker initialised by :func:`reset_worker_obs`.

    Task bodies use this to decide whether to drain obs state into
    their return payload: in a worker the drain is the only way events
    reach the parent, but in the parent itself (serial execution, or a
    runner that degraded to in-process mode) draining would reset the
    very tracer/registry the run is still accumulating into.
    """
    return _IN_POOL_WORKER


def reset_worker_obs() -> None:
    """Pool-worker initializer: drop obs state inherited over ``fork``."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True
    reset_tracing()
    set_registry(MetricsRegistry())
