"""HTTP telemetry endpoint: ``/metrics``, ``/progress``, ``/healthz``.

Opt-in live observability for long runs (``COLT_TELEMETRY_PORT`` or
``--telemetry-port``): a stdlib :class:`http.server.ThreadingHTTPServer`
on a daemon thread serves

* ``/metrics`` -- the process-local :class:`~repro.obs.registry.MetricsRegistry`
  rendered in Prometheus text exposition format (counters, gauges and
  cumulative histogram buckets);
* ``/progress`` -- campaign manifest counts, current experiment ids and
  watchdog state as JSON, read from the
  :class:`~repro.obs.live.ProgressTracker`;
* ``/healthz`` -- liveness.

The server is strictly read-only: ``/metrics`` takes a non-resetting
registry snapshot under the registry's internal lock (the same
serialisation ``merge_snapshot`` uses when the runner folds worker
results in), and ``/progress`` deep-copies the tracker. Nothing here
can perturb simulation state, so a served run stays bit-identical to
an unserved one -- CI asserts exactly that.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.live import ProgressTracker, get_progress
from repro.obs.logging import get_logger
from repro.obs.registry import MetricsRegistry, MetricsSnapshot, get_registry

#: Environment knob: serve telemetry on this TCP port (0 = ephemeral).
TELEMETRY_PORT_ENV = "COLT_TELEMETRY_PORT"

_LOG = get_logger(__name__)


def telemetry_port_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[int]:
    """Parse ``COLT_TELEMETRY_PORT``; ``None`` when unset/empty."""
    raw = (environ if environ is not None else os.environ).get(
        TELEMETRY_PORT_ENV, ""
    ).strip()
    if not raw:
        return None
    try:
        port = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{TELEMETRY_PORT_ENV} must be an integer port, got {raw!r}"
        )
    if not 0 <= port <= 65535:
        raise ConfigurationError(
            f"{TELEMETRY_PORT_ENV} must be in [0, 65535], got {port}"
        )
    return port


# ---------------------------------------------------------------------------
# Prometheus text exposition.
# ---------------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """``3`` not ``3.0`` for integral values; ``repr`` otherwise."""
    number = float(value)
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _labels_text(
    labels: Mapping[str, object],
    extra: Optional[Tuple[str, str]] = None,
) -> str:
    """``{k="v",...}`` (empty string for no labels)."""
    pairs = [
        (str(k), str(v)) for k, v in sorted(labels.items(), key=lambda i: i[0])
    ]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    Counters and gauges render one line per label set; histograms
    render cumulative ``_bucket{le=...}`` lines (with the implicit
    ``+Inf`` bucket) plus ``_sum`` and ``_count``, matching the
    Prometheus client-library convention.
    """
    lines = []
    for name in sorted(snapshot.instruments):
        entry = snapshot.instruments[name]
        kind = entry.get("kind", "untyped")
        if kind not in ("counter", "gauge", "histogram"):
            kind = "untyped"
        help_text = entry.get("help") or ""
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in entry.get("series", []):
            labels = sample.get("labels", {})
            if kind == "histogram" and "buckets" in sample:
                cumulative = 0
                bounds = [float(b) for b in sample["buckets"]]
                bounds.append(float("inf"))
                for bound, count in zip(bounds, sample["counts"]):
                    cumulative += count
                    le = _labels_text(labels, ("le", _format_value(bound)))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                labels_text = _labels_text(labels)
                lines.append(
                    f"{name}_sum{labels_text} {_format_value(sample['sum'])}"
                )
                lines.append(f"{name}_count{labels_text} {sample['count']}")
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} "
                    f"{_format_value(sample.get('value', 0))}"
                )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# The server.
# ---------------------------------------------------------------------------


class TelemetryServer:
    """Read-only telemetry HTTP server on a daemon thread.

    ``port=0`` binds an ephemeral port (tests); :meth:`start` returns
    the bound port either way. :meth:`stop` shuts the listener down and
    joins the serving thread, so signal-driven teardown (the exit-75
    path) leaves no socket behind.
    """

    def __init__(
        self,
        port: int,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
        progress: Optional[ProgressTracker] = None,
    ) -> None:
        self._requested_port = port
        self._host = host
        self._registry = registry
        self._progress = progress
        self._lock = threading.Lock()
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._requests: Dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        with self._lock:
            server = self._server
        return server.server_address[1] if server is not None else None

    @property
    def running(self) -> bool:
        with self._lock:
            return self._server is not None

    def start(self) -> int:
        handler = self._make_handler()
        server = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        server.daemon_threads = True
        thread = threading.Thread(
            target=server.serve_forever,
            name="colt-telemetry",
            daemon=True,
        )
        with self._lock:
            if self._server is not None:
                server.server_close()
                raise ConfigurationError("telemetry server already started")
            self._server = server
            self._thread = thread
        thread.start()
        port = server.server_address[1]
        _LOG.info(
            "telemetry endpoint listening on http://%s:%d", self._host, port
        )
        return port

    def stop(self) -> None:
        """Stop serving and join the thread (idempotent)."""
        with self._lock:
            server = self._server
            thread = self._thread
            self._server = None
            self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        if server is not None:
            _LOG.info("telemetry endpoint stopped")

    # -- payloads -------------------------------------------------------

    def _count_request(self, endpoint: str) -> None:
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1

    def request_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._requests)

    def _metrics_payload(self) -> bytes:
        registry = self._registry if self._registry is not None else get_registry()
        return prometheus_text(registry.snapshot()).encode("utf-8")

    def _progress_payload(self) -> bytes:
        progress = self._progress if self._progress is not None else get_progress()
        state = progress.snapshot()
        state["telemetry"] = {
            "port": self.port,
            "requests": self.request_counts(),
        }
        return (json.dumps(state, sort_keys=True) + "\n").encode("utf-8")

    # -- request handling ----------------------------------------------

    def _make_handler(self):
        outer = self

        class Handler(BaseHTTPRequestHandler):
            server_version = "colt-telemetry/1"

            def do_GET(self):  # noqa: N802 - stdlib naming
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                try:
                    if path == "/healthz":
                        outer._count_request("healthz")
                        self._reply(200, b"ok\n", "text/plain; charset=utf-8")
                    elif path == "/metrics":
                        outer._count_request("metrics")
                        self._reply(
                            200,
                            outer._metrics_payload(),
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                    elif path == "/progress":
                        outer._count_request("progress")
                        self._reply(
                            200,
                            outer._progress_payload(),
                            "application/json; charset=utf-8",
                        )
                    else:
                        outer._count_request("other")
                        self._reply(
                            404,
                            b"not found: try /metrics /progress /healthz\n",
                            "text/plain; charset=utf-8",
                        )
                except BrokenPipeError:
                    pass
                except Exception:  # pragma: no cover - defensive
                    _LOG.exception("telemetry request failed: %s", self.path)
                    try:
                        self._reply(
                            500,
                            b"internal error\n",
                            "text/plain; charset=utf-8",
                        )
                    except OSError:
                        pass

            def _reply(self, code: int, body: bytes, content_type: str):
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args):  # quiet: route to logger
                _LOG.debug("telemetry http: %s", fmt % args)

        return Handler
