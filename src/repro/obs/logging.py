"""Library logging for ``repro``: one namespaced logger, CLI-configured.

Library code under ``src/repro/`` must not ``print()`` (enforced by the
``no-print`` rule of ``repro.analysis.lint``); diagnostics flow through
loggers obtained here instead::

    from repro.obs.logging import get_logger
    log = get_logger(__name__)
    log.warning("dropping torn cache entry %s", path)

Everything hangs off the ``colt`` root logger, so one
:func:`configure_logging` call in a CLI entry point controls the whole
package: ``--quiet`` shows errors only, the default shows warnings,
``-v`` adds info, ``-vv`` adds debug. Until a CLI configures it, the
``colt`` logger stays un-handled (stdlib "last resort" prints warnings+
to stderr), so importing the library never hijacks an application's
logging setup.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: Root of the package's logger namespace.
ROOT_LOGGER = "colt"

_FORMAT = "%(levelname)s %(name)s: %(message)s"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``colt`` namespace.

    ``name`` is usually ``__name__``; a ``repro.`` prefix is rewritten
    so ``repro.sim.store`` logs as ``colt.sim.store``.
    """
    if name.startswith("repro."):
        name = name[len("repro."):]
    if not name or name == "repro":
        return logging.getLogger(ROOT_LOGGER)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(
    verbosity: int = 0, stream: Optional[object] = None
) -> logging.Logger:
    """Attach a stderr handler to the ``colt`` logger at a verbosity.

    Args:
        verbosity: ``-1`` = errors only (``--quiet``), ``0`` = warnings
            (default), ``1`` = info (``-v``), ``>=2`` = debug (``-vv``).
        stream: alternative output stream (tests).

    Idempotent: reconfiguring replaces the previously-installed handler
    rather than stacking a second one.
    """
    if verbosity <= -1:
        level = logging.ERROR
    elif verbosity == 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG

    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root
