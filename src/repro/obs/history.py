"""Persistent run-history time-series (``colt-history-v1``).

Every runner/campaign invocation appends one compact JSON record --
constants fingerprint, engine, scale, per-phase wall times, store hit
ratio, all counter totals, vector speedup when benched -- to
``<cache>/history/history.jsonl``. Appends go through
:mod:`repro.common.atomicio` (read-all, rewrite, ``os.replace``), so a
kill mid-append leaves the previous history intact, never a torn line.

The record is the unit three consumers share:

* ``tools/obs_history.py`` renders trend tables and diffs two runs;
* ``tools/obs_history.py --gate`` compares the newest matching record
  against a committed ``colt-history-baseline-v1`` document:
  bit-identity counters must match *exactly*, wall-time/overhead
  metrics get tolerance ceilings (:func:`gate_record`);
* CI uploads the file as an artifact, so the perf trajectory
  accumulates across runs instead of being discarded.

This module is wall-clock-free by design (determinism lint): the
caller -- ``repro.experiments.__main__``, which is on the wall-clock
allowlist -- passes ``ts`` in.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.common.atomicio import atomic_write_text
from repro.common.errors import ConfigurationError
from repro.obs.logging import get_logger

#: Schema tag stamped into every history record.
HISTORY_SCHEMA = "colt-history-v1"

#: Schema tag of committed gate baselines.
BASELINE_SCHEMA = "colt-history-baseline-v1"

#: Environment knob: set to ``0``/``off``/``false`` to skip appending
#: history records (e.g. scratch runs that should not pollute trends).
HISTORY_ENV = "COLT_HISTORY"

#: Statuses a record may carry (mirrors the CLI exit paths: 0 / 75 /
#: other non-zero).
STATUSES = ("ok", "interrupted", "failed")

_LOG = get_logger(__name__)


def history_enabled(
    environ: Optional[Mapping[str, str]] = None,
) -> bool:
    raw = (environ if environ is not None else os.environ).get(
        HISTORY_ENV, ""
    ).strip().lower()
    return raw not in ("0", "off", "false", "no")


def history_path(cache_dir: Union[str, Path]) -> Path:
    """``<cache>/history/history.jsonl`` for a result-store cache dir."""
    return Path(cache_dir) / "history" / "history.jsonl"


# ---------------------------------------------------------------------------
# Records.
# ---------------------------------------------------------------------------


def build_record(
    ts: float,
    status: str,
    figure: str,
    scale: str,
    engine: str,
    fingerprint: str,
    wall: Mapping[str, float],
    counters: Mapping[str, float],
    store: Optional[Mapping[str, float]] = None,
    vector_speedup: Optional[float] = None,
    campaign: bool = False,
    telemetry: bool = False,
    jobs: int = 1,
) -> dict:
    """Assemble one ``colt-history-v1`` record.

    ``wall`` maps phase name to seconds (``total`` expected);
    ``counters`` maps counter name to its label-summed total;
    ``store`` carries ``hits``/``misses``/``hit_ratio`` when a result
    store was active. ``ts`` is supplied by the caller (this module
    never reads the clock).
    """
    if status not in STATUSES:
        raise ConfigurationError(
            f"history status must be one of {STATUSES}, got {status!r}"
        )
    record = {
        "schema": HISTORY_SCHEMA,
        "ts": float(ts),
        "status": status,
        "figure": figure,
        "scale": scale,
        "engine": engine,
        "fingerprint": fingerprint,
        "campaign": bool(campaign),
        "telemetry": bool(telemetry),
        "jobs": int(jobs),
        "wall": {str(k): float(v) for k, v in sorted(wall.items())},
        "counters": {
            str(k): float(v) for k, v in sorted(counters.items())
        },
    }
    if store is not None:
        record["store"] = {str(k): float(v) for k, v in sorted(store.items())}
    if vector_speedup is not None:
        record["vector_speedup"] = float(vector_speedup)
    return record


def append_record(path: Union[str, Path], record: Mapping) -> Path:
    """Append ``record`` to the JSONL history file atomically.

    Existing lines are preserved verbatim (including any the current
    schema no longer recognises -- history is append-only); the whole
    file is rewritten through ``atomic_write_text`` so a crash leaves
    either the old history or the new one.
    """
    if record.get("schema") != HISTORY_SCHEMA:
        raise ConfigurationError(
            f"refusing to append non-history record "
            f"(schema={record.get('schema')!r})"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    existing = ""
    if path.exists():
        existing = path.read_text(encoding="utf-8")
        if existing and not existing.endswith("\n"):
            existing += "\n"
    line = json.dumps(record, sort_keys=True)
    atomic_write_text(path, existing + line + "\n")
    return path


def load_history(path: Union[str, Path]) -> List[dict]:
    """Parse a history file; malformed lines are skipped with a warning."""
    path = Path(path)
    if not path.exists():
        return []
    records: List[dict] = []
    bad = 0
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            bad += 1
            continue
        if not isinstance(record, dict) or record.get("schema") != HISTORY_SCHEMA:
            bad += 1
            continue
        records.append(record)
    if bad:
        _LOG.warning("%s: skipped %d malformed history line(s)", path, bad)
    return records


def select_records(
    records: List[dict],
    figure: Optional[str] = None,
    scale: Optional[str] = None,
    engine: Optional[str] = None,
    status: Optional[str] = None,
) -> List[dict]:
    """Filter records by run coordinates (``None`` matches anything)."""
    out = []
    for record in records:
        if figure is not None and record.get("figure") != figure:
            continue
        if scale is not None and record.get("scale") != scale:
            continue
        if engine is not None and record.get("engine") != engine:
            continue
        if status is not None and record.get("status") != status:
            continue
        out.append(record)
    return out


# ---------------------------------------------------------------------------
# Diffing.
# ---------------------------------------------------------------------------


def flatten_record(record: Mapping) -> Dict[str, float]:
    """Numeric leaves as dotted paths (``wall.total``, ``counters.x``)."""
    flat: Dict[str, float] = {}

    def walk(prefix: str, value):
        if isinstance(value, Mapping):
            for key, sub in value.items():
                walk(f"{prefix}.{key}" if prefix else str(key), sub)
        elif isinstance(value, bool):
            flat[prefix] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            flat[prefix] = float(value)

    walk("", record)
    flat.pop("ts", None)
    return flat


def diff_records(a: Mapping, b: Mapping) -> List[dict]:
    """Numeric differences between two records, sorted by path.

    Each row is ``{"path", "a", "b", "delta"}``; paths present in only
    one record report ``None`` on the missing side.
    """
    fa, fb = flatten_record(a), flatten_record(b)
    rows = []
    for path in sorted(set(fa) | set(fb)):
        va, vb = fa.get(path), fb.get(path)
        delta = None if va is None or vb is None else vb - va
        if va == vb:
            continue
        rows.append({"path": path, "a": va, "b": vb, "delta": delta})
    return rows


def lookup_path(record: Mapping, dotted: str):
    """Resolve ``wall.total``-style paths; ``None`` when absent."""
    node = record
    for part in dotted.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    return node


# ---------------------------------------------------------------------------
# Regression gate.
# ---------------------------------------------------------------------------


def load_baseline(path: Union[str, Path]) -> dict:
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read gate baseline {path}: {exc}")
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"{path} is not a {BASELINE_SCHEMA} document "
            f"(schema={data.get('schema') if isinstance(data, dict) else None!r})"
        )
    return data


def gate_record(record: Mapping, baseline: Mapping) -> List[str]:
    """Check one record against a baseline; returns problem strings.

    Gate semantics (empty list = pass):

    * ``exact_counters`` -- bit-identity counters (the simulated-event
      totals that are pure functions of scale and experiment list) must
      match the baseline value *exactly*;
    * ``ceilings`` -- dotted-path metrics (wall times, overhead ratios)
      must be ``<=`` the bound;
    * ``floors`` -- dotted-path metrics (vector speedup) must be ``>=``
      the bound, checked only when the record carries the path (a run
      without a bench attached simply has nothing to check);
    * ``require_status`` (default ``ok``) -- the record's status.
    """
    problems: List[str] = []
    require_status = baseline.get("require_status", "ok")
    if require_status and record.get("status") != require_status:
        problems.append(
            f"status is {record.get('status')!r}, gate requires "
            f"{require_status!r}"
        )
    counters = record.get("counters", {})
    for name, expected in sorted(baseline.get("exact_counters", {}).items()):
        actual = counters.get(name)
        if actual is None:
            problems.append(f"counter {name} missing (expected {expected})")
        elif float(actual) != float(expected):
            problems.append(
                f"counter {name} drifted: {actual} != baseline {expected} "
                f"(bit-identity counters must match exactly)"
            )
    for path, bound in sorted(baseline.get("ceilings", {}).items()):
        actual = lookup_path(record, path)
        if actual is None:
            problems.append(f"{path} missing (ceiling {bound})")
        elif float(actual) > float(bound):
            problems.append(f"{path} = {actual} exceeds ceiling {bound}")
    for path, bound in sorted(baseline.get("floors", {}).items()):
        actual = lookup_path(record, path)
        if actual is not None and float(actual) < float(bound):
            problems.append(f"{path} = {actual} below floor {bound}")
    return problems


def gate_history(
    records: List[dict], baseline: Mapping
) -> "tuple[Optional[dict], List[str]]":
    """Gate the newest record matching the baseline's ``match`` block.

    Returns ``(record, problems)``; ``record`` is ``None`` (with a
    problem string) when no record matches the coordinates.
    """
    match = baseline.get("match", {})
    candidates = select_records(
        records,
        figure=match.get("figure"),
        scale=match.get("scale"),
        engine=match.get("engine"),
    )
    if not candidates:
        return None, [
            f"no history record matches baseline coordinates {dict(match)}"
        ]
    record = candidates[-1]
    return record, gate_record(record, baseline)
