"""Custom AST lint: static enforcement of the repo's determinism rules.

The simulator's headline guarantee is that a configuration plus a seed
fully determines every number in every figure. That guarantee is easy to
lose to one careless line -- a ``random.shuffle`` here, a
``time.time()`` mixed into a filename there -- and impossible to protect
with generic linters. The rules (``rng-module-state``, ``wall-clock``,
``mutable-default``, ``float-eq``, ``no-print``) live in
:mod:`repro.analysis.static.lint_rules` with the why of each; this
module is the stable ``colt-lint`` facade over them.

``colt-lint`` is now an alias for ``colt-analyze --passes lint
--no-baseline``: the visitor runs as one pass of the shared static
analysis framework (:mod:`repro.analysis.static`), so the
``# colt-lint: disable=...`` pragma, file iteration, and reporting are
implemented exactly once and shared with the concurrency / registry /
hygiene analyzers.

Run as ``python tools/lint.py <paths>`` or via the ``colt-lint``
console script; exits nonzero when diagnostics were emitted.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.static.lint_rules import (  # noqa: F401  (public API)
    PRINT_ALLOW,
    RNG_CONSTRUCTION_ALLOW,
    RULES,
    WALL_CLOCK_ALLOW,
    LintPass,
)
from repro.analysis.static.model import (  # noqa: F401  (public API)
    ProjectModel,
    iter_python_files,
)
from repro.analysis.static.passes import Finding, run_passes

#: Historical name for one lint finding; same shape, same rendering.
Diagnostic = Finding


def lint_source(source: str, path: str) -> List[Diagnostic]:
    """Lint one module's source text; pragma-suppressed findings drop."""
    project = ProjectModel.from_sources([(path, source)])
    return run_passes(project, [LintPass()])


def lint_file(path: Path) -> List[Diagnostic]:
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Iterable[Path]) -> List[Diagnostic]:
    project = ProjectModel.from_paths(paths)
    return run_passes(project, [LintPass()])


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.analysis.static.cli import main as analyze_main

    if argv is None:
        argv = sys.argv[1:]
    return analyze_main(["--passes", "lint", "--no-baseline", *argv])


if __name__ == "__main__":
    sys.exit(main())
