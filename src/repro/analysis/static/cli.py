"""``colt-analyze``: the project-wide static analysis front end.

Runs the lint, concurrency, registry-coherence, and exception-hygiene
passes over a shared :class:`ProjectModel`, diffs the findings against
the checked-in baseline, and reports in text, JSON, or SARIF. Doc
freshness (``--check-docs`` / ``--write-docs``) and the vectorization
report (``--vectorization-report``) ride on the same parsed model.

Exit codes mirror ``colt-lint``: 0 clean, 1 new findings (or stale
docs), 2 usage errors. ``colt-lint`` itself is an alias for
``colt-analyze --passes lint --no-baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.static.baseline import Baseline
from repro.analysis.static.coherence import RegistryCoherencePass
from repro.analysis.static.concurrency import ConcurrencyPass
from repro.analysis.static.docs import check_docs, write_docs
from repro.analysis.static.hygiene import ExceptionHygienePass
from repro.analysis.static.lint_rules import LintPass
from repro.analysis.static.model import ProjectModel
from repro.analysis.static.passes import (
    AnalysisPass,
    fingerprint_findings,
    run_passes,
)
from repro.analysis.static.sarif import to_json, to_sarif
from repro.analysis.static.vectorization import analyze_project, render_report

#: Pass name -> factory, in the default execution order.
PASS_FACTORIES = {
    "lint": LintPass,
    "concurrency": ConcurrencyPass,
    "coherence": RegistryCoherencePass,
    "hygiene": ExceptionHygienePass,
}

#: Short rule descriptions for SARIF rule metadata.
RULE_HELP: Dict[str, str] = {
    "rng-module-state": "module-level RNG state bypasses SeedSequencer",
    "wall-clock": "wall-clock read in simulation code",
    "mutable-default": "mutable default argument",
    "float-eq": "float equality comparison",
    "no-print": "print() in library code",
    "syntax-error": "file does not parse",
    "worker-global-mutation": "pool-worker-reachable code writes module state",
    "signal-handler-work": "non-trivial work in a signal handler",
    "unlocked-shared-state": "thread-shared attribute written without lock",
    "undeclared-env-knob": "env knob read but not in the registry",
    "dead-env-knob": "registry knob unused by its consumer",
    "undeclared-metric": "metric emitted but not in the registry",
    "unemitted-metric": "registry metric never emitted",
    "unreported-metric": "reported=True metric the report never reads",
    "undeclared-span": "trace event not in the registry",
    "unemitted-span": "registry trace event never emitted",
    "undeclared-fault-site": "fault site not in the registry",
    "unemitted-fault-site": "registry fault site never fired",
    "overbroad-except": "broad except without mitigation",
    "silent-except": "handler silently swallows the exception",
}

#: Default baseline location, relative to the repo root.
DEFAULT_BASELINE = Path("tools") / "analysis_baseline.json"


def find_repo_root(start: Path) -> Optional[Path]:
    for candidate in [start.resolve()] + list(start.resolve().parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return None


def build_passes(names: Sequence[str]) -> List[AnalysisPass]:
    passes: List[AnalysisPass] = []
    for name in names:
        factory = PASS_FACTORIES.get(name)
        if factory is None:
            raise KeyError(name)
        passes.append(factory())
    return passes


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="colt-analyze",
        description=(
            "Project-wide static analysis for the CoLT reproduction repo."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (directories recurse); "
             "defaults to <repo>/src <repo>/tools for docs-only modes",
    )
    parser.add_argument(
        "--passes", default=",".join(PASS_FACTORIES),
        help="comma-separated pass list (default: %(default)s)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="output_format", help="finding output format",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write findings to this file instead of stdout",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline file (default: <repo>/tools/analysis_baseline.json "
             "when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; report every finding",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to accept all current findings "
             "(existing justifications are preserved)",
    )
    parser.add_argument(
        "--check-docs", action="store_true",
        help="fail when generated doc sections (knob table, "
             "vectorization report) are stale",
    )
    parser.add_argument(
        "--write-docs", action="store_true",
        help="regenerate the generated doc sections in place",
    )
    parser.add_argument(
        "--vectorization-report", nargs="?", const="-", default=None,
        metavar="PATH",
        help="emit the vectorization-readiness report to PATH ('-' for "
             "stdout)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-finding lines; only set the exit code",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)

    try:
        pass_names = [
            name.strip() for name in args.passes.split(",") if name.strip()
        ]
        passes = build_passes(pass_names)
    except KeyError as exc:
        print(
            f"colt-analyze: unknown pass {exc.args[0]!r} "
            f"(known: {', '.join(PASS_FACTORIES)})",
            file=sys.stderr,
        )
        return 2

    docs_mode = args.check_docs or args.write_docs
    paths = list(args.paths)
    repo_root = find_repo_root(paths[0] if paths else Path.cwd())
    if not paths:
        if not (docs_mode or args.vectorization_report):
            print("colt-analyze: no paths given", file=sys.stderr)
            return 2
        if repo_root is None:
            print(
                "colt-analyze: no pyproject.toml found above cwd; pass "
                "paths explicitly", file=sys.stderr,
            )
            return 2
        paths = [
            p for p in (repo_root / "src", repo_root / "tools")
            if p.exists()
        ]
    for path in paths:
        if not path.exists():
            print(f"colt-analyze: no such path: {path}", file=sys.stderr)
            return 2

    project = ProjectModel.from_paths(paths)
    findings = run_passes(project, passes)
    fingerprinted = fingerprint_findings(project, findings)

    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = args.baseline
        elif repo_root is not None:
            candidate = repo_root / DEFAULT_BASELINE
            if candidate.exists() or args.update_baseline:
                baseline_path = candidate
    baseline = (
        Baseline.load(baseline_path) if baseline_path is not None
        else Baseline()
    )

    if args.update_baseline:
        if baseline_path is None:
            print(
                "colt-analyze: --update-baseline needs --baseline (or a "
                "repo root)", file=sys.stderr,
            )
            return 2
        relpath_of = {m.path: m.relpath for m in project.modules}
        baseline.updated(fingerprinted, relpath_of).save(baseline_path)
        if not args.quiet:
            print(
                f"colt-analyze: baseline updated with "
                f"{len(fingerprinted)} finding(s) -> {baseline_path}"
            )
        return 0

    match = baseline.match(fingerprinted)

    exit_code = 0
    if match.new:
        exit_code = 1

    self_describing = {"json", "sarif"}
    if args.output_format in self_describing:
        document = (
            to_sarif(match.new, RULE_HELP)
            if args.output_format == "sarif"
            else to_json(match.new)
        )
        rendered = json.dumps(document, indent=2) + "\n"
        if args.output is not None:
            args.output.parent.mkdir(parents=True, exist_ok=True)
            args.output.write_text(rendered, encoding="utf-8")
        else:
            sys.stdout.write(rendered)
    else:
        lines = [finding.render() for finding, _ in match.new]
        if not args.quiet:
            for line in lines:
                print(line)
            summary = (
                f"colt-analyze: {len(match.new)} new finding(s), "
                f"{len(match.suppressed)} baselined"
            )
            if match.expired:
                summary += (
                    f", {len(match.expired)} expired baseline entr"
                    f"{'y' if len(match.expired) == 1 else 'ies'}"
                )
                for entry in match.expired:
                    print(
                        f"colt-analyze: expired baseline entry "
                        f"{entry.fingerprint} ({entry.rule} at "
                        f"{entry.path}:{entry.line}); run "
                        f"--update-baseline to drop it"
                    )
            if match.new or match.suppressed or match.expired:
                print(summary)
        if args.output is not None:
            args.output.parent.mkdir(parents=True, exist_ok=True)
            args.output.write_text(
                "".join(line + "\n" for line in lines), encoding="utf-8"
            )

    if args.vectorization_report is not None:
        report = render_report(analyze_project(project))
        if args.vectorization_report == "-":
            sys.stdout.write(report)
        else:
            target = Path(args.vectorization_report)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(report, encoding="utf-8")
            if not args.quiet:
                print(f"colt-analyze: vectorization report -> {target}")

    if docs_mode:
        if repo_root is None:
            print(
                "colt-analyze: docs modes need a repo root "
                "(pyproject.toml)", file=sys.stderr,
            )
            return 2
        if args.write_docs:
            written = write_docs(repo_root, project)
            if not args.quiet:
                for name in written:
                    print(f"colt-analyze: wrote {name}")
        if args.check_docs:
            problems = check_docs(repo_root, project)
            for problem in problems:
                print(f"colt-analyze: {problem}", file=sys.stderr)
            if problems:
                exit_code = max(exit_code, 1)

    return exit_code


if __name__ == "__main__":
    sys.exit(main())
