"""Project-wide static analysis for the CoLT reproduction repo.

``repro.analysis.lint`` enforces single-file determinism rules; this
package adds the *cross-file* checks that PRs 2-5 made necessary:

``model``
    One shared :class:`~repro.analysis.static.model.ProjectModel` --
    per-module ASTs, a symbol index, and a lightweight call graph with
    "reachable from a ProcessPool task / signal handler / monitor
    thread" coloring -- parsed once and handed to every pass.

``passes``
    The pass framework (:class:`Finding`, pragma suppression,
    fingerprints) the lint rules are refactored onto.

``registries``
    The single declarative source of truth for every ``COLT_*`` env
    knob, metric/counter name, fault site, and trace span.

``coherence`` / ``concurrency`` / ``hygiene`` / ``vectorization``
    The four cross-file analyzers (registry coherence, concurrency
    safety, exception hygiene, and the vectorization-readiness report
    that seeds ROADMAP item 1).

``cli``
    The ``colt-analyze`` entry point: text/JSON/SARIF output, a
    checked-in baseline so CI fails only on *new* findings, and
    ``--check-docs`` to keep generated doc sections fresh.
"""

from repro.analysis.static.model import ProjectModel, iter_python_files
from repro.analysis.static.passes import AnalysisPass, Finding, run_passes

__all__ = [
    "AnalysisPass",
    "Finding",
    "ProjectModel",
    "iter_python_files",
    "run_passes",
]
