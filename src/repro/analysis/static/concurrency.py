"""Concurrency safety: workers, signal handlers, and monitor threads.

Three rules, all driven by the project model's callback coloring:

``worker-global-mutation``
    A function reachable from a ProcessPool task/initializer rebinds a
    module-level name (``global X; X = ...``). Under the spawn start
    method that write never reaches the parent; under fork it silently
    diverges -- either way results stop being a function of config +
    seed. Intentional worker-side singleton resets are baselined.

``signal-handler-work``
    A function installed via ``signal.signal`` does more than flag
    setting / signal re-raising. CPython runs handlers between
    bytecodes on the main thread, so anything that allocates, locks, or
    logs can deadlock or corrupt state mid-campaign.

``unlocked-shared-state``
    A class that owns a ``threading.Lock`` *and* starts a
    ``Thread(target=self...)`` writes an attribute from the thread side
    without holding the lock, while the attribute is read from the
    non-thread side (or is part of the public surface). This is the
    watchdog's exact failure shape: escalation rungs read by the
    executor must be published under the lock.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.static.model import ModuleInfo, ProjectModel
from repro.analysis.static.passes import AnalysisPass, Finding

#: Calls a signal handler may make: flag setting, re-raising the signal
#: at the default disposition, and naming the signal for the record.
_SIGNAL_SAFE_ATTRS = frozenset(
    ("set", "clear", "is_set", "signal", "kill", "getpid", "Signals")
)
_SIGNAL_SAFE_NAMES = frozenset(("int", "str", "getattr"))


def _assigned_names(fn_node: ast.AST) -> Dict[str, int]:
    """Names rebound anywhere in the function, with first line number."""
    assigned: Dict[str, int] = {}
    for node in ast.walk(fn_node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            for element in ast.walk(target):
                if isinstance(element, ast.Name):
                    assigned.setdefault(element.id, node.lineno)
    return assigned


class ConcurrencyPass(AnalysisPass):
    name = "concurrency"
    rules = (
        "worker-global-mutation",
        "signal-handler-work",
        "unlocked-shared-state",
    )

    def run(self, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        findings.extend(self._check_worker_globals(project))
        findings.extend(self._check_signal_handlers(project))
        findings.extend(self._check_thread_state(project))
        return findings

    # -- worker-global-mutation ---------------------------------------

    def _check_worker_globals(self, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        colored = project.worker_reachable()
        for key in sorted(colored):
            info = project.functions[key]
            globals_declared: Set[str] = set()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Global):
                    globals_declared.update(node.names)
            if not globals_declared:
                continue
            assigned = _assigned_names(info.node)
            root = colored[key]
            for name in sorted(globals_declared):
                if name in assigned:
                    findings.append(Finding(
                        info.module.path, assigned[name], 0,
                        "worker-global-mutation",
                        f"'{key[1]}' rebinds module-level '{name}' and is "
                        f"reachable from pool-worker entry point "
                        f"'{root[1]}' ({root[0]}); parent-process state "
                        f"must not be written from workers",
                    ))
        return findings

    # -- signal-handler-work ------------------------------------------

    def _check_signal_handlers(self, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for info in project.signal_handlers():
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Attribute):
                    if func.attr in _SIGNAL_SAFE_ATTRS:
                        continue
                    described = func.attr
                elif isinstance(func, ast.Name):
                    if func.id in _SIGNAL_SAFE_NAMES:
                        continue
                    described = func.id
                else:
                    described = "<dynamic>"
                findings.append(Finding(
                    info.module.path, node.lineno, node.col_offset,
                    "signal-handler-work",
                    f"signal handler '{info.key[1]}' calls "
                    f"'{described}(...)'; handlers run between bytecodes "
                    f"on the main thread and should only set flags / "
                    f"re-raise the signal",
                ))
        return findings

    # -- unlocked-shared-state ----------------------------------------

    def _check_thread_state(self, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            if module.tree is None:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    findings.extend(self._check_class(module, node))
        return findings

    def _check_class(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> List[Finding]:
        lock_attrs = self._lock_attributes(cls)
        thread_entries = self._thread_targets(cls)
        if not lock_attrs or not thread_entries:
            return []
        methods: Dict[str, ast.AST] = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        thread_methods = self._thread_reachable(methods, thread_entries)
        nonthread_methods = {
            name for name in methods
            if name not in thread_methods and name != "__init__"
        }
        # Attributes touched by the non-thread surface of the class.
        outside_access: Set[str] = set()
        for name in nonthread_methods:
            outside_access.update(self._self_attributes(methods[name]))

        findings: List[Finding] = []
        for method_name in sorted(thread_methods):
            node = methods.get(method_name)
            if node is None:
                continue
            for write_attr, write_node in self._self_writes(node):
                if write_attr in lock_attrs:
                    continue
                shared = (
                    write_attr in outside_access
                    or not write_attr.startswith("_")
                )
                if not shared:
                    continue
                if self._under_lock(node, write_node, lock_attrs):
                    continue
                findings.append(Finding(
                    module.path, write_node.lineno, write_node.col_offset,
                    "unlocked-shared-state",
                    f"'{cls.name}.{method_name}' (monitor-thread side) "
                    f"writes 'self.{write_attr}' without holding "
                    f"'self.{sorted(lock_attrs)[0]}', but the attribute "
                    f"is read outside the thread; publish it under the "
                    f"lock",
                ))
        return findings

    @staticmethod
    def _lock_attributes(cls: ast.ClassDef) -> Set[str]:
        locks: Set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_lock_call = isinstance(value, ast.Call) and (
                (
                    isinstance(value.func, ast.Attribute)
                    and value.func.attr in ("Lock", "RLock")
                )
                or (
                    isinstance(value.func, ast.Name)
                    and value.func.id in ("Lock", "RLock")
                )
            )
            if not is_lock_call:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    locks.add(target.attr)
        return locks

    @staticmethod
    def _thread_targets(cls: ast.ClassDef) -> Set[str]:
        targets: Set[str] = set()
        for node in ast.walk(cls):
            if not (
                isinstance(node, ast.Call)
                and (
                    (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "Thread"
                    )
                    or (
                        isinstance(node.func, ast.Name)
                        and node.func.id == "Thread"
                    )
                )
            ):
                continue
            for keyword in node.keywords:
                if (
                    keyword.arg == "target"
                    and isinstance(keyword.value, ast.Attribute)
                    and isinstance(keyword.value.value, ast.Name)
                    and keyword.value.value.id == "self"
                ):
                    targets.add(keyword.value.attr)
        return targets

    @staticmethod
    def _thread_reachable(
        methods: Dict[str, ast.AST], entries: Set[str]
    ) -> Set[str]:
        reached = set(entry for entry in entries if entry in methods)
        queue = list(reached)
        while queue:
            current = queue.pop(0)
            for node in ast.walk(methods[current]):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in methods
                    and node.func.attr not in reached
                ):
                    reached.add(node.func.attr)
                    queue.append(node.func.attr)
        return reached

    @staticmethod
    def _self_attributes(fn_node: ast.AST) -> Set[str]:
        attrs: Set[str] = set()
        for node in ast.walk(fn_node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                attrs.add(node.attr)
        return attrs

    @staticmethod
    def _self_writes(fn_node: ast.AST) -> List[Tuple[str, ast.AST]]:
        writes: List[Tuple[str, ast.AST]] = []
        for node in ast.walk(fn_node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    writes.append((target.attr, node))
        return writes

    @staticmethod
    def _under_lock(
        fn_node: ast.AST, write_node: ast.AST, lock_attrs: Set[str]
    ) -> bool:
        """True when ``write_node`` sits inside ``with self.<lock>:``."""

        def contains(parent: ast.AST) -> bool:
            return any(child is write_node for child in ast.walk(parent))

        for node in ast.walk(fn_node):
            if not isinstance(node, ast.With):
                continue
            holds_lock = any(
                isinstance(item.context_expr, ast.Attribute)
                and isinstance(item.context_expr.value, ast.Name)
                and item.context_expr.value.id == "self"
                and item.context_expr.attr in lock_attrs
                for item in node.items
            )
            if holds_lock and contains(node):
                return True
        return False
