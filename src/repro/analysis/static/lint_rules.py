"""The determinism lint rules, as a pass on the shared framework.

The rule set, allow-lists, and messages are unchanged from the original
single-file ``repro.analysis.lint`` (see its docstring for the why of
each rule); only the plumbing moved: the AST visitor now emits
:class:`~repro.analysis.static.passes.Finding` objects and is driven by
:class:`LintPass` over a :class:`ProjectModel`, so the pragma and
baseline machinery are shared with every other analyzer.
"""

from __future__ import annotations

import ast
from typing import List, Sequence

from repro.analysis.static.model import ModuleInfo, ProjectModel
from repro.analysis.static.passes import AnalysisPass, Finding

#: Rule identifiers, in reporting order.
RULES = (
    "rng-module-state", "wall-clock", "mutable-default", "float-eq",
    "no-print",
)

#: Files (matched by path suffix) where wall-clock reads are legal:
#: CLI layers that print elapsed time but never serialize it, plus the
#: tracer (its timestamps describe the run; they never feed results)
#: and the watchdog (stall/memory monitoring is inherently about real
#: time; nothing it measures reaches a SimulationResult).
WALL_CLOCK_ALLOW = (
    "tools/lint.py",
    "tools/calibrate.py",
    "tools/bench_runner.py",
    "tools/obs_report.py",
    # Drives kill/resume subprocesses: polls for table files and
    # signal-delivery windows; nothing feeds into results.
    "tools/chaos_check.py",
    "repro/experiments/__main__.py",
    "repro/obs/trace.py",
    "repro/sim/watchdog.py",
    # Heartbeat deadlines: worker-lost detection is inherently about
    # real time; nothing it measures reaches a SimulationResult.
    "repro/sim/dist/coordinator.py",
)

#: Library files under ``repro/`` that are CLI front-ends in disguise
#: (runnable via ``python -m``/console scripts) and may print directly.
PRINT_ALLOW = (
    "repro/analysis/lint.py",
    "repro/analysis/determinism.py",
    # colt-analyze's output layer.
    "repro/analysis/static/cli.py",
)

#: The one module allowed to construct numpy Generators directly.
RNG_CONSTRUCTION_ALLOW = ("repro/common/rng.py",)

#: ``numpy.random`` attributes that are types/constructors handed around
#: as annotations or factories, not hidden module state.
_NP_RANDOM_TYPES = frozenset(
    ("Generator", "BitGenerator", "SeedSequence", "RandomState")
)

#: Wall-clock callables, keyed by module alias.
_TIME_FUNCS = frozenset(
    ("time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
     "monotonic_ns", "process_time", "process_time_ns")
)
_DATETIME_FUNCS = frozenset(("now", "utcnow", "today"))


def _path_matches(path: str, suffixes: Sequence[str]) -> bool:
    normalized = path.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in suffixes)


class _Visitor(ast.NodeVisitor):
    """Collects raw findings for one module (pragmas applied later)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.diagnostics: List[Finding] = []
        self._allow_wall_clock = _path_matches(path, WALL_CLOCK_ALLOW)
        self._allow_rng_construction = _path_matches(
            path, RNG_CONSTRUCTION_ALLOW
        )
        normalized = path.replace("\\", "/")
        self._check_print = (
            "repro/" in normalized
            and not normalized.endswith("__main__.py")
            and not _path_matches(path, PRINT_ALLOW)
        )
        # module-alias tracking: which local names refer to numpy /
        # time / datetime, so aliased imports cannot dodge the rules.
        self._numpy_aliases: set = set()
        self._time_aliases: set = set()
        self._datetime_mod_aliases: set = set()
        self._datetime_cls_aliases: set = set()

    # -- helpers -------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.diagnostics.append(
            Finding(self.path, node.lineno, node.col_offset, rule, message)
        )

    # -- imports (rng-module-state + alias bookkeeping) ----------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            local = (alias.asname or alias.name).split(".")[0]
            if root == "random":
                self._report(
                    node,
                    "rng-module-state",
                    "the stdlib 'random' module is global mutable state; "
                    "draw randomness from repro.common.rng.SeedSequencer",
                )
            elif root == "numpy":
                self._numpy_aliases.add(local)
            elif root == "time":
                self._time_aliases.add(local)
            elif root == "datetime":
                self._datetime_mod_aliases.add(local)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        root = module.split(".")[0]
        if root == "random":
            self._report(
                node,
                "rng-module-state",
                "importing from 'random' pulls global RNG state; use "
                "repro.common.rng.SeedSequencer",
            )
        elif module in ("numpy.random", "numpy"):
            for alias in node.names:
                if module == "numpy" and alias.name == "random":
                    self._numpy_aliases.add(alias.asname or "random")
                if module == "numpy.random":
                    self._check_np_random_name(node, alias.name)
        elif root == "time" and not self._allow_wall_clock:
            for alias in node.names:
                if alias.name in _TIME_FUNCS:
                    self._report(
                        node,
                        "wall-clock",
                        f"'from time import {alias.name}' reads wall-clock "
                        f"time; simulation results must not depend on it",
                    )
        elif root == "datetime":
            for alias in node.names:
                if alias.name == "datetime":
                    self._datetime_cls_aliases.add(alias.asname or alias.name)
                if alias.name == "date":
                    self._datetime_cls_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def _check_np_random_name(self, node: ast.AST, name: str) -> None:
        if name in _NP_RANDOM_TYPES:
            return
        if name == "default_rng" and self._allow_rng_construction:
            return
        self._report(
            node,
            "rng-module-state",
            f"'numpy.random.{name}' bypasses SeedSequencer; request a "
            f"named stream instead",
        )

    # -- attribute access (np.random.* / time.* / datetime.*) ----------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # np.random.<name>
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in self._numpy_aliases
            and not isinstance(node.ctx, ast.Store)
        ):
            self._check_np_random_name(node, node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self._check_print
            and isinstance(func, ast.Name)
            and func.id == "print"
        ):
            self._report(
                node,
                "no-print",
                "print() in library code bypasses --quiet/--verbose; "
                "log via repro.obs.logging.get_logger(__name__)",
            )
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner, attr = func.value.id, func.attr
            if (
                owner in self._time_aliases
                and attr in _TIME_FUNCS
                and not self._allow_wall_clock
            ):
                self._report(
                    node,
                    "wall-clock",
                    f"'{owner}.{attr}()' reads wall-clock time; simulation "
                    f"results must not depend on it",
                )
            if (
                owner in self._datetime_cls_aliases
                and attr in _DATETIME_FUNCS
                and not self._allow_wall_clock
            ):
                self._report(
                    node,
                    "wall-clock",
                    f"'{owner}.{attr}()' reads wall-clock time; simulation "
                    f"results must not depend on it",
                )
        # datetime.datetime.now() / datetime.date.today()
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in self._datetime_mod_aliases
            and func.value.attr in ("datetime", "date")
            and func.attr in _DATETIME_FUNCS
            and not self._allow_wall_clock
        ):
            self._report(
                node,
                "wall-clock",
                f"'datetime.{func.value.attr}.{func.attr}()' reads "
                f"wall-clock time; simulation results must not depend on it",
            )
        self.generic_visit(node)

    # -- mutable defaults ----------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable_literal(default):
                self._report(
                    default,
                    "mutable-default",
                    f"mutable default argument in '{node.name}()' is shared "
                    f"across calls; default to None and build inside",
                )

    @staticmethod
    def _is_mutable_literal(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray")
            and not node.args
            and not node.keywords
        )

    # -- float equality ------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if self._is_float_constant(left) or self._is_float_constant(right):
                self._report(
                    node,
                    "float-eq",
                    "'==' against a float constant depends on rounding; "
                    "compare with a tolerance (math.isclose)",
                )
                break
        self.generic_visit(node)

    @staticmethod
    def _is_float_constant(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        return (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.UAdd, ast.USub))
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        )


class LintPass(AnalysisPass):
    """The five determinism rules plus syntax-error reporting."""

    name = "lint"
    rules = RULES + ("syntax-error",)

    def run(self, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            findings.extend(self._run_module(module))
        return findings

    @staticmethod
    def _run_module(module: ModuleInfo) -> List[Finding]:
        if module.tree is None:
            line, col, message = module.syntax_error or (1, 0, "syntax error")
            return [Finding(module.path, line, col, "syntax-error", message)]
        visitor = _Visitor(module.path)
        visitor.visit(module.tree)
        return visitor.diagnostics
