"""The single declarative registry of the repo's named surfaces.

Everything that crosses a process, module, or tooling boundary by
*name* is declared here once: ``COLT_*``/``REPRO_*`` environment knobs,
metric instruments and ``bind_counterset`` prefixes, fault-injection
sites, and trace span/instant/counter-track names. The registry-
coherence pass extracts the same names from the AST and diffs the two
directions:

* a name used in code but absent here is an **undeclared** finding --
  someone grew a surface without registering (and documenting) it;
* a name declared here but absent from its consumer module is a
  **dead** finding -- the knob/metric/span was removed or renamed and
  the registry (and docs generated from it) went stale.

``colt-analyze --write-docs`` renders the knob table below into
DESIGN.md / README.md, so this module is also the source of truth for
user-facing documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class EnvKnob:
    """One environment variable read by the repo."""

    name: str
    default: str
    consumer: str  # repo-relative module that reads it
    cli_flag: Optional[str]
    description: str


@dataclass(frozen=True)
class MetricDecl:
    """One metric instrument, or a ``bind_counterset`` name prefix.

    ``reported`` declares whether the human run-report
    (``repro/obs/report.py``) is expected to read it; instruments that
    only ship in ``metrics.json`` snapshots set it to False with the
    reason in ``description``.
    """

    name: str
    kind: str  # "counter" | "gauge" | "histogram" | "counterset-prefix"
    module: str  # repo-relative module that emits it
    reported: bool
    description: str


@dataclass(frozen=True)
class SpanDecl:
    """One trace event name: span, instant, counter track, or prefix."""

    name: str
    kind: str  # "span" | "instant" | "counter-track" | "span-prefix"
    module: str
    description: str


@dataclass(frozen=True)
class FaultSiteDecl:
    """One fault-injection site (``kind@site:index`` grammar)."""

    name: str
    module: str  # repo-relative module that fires it
    description: str


KNOBS: Tuple[EnvKnob, ...] = (
    EnvKnob(
        "COLT_SANITIZE", "off", "repro/analysis/sanitizers.py", None,
        "enable every runtime sanitizer (TLB/page-table/buddy "
        "cross-checks) during simulation",
    ),
    EnvKnob(
        "COLT_SANITIZE_EVERY", "4096", "repro/analysis/sanitizers.py", None,
        "events between full-structure sanitizer scans",
    ),
    EnvKnob(
        "COLT_TRACE", "off", "repro/obs/trace.py", "--trace",
        "enable the in-process tracer (Chrome-trace event ring)",
    ),
    EnvKnob(
        "COLT_TRACE_BUFFER", "262144", "repro/obs/trace.py", None,
        "trace ring-buffer capacity, in events",
    ),
    EnvKnob(
        "COLT_TRACE_SAMPLE", "64", "repro/obs/trace.py", None,
        "keep every Nth high-rate instant event (TLB instants)",
    ),
    EnvKnob(
        "COLT_PROFILE", "off", "repro/obs/trace.py", "--profile",
        "metrics registry + snapshots without full tracing",
    ),
    EnvKnob(
        "COLT_RESULT_CACHE", ".colt-cache", "repro/sim/store.py",
        "--cache-dir / --no-cache",
        "result-store root; empty or '0' disables the store",
    ),
    EnvKnob(
        "COLT_FAULTS", "(unset)", "repro/sim/faults.py", None,
        "fault-injection plan, ';'-separated kind@site:index clauses",
    ),
    EnvKnob(
        "COLT_RETRIES", "2", "repro/sim/resilience.py", "--retries",
        "resubmissions allowed per failed task (0 disables retrying)",
    ),
    EnvKnob(
        "COLT_TASK_TIMEOUT", "(none)", "repro/sim/resilience.py",
        "--task-timeout",
        "per-task deadline in seconds for pooled execution",
    ),
    EnvKnob(
        "COLT_BACKOFF", "0.05", "repro/sim/resilience.py", None,
        "base sleep in seconds before the first retry "
        "(deterministic exponential backoff)",
    ),
    EnvKnob(
        "COLT_STALL_TIMEOUT", "0 (disabled)", "repro/sim/watchdog.py",
        "--stall-timeout",
        "seconds without task completion before the stall watchdog "
        "dumps stacks and requeues",
    ),
    EnvKnob(
        "COLT_MEM_BUDGET", "0 (disabled)", "repro/sim/watchdog.py",
        "--mem-budget",
        "RSS budget in MiB; breaches climb the degradation ladder",
    ),
    EnvKnob(
        "COLT_DUMP_DIR", ".colt-cache/dumps", "repro/sim/watchdog.py",
        "--dump-dir",
        "directory for watchdog stall / task-deadline stack dumps",
    ),
    EnvKnob(
        "COLT_ENGINE", "scalar", "repro/sim/engine/__init__.py",
        "--engine",
        "replay engine: 'scalar' oracle or epoch-batched 'vector' "
        "(bit-identical results)",
    ),
    EnvKnob(
        "COLT_EPOCH_MAX", "4096", "repro/sim/engine/__init__.py", None,
        "vector engine: max accesses per epoch coverage scan",
    ),
    EnvKnob(
        "COLT_WORKERS", "(unset)", "repro/sim/dist/__init__.py",
        "--workers",
        "shard scenario groups across N worker subprocesses, each "
        "with its own store shard and write-ahead shard journal",
    ),
    EnvKnob(
        "COLT_HEARTBEAT_TIMEOUT", "30", "repro/sim/dist/__init__.py",
        None,
        "seconds of worker silence before the distributed "
        "coordinator declares it lost and reassigns its shard",
    ),
    EnvKnob(
        "COLT_TELEMETRY_PORT", "(unset)", "repro/obs/serve.py",
        "--telemetry-port",
        "serve /metrics, /progress and /healthz over HTTP on this "
        "127.0.0.1 port while a run is in flight (0 = ephemeral)",
    ),
    EnvKnob(
        "COLT_HISTORY", "on", "repro/obs/history.py", None,
        "set to 0/off to skip appending the per-run "
        "colt-history-v1 record to <cache>/history/history.jsonl",
    ),
    EnvKnob(
        "REPRO_SCALE", "default", "repro/experiments/scale.py", None,
        "experiment scale preset: quick / default / full",
    ),
)


METRICS: Tuple[MetricDecl, ...] = (
    MetricDecl(
        "colt_coalesce_run_length", "histogram", "repro/obs/hooks.py", True,
        "translations per TLB fill, by design (1 = uncoalesced)",
    ),
    MetricDecl(
        "colt_faults_injected", "counter", "repro/sim/faults.py", True,
        "faults fired by the COLT_FAULTS plan, by kind/site",
    ),
    MetricDecl(
        "colt_buddy_free_pages", "gauge", "repro/obs/hooks.py", False,
        "free 4KB frames; report reads the 'buddy' trace counter track "
        "instead, gauge ships in metrics.json only",
    ),
    MetricDecl(
        "colt_buddy_largest_free_order", "gauge", "repro/obs/hooks.py", False,
        "largest free buddy order; metrics.json only (see above)",
    ),
    MetricDecl(
        "colt_store", "counterset-prefix", "repro/sim/store.py", True,
        "result-store hits/misses/evictions/saves/quarantines/...",
    ),
    MetricDecl(
        "colt_resilience", "counterset-prefix", "repro/sim/runner.py", True,
        "executor tasks/retries/timeouts/rebuilds/downgrades/failures",
    ),
    MetricDecl(
        "colt_campaign", "counterset-prefix", "repro/sim/campaign.py", True,
        "campaign experiments started/completed/skipped/interrupted",
    ),
    MetricDecl(
        "colt_campaign_demotions", "counter", "repro/sim/campaign.py",
        False,
        "in-flight experiments demoted to pending on resume; also in "
        "the colt_campaign counterset, standalone counter ships in "
        "metrics.json only",
    ),
    MetricDecl(
        "colt_dist", "counterset-prefix",
        "repro/sim/dist/coordinator.py", False,
        "distributed coordinator tallies (workers/merged/lost/"
        "desyncs/reassigned/inline/synced); metrics.json only",
    ),
    MetricDecl(
        "colt_watchdog", "counterset-prefix", "repro/sim/watchdog.py", True,
        "stalls, stack dumps, memory breaches, ladder escalations",
    ),
    MetricDecl(
        "colt_watchdog_rss_bytes", "gauge", "repro/sim/watchdog.py", False,
        "last sampled RSS of the process tree; live consumers are "
        "/metrics and /progress, gauge ships in metrics.json only",
    ),
    MetricDecl(
        "colt_watchdog_degradation", "gauge", "repro/sim/watchdog.py",
        False,
        "memory-pressure degradation rung (0 none .. 3 abort); "
        "/metrics + metrics.json only",
    ),
    MetricDecl(
        "colt_kernel", "counterset-prefix", "repro/obs/hooks.py", False,
        "kernel allocation/THP counters; metrics.json only",
    ),
    MetricDecl(
        "colt_compaction", "counterset-prefix", "repro/osmem/compaction.py",
        False, "compaction migrations/runs; metrics.json only",
    ),
    MetricDecl(
        "colt_thp", "counterset-prefix", "repro/osmem/thp.py", False,
        "THP promotions/collapses; metrics.json only",
    ),
    MetricDecl(
        "colt_buddy", "counterset-prefix", "repro/osmem/buddy.py", False,
        "buddy allocator splits/merges; metrics.json only",
    ),
    MetricDecl(
        "colt_mmu", "counterset-prefix", "repro/core/mmu.py", False,
        "per-design MMU/TLB counters; consumed via SimulationResult "
        "snapshots, metrics.json only",
    ),
)


SPANS: Tuple[SpanDecl, ...] = (
    SpanDecl("kernel.boot", "span", "repro/sim/scenario.py",
             "kernel construction for one scenario"),
    SpanDecl("aging", "span", "repro/sim/scenario.py",
             "fragmentation aging phase"),
    SpanDecl("layout", "span", "repro/sim/scenario.py",
             "benchmark address-space layout"),
    SpanDecl("trace.generate", "span", "repro/sim/scenario.py",
             "access-trace generation"),
    SpanDecl("capture", "span", "repro/sim/scenario.py",
             "scenario capture (walk log recording)"),
    SpanDecl("capture.dedup", "span", "repro/sim/scenario.py",
             "walk-record deduplication"),
    SpanDecl("replay", "span", "repro/sim/replay.py",
             "captured-scenario replay under one design"),
    SpanDecl("simulate", "span", "repro/sim/system.py",
             "monolithic simulation run"),
    SpanDecl("compaction.run", "span", "repro/osmem/compaction.py",
             "memory compaction pass"),
    SpanDecl("store.get", "span", "repro/sim/store.py",
             "result-store lookup"),
    SpanDecl("store.put", "span", "repro/sim/store.py",
             "result-store save"),
    SpanDecl("runner.run_batch", "span", "repro/sim/runner.py",
             "one capture/replay batch through the executor"),
    SpanDecl("resilience.pool_rebuild", "span", "repro/sim/resilience.py",
             "broken-pool teardown and rebuild"),
    SpanDecl("resilience.serial_downgrade", "span",
             "repro/sim/resilience.py", "pool abandoned, serial fallback"),
    SpanDecl("resilience.retry", "span", "repro/sim/resilience.py",
             "one task resubmission"),
    SpanDecl("dist.run", "span", "repro/sim/dist/coordinator.py",
             "one distributed batch: shard, dispatch, merge"),
    SpanDecl("campaign.experiment", "span", "repro/sim/campaign.py",
             "one experiment within a campaign"),
    SpanDecl("campaign.shutdown", "span", "repro/sim/campaign.py",
             "signal-initiated campaign shutdown"),
    SpanDecl("experiment.", "span-prefix", "repro/experiments/registry.py",
             "per-experiment spans, suffixed by experiment id"),
    SpanDecl("tlb.miss", "instant", "repro/obs/hooks.py",
             "sampled L1 TLB miss"),
    SpanDecl("tlb.fill", "instant", "repro/obs/hooks.py",
             "sampled TLB fill with coalescing run length"),
    SpanDecl("tlb.superpage_fill", "instant", "repro/obs/hooks.py",
             "sampled superpage fill"),
    SpanDecl("tlb.shootdown", "instant", "repro/obs/hooks.py",
             "sampled shootdown invalidation"),
    SpanDecl("watchdog.stall", "instant", "repro/sim/watchdog.py",
             "stall watchdog fired"),
    SpanDecl("watchdog.mem_pressure", "instant", "repro/sim/watchdog.py",
             "memory watchdog ladder escalation"),
    SpanDecl("buddy", "counter-track", "repro/obs/hooks.py",
             "buddy-allocator fragmentation timeline"),
)


FAULT_SITES: Tuple[FaultSiteDecl, ...] = (
    FaultSiteDecl("capture", "repro/sim/runner.py",
                  "worker-side scenario capture task"),
    FaultSiteDecl("replay", "repro/sim/runner.py",
                  "worker-side replay task"),
    FaultSiteDecl("campaign", "repro/sim/campaign.py",
                  "between experiments of a campaign"),
    FaultSiteDecl("store.write", "repro/sim/faults.py",
                  "result-store serialization (torn/corrupt writes)"),
    FaultSiteDecl("dist", "repro/sim/dist/worker.py",
                  "distributed worker lifecycle, indexed by worker id "
                  "(worker-lost / shard-desync)"),
    FaultSiteDecl("dist.journal", "repro/sim/dist/shard.py",
                  "shard write-ahead journal writes (torn/corrupt)"),
)
