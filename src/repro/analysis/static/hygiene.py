"""Exception hygiene in the resilience / store / campaign paths.

The fault-tolerance modules are exactly where a swallowed exception is
most expensive: a bare ``except`` that neither re-raises, increments a
counter, nor quarantines turns an injected fault (or a real crash) into
a silent wrong answer, defeating the entire chaos-CI surface.

``overbroad-except``
    ``except:`` / ``except Exception`` / ``except BaseException`` whose
    handler shows no mitigation: no re-raise, no counter increment, no
    quarantine, no logger call, and no binding of the exception for a
    deferred raise.

``silent-except``
    Any handler -- however narrow -- whose body is nothing but
    ``pass`` / ``continue`` / a bare or constant ``return``. Narrow
    silent swallows are legal where documented (best-effort fsync,
    ``/proc`` probes); those carry baseline entries with the one-line
    justification, so the *next* silent swallow still gets flagged.
"""

from __future__ import annotations

import ast
import re
from typing import List, Sequence

from repro.analysis.static.model import ProjectModel
from repro.analysis.static.passes import AnalysisPass, Finding

#: Modules in scope (path suffix match): everything under sim/ plus the
#: atomic-write helper the store depends on.
SCOPE = (
    "repro/sim/",
    "repro/common/atomicio.py",
)

_BROAD_NAMES = frozenset(("Exception", "BaseException"))
_LOGGER_NAME = re.compile(r"(?i)^_?log(ger)?$")
_LOG_METHODS = frozenset(
    ("debug", "info", "warning", "error", "exception", "critical")
)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    candidates: List[ast.expr] = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in candidates:
        if isinstance(node, ast.Name) and node.id in _BROAD_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _BROAD_NAMES:
            return True
    return False


def _is_mitigated(handler: ast.ExceptHandler) -> bool:
    bound = handler.name
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            attr = node.func.attr
            if attr in ("increment", "inc"):
                return True
            if "quarantine" in attr:
                return True
            if attr in _LOG_METHODS and isinstance(
                node.func.value, ast.Name
            ) and _LOGGER_NAME.match(node.func.value.id):
                return True
        # Deferred raise: the bound exception is stored for later.
        if (
            bound is not None
            and isinstance(node, ast.Assign)
            and any(
                isinstance(n, ast.Name) and n.id == bound
                for n in ast.walk(node.value)
            )
        ):
            return True
    return False


def _is_silent(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Return) and (
            stmt.value is None or isinstance(stmt.value, ast.Constant)
        ):
            continue
        return False
    return True


class ExceptionHygienePass(AnalysisPass):
    name = "hygiene"
    rules = ("overbroad-except", "silent-except")

    def __init__(self, scope: Sequence[str] = SCOPE) -> None:
        self.scope = tuple(scope)

    def _in_scope(self, relpath: str) -> bool:
        norm = relpath.replace("\\", "/")
        return any(
            norm.endswith(suffix) or (suffix.endswith("/") and suffix in norm)
            for suffix in self.scope
        )

    def run(self, project: ProjectModel) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            if module.tree is None or not self._in_scope(module.relpath):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                broad, mitigated = _is_broad(node), _is_mitigated(node)
                caught = (
                    ast.unparse(node.type)
                    if node.type is not None
                    else "everything"
                )
                if broad and not mitigated:
                    findings.append(Finding(
                        module.path, node.lineno, node.col_offset,
                        "overbroad-except",
                        f"handler catches {caught} but neither re-raises, "
                        f"increments a counter, quarantines, nor logs; "
                        f"faults disappearing here defeat the resilience "
                        f"machinery",
                    ))
                elif _is_silent(node):
                    findings.append(Finding(
                        module.path, node.lineno, node.col_offset,
                        "silent-except",
                        f"handler for {caught} swallows the exception "
                        f"silently (body is only pass/return); count, log, "
                        f"or baseline it with a justification",
                    ))
        return findings
