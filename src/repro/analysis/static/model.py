"""Shared project model: ASTs, symbol index, and a colored call graph.

Cross-file passes need to agree on what the project *is*; parsing the
tree once here keeps ``colt-analyze`` linear in repo size no matter how
many passes run. The model provides:

* one :class:`ModuleInfo` per file -- source, split lines, AST (or the
  captured syntax error), a dotted module name, and the import table
  mapping local names to the modules/symbols they refer to;
* a function index keyed by ``(module name, qualified name)``;
* a heuristic call graph (direct calls, ``self.method()``, imported
  names, ``Class.method`` on imported classes) plus the *callback
  registrations* that matter for concurrency coloring:
  ``TaskSpec(fn=...)`` / ``pool.submit(task, ...)`` / ``initializer=``
  (pool-worker roots), ``threading.Thread(target=...)`` (monitor-thread
  roots) and ``signal.signal(sig, handler)`` (signal-handler roots);
* :meth:`ProjectModel.worker_reachable` -- a BFS coloring answering
  "can this function run inside a ProcessPool worker?", which the
  concurrency pass uses to flag writes to parent-process module state.

The resolver is deliberately conservative: an attribute call on an
arbitrary object (``engine.prepare()``) resolves to nothing rather than
to every method of that name, so reachability under-approximates --
findings it produces are real, at the cost of missing dynamic dispatch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: A function's identity: (dotted module name, qualified name).
FuncKey = Tuple[str, str]


def normalize_path(path: object) -> str:
    return str(path).replace("\\", "/")


def module_name_for(path: str) -> str:
    """Dotted module name for a file path (best effort).

    ``.../src/repro/sim/runner.py`` -> ``repro.sim.runner``;
    ``tools/lint.py`` -> ``tools.lint``; anything unrecognizable keeps
    its stem. ``__init__.py`` maps to its package.
    """
    norm = normalize_path(path)
    if norm.endswith(".py"):
        norm = norm[:-3]
    parts = [part for part in norm.split("/") if part and part != "."]
    if "src" in parts:
        last_src = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[last_src + 1:]
    else:
        for root in ("repro", "tools", "tests"):
            if root in parts:
                parts = parts[parts.index(root):]
                break
        else:
            parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<module>"


def repo_relative(path: Path) -> str:
    """Path relative to the enclosing repo root (pyproject.toml), if any."""
    resolved = path.resolve()
    for ancestor in resolved.parents:
        if (ancestor / "pyproject.toml").exists():
            return normalize_path(resolved.relative_to(ancestor))
    return normalize_path(path)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (directories recurse, sorted)."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


@dataclass
class ModuleInfo:
    """One parsed module and everything passes need to know about it."""

    path: str
    relpath: str
    name: str
    source: str
    lines: List[str]
    tree: Optional[ast.Module]
    syntax_error: Optional[Tuple[int, int, str]] = None
    #: local name -> (module, symbol); symbol is None for module imports.
    imports: Dict[str, Tuple[str, Optional[str]]] = field(default_factory=dict)

    def path_matches(self, suffixes: Sequence[str]) -> bool:
        norm = normalize_path(self.relpath)
        return any(norm.endswith(suffix) for suffix in suffixes)


@dataclass
class FunctionInfo:
    """A module- or class-level function definition."""

    key: FuncKey
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    module: ModuleInfo
    class_name: Optional[str] = None


@dataclass(frozen=True)
class CallbackRoot:
    """A function registered to run on a pool worker / thread / signal."""

    key: FuncKey
    kind: str  # "worker" | "thread" | "signal"
    registered_at: Tuple[str, int]  # (path, line) of the registration


def _collect_imports(tree: ast.Module) -> Dict[str, Tuple[str, Optional[str]]]:
    table: Dict[str, Tuple[str, Optional[str]]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = (alias.name, None)
                else:
                    root = alias.name.split(".")[0]
                    table[root] = (root, None)
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = (node.module, alias.name)
    return table


class _FunctionCollector(ast.NodeVisitor):
    """Indexes module- and class-level functions (not nested defs)."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.functions: List[FunctionInfo] = []
        self._class_stack: List[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _add(self, node: ast.AST, name: str) -> None:
        class_name = self._class_stack[-1] if self._class_stack else None
        qualname = (
            f"{'.'.join(self._class_stack)}.{name}"
            if self._class_stack
            else name
        )
        self.functions.append(
            FunctionInfo(
                key=(self.module.name, qualname),
                node=node,
                module=self.module,
                class_name=class_name,
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._add(node, node.name)
        # Nested defs attribute their calls to the enclosing function.

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._add(node, node.name)


class ProjectModel:
    """All modules of one analysis run, parsed once."""

    def __init__(self, modules: List[ModuleInfo]) -> None:
        self.modules = modules
        self.by_name: Dict[str, ModuleInfo] = {m.name: m for m in modules}
        self._by_path: Dict[str, ModuleInfo] = {}
        for module in modules:
            self._by_path[normalize_path(module.path)] = module
            self._by_path.setdefault(normalize_path(module.relpath), module)
        self.functions: Dict[FuncKey, FunctionInfo] = {}
        for module in modules:
            if module.tree is None:
                continue
            collector = _FunctionCollector(module)
            collector.visit(module.tree)
            for info in collector.functions:
                self.functions[info.key] = info
        self.calls: Dict[FuncKey, Set[FuncKey]] = {}
        self.roots: List[CallbackRoot] = []
        for module in modules:
            if module.tree is not None:
                self._index_module(module)

    # -- construction --------------------------------------------------

    @classmethod
    def from_sources(
        cls, sources: Sequence[Tuple[str, str]]
    ) -> "ProjectModel":
        """Model from in-memory ``(path, source)`` pairs (tests, stdin)."""
        modules = []
        for path, source in sources:
            modules.append(cls._parse(path, normalize_path(path), source))
        return cls(modules)

    @classmethod
    def from_paths(cls, paths: Iterable[Path]) -> "ProjectModel":
        modules = []
        for file_path in iter_python_files(paths):
            source = file_path.read_text(encoding="utf-8")
            modules.append(
                cls._parse(str(file_path), repo_relative(file_path), source)
            )
        return cls(modules)

    @staticmethod
    def _parse(path: str, relpath: str, source: str) -> ModuleInfo:
        name = module_name_for(relpath)
        lines = source.splitlines()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return ModuleInfo(
                path=path,
                relpath=relpath,
                name=name,
                source=source,
                lines=lines,
                tree=None,
                syntax_error=(
                    exc.lineno or 1, exc.offset or 0, exc.msg or "syntax error"
                ),
            )
        return ModuleInfo(
            path=path,
            relpath=relpath,
            name=name,
            source=source,
            lines=lines,
            tree=tree,
            imports=_collect_imports(tree),
        )

    # -- lookups -------------------------------------------------------

    def module_for_path(self, path: object) -> Optional[ModuleInfo]:
        return self._by_path.get(normalize_path(path))

    def modules_matching(self, suffixes: Sequence[str]) -> List[ModuleInfo]:
        return [m for m in self.modules if m.path_matches(suffixes)]

    # -- call graph ----------------------------------------------------

    def _resolve_callable(
        self,
        node: ast.AST,
        module: ModuleInfo,
        class_name: Optional[str],
    ) -> Optional[FuncKey]:
        """Best-effort resolution of a callable expression to a FuncKey."""
        if isinstance(node, ast.Name):
            key = (module.name, node.id)
            if key in self.functions:
                return key
            imported = module.imports.get(node.id)
            if imported is not None and imported[1] is not None:
                target = (imported[0], imported[1])
                if target in self.functions:
                    return target
            return None
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            owner = node.value.id
            if owner == "self" and class_name is not None:
                key = (module.name, f"{class_name}.{node.attr}")
                if key in self.functions:
                    return key
                return None
            imported = module.imports.get(owner)
            if imported is not None:
                imported_module, symbol = imported
                if symbol is None:
                    target = (imported_module, node.attr)
                else:
                    # Class imported by name: Class.method / classmethods.
                    target = (imported_module, f"{symbol}.{node.attr}")
                if target in self.functions:
                    return target
            # Same-module Class.method.
            key = (module.name, f"{owner}.{node.attr}")
            if key in self.functions:
                return key
        return None

    def _index_module(self, module: ModuleInfo) -> None:
        assert module.tree is not None
        for info in (
            f for f in self.functions.values() if f.module is module
        ):
            edges = self.calls.setdefault(info.key, set())
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    target = self._resolve_callable(
                        node.func, module, info.class_name
                    )
                    if target is not None and target != info.key:
                        edges.add(target)
        # Callback registrations can appear anywhere (incl. module level).
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                self._collect_roots(node, module)

    def _enclosing_class(
        self, module: ModuleInfo, node: ast.Call
    ) -> Optional[str]:
        """Class whose body (transitively) contains ``node``, if any."""
        assert module.tree is not None
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef):
                for child in ast.walk(cls):
                    if child is node:
                        return cls.name
        return None

    def _collect_roots(self, node: ast.Call, module: ModuleInfo) -> None:
        func = node.func
        func_name = None
        if isinstance(func, ast.Name):
            func_name = func.id
        elif isinstance(func, ast.Attribute):
            func_name = func.attr

        candidates: List[Tuple[ast.AST, str]] = []
        if func_name == "TaskSpec":
            for keyword in node.keywords:
                if keyword.arg == "fn":
                    candidates.append((keyword.value, "worker"))
        if func_name == "submit" and node.args:
            candidates.append((node.args[0], "worker"))
        for keyword in node.keywords:
            if keyword.arg == "initializer":
                candidates.append((keyword.value, "worker"))
        if func_name == "Thread":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    candidates.append((keyword.value, "thread"))
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "signal"
            and isinstance(func.value, ast.Name)
            and func.value.id == "signal"
            and len(node.args) >= 2
        ):
            candidates.append((node.args[1], "signal"))

        if not candidates:
            return
        class_name = self._enclosing_class(module, node)
        for expr, kind in candidates:
            key = self._resolve_callable(expr, module, class_name)
            if key is not None:
                self.roots.append(
                    CallbackRoot(
                        key=key,
                        kind=kind,
                        registered_at=(module.path, node.lineno),
                    )
                )

    def reachable_from(
        self, roots: Sequence[FuncKey]
    ) -> Dict[FuncKey, FuncKey]:
        """BFS over call edges; maps each reached function to its root."""
        colored: Dict[FuncKey, FuncKey] = {}
        queue: List[FuncKey] = []
        for root in roots:
            if root in self.functions and root not in colored:
                colored[root] = root
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for target in sorted(self.calls.get(current, ())):
                if target not in colored:
                    colored[target] = colored[current]
                    queue.append(target)
        return colored

    def worker_reachable(self) -> Dict[FuncKey, FuncKey]:
        """Functions that can execute inside a ProcessPool worker."""
        return self.reachable_from(
            [root.key for root in self.roots if root.kind == "worker"]
        )

    def signal_handlers(self) -> List[FunctionInfo]:
        """Functions registered as OS signal handlers."""
        seen: Set[FuncKey] = set()
        handlers: List[FunctionInfo] = []
        for root in self.roots:
            if root.kind == "signal" and root.key not in seen:
                seen.add(root.key)
                handlers.append(self.functions[root.key])
        return handlers
