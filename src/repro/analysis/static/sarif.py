"""SARIF 2.1.0 and JSON serialization for findings.

SARIF is the interchange format CI artifact viewers and code-scanning
UIs consume; the subset emitted here (tool driver + rules + results
with physical locations and fingerprints) round-trips losslessly
through :func:`from_sarif`, which the test suite asserts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.static.passes import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "colt-analyze"


def to_sarif(
    findings: Sequence[Tuple[Finding, Optional[str]]],
    rule_help: Optional[Dict[str, str]] = None,
) -> Dict[str, object]:
    """SARIF document for ``(finding, fingerprint-or-None)`` pairs."""
    rule_help = rule_help or {}
    rule_ids = sorted({finding.rule for finding, _ in findings})
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": rule_help.get(rule_id, rule_id),
            },
        }
        for rule_id in rule_ids
    ]
    results: List[Dict[str, object]] = []
    for finding, fingerprint in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if fingerprint is not None:
            result["partialFingerprints"] = {"coltAnalyze/v1": fingerprint}
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def from_sarif(document: Dict[str, object]) -> List[Finding]:
    """Findings back out of a :func:`to_sarif` document."""
    findings: List[Finding] = []
    for run in document.get("runs", []):  # type: ignore[union-attr]
        for result in run.get("results", []):
            location = result["locations"][0]["physicalLocation"]
            region = location.get("region", {})
            findings.append(
                Finding(
                    path=location["artifactLocation"]["uri"],
                    line=int(region.get("startLine", 1)),
                    col=int(region.get("startColumn", 1)) - 1,
                    rule=str(result.get("ruleId", "")),
                    message=str(result["message"]["text"]),
                )
            )
    return findings


def to_json(
    findings: Sequence[Tuple[Finding, Optional[str]]],
) -> Dict[str, object]:
    """Plain-JSON document (``colt-analyze --format json``)."""
    entries = []
    for finding, fingerprint in findings:
        entry = finding.to_dict()
        entry["fingerprint"] = fingerprint
        entries.append(entry)
    return {
        "tool": TOOL_NAME,
        "version": 1,
        "findings": entries,
    }


def from_json(document: Dict[str, object]) -> List[Finding]:
    findings = []
    for entry in document.get("findings", []):  # type: ignore[union-attr]
        findings.append(
            Finding(
                path=str(entry["path"]),
                line=int(entry["line"]),
                col=int(entry["col"]),
                rule=str(entry["rule"]),
                message=str(entry["message"]),
            )
        )
    return findings
