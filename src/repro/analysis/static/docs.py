"""Generated documentation sections, kept fresh by ``--check-docs``.

Two artifacts are generated from the registry / the vectorization pass
and committed:

* the ``COLT_*`` knob table, injected between
  ``<!-- colt-analyze:knobs -->`` markers in DESIGN.md and README.md;
* ``results/analysis/vectorization_replay.md``, the statement-level
  vectorization worklist for ROADMAP item 1.

``colt-analyze --write-docs`` regenerates both in place;
``--check-docs`` regenerates in memory and fails when the committed
copies are stale, so the docs cannot drift from the code they claim to
describe.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence

from repro.analysis.static import registries
from repro.analysis.static.model import ProjectModel
from repro.analysis.static.vectorization import analyze_project, render_report

KNOB_BEGIN = "<!-- colt-analyze:knobs -->"
KNOB_END = "<!-- /colt-analyze:knobs -->"

#: Files carrying the generated knob table, relative to the repo root.
KNOB_DOCS = ("DESIGN.md", "README.md")

#: The committed vectorization report, relative to the repo root.
VECTOR_REPORT = Path("results") / "analysis" / "vectorization_replay.md"


def knob_table(knobs: Sequence[registries.EnvKnob] = registries.KNOBS) -> str:
    """Markdown table of every environment knob, from the registry."""
    lines: List[str] = [
        "| Knob | Default | Consumer | CLI flag | Purpose |",
        "| --- | --- | --- | --- | --- |",
    ]
    for knob in sorted(knobs, key=lambda k: k.name):
        flag = f"`{knob.cli_flag}`" if knob.cli_flag else "--"
        lines.append(
            f"| `{knob.name}` | `{knob.default}` | `{knob.consumer}` "
            f"| {flag} | {knob.description} |"
        )
    return "\n".join(lines)


def inject_block(text: str, content: str) -> str:
    """Replace the text between the knob markers with ``content``.

    Raises ``ValueError`` when the markers are missing or unordered, so
    a doc that lost its markers fails loudly instead of silently
    keeping a stale table.
    """
    begin = text.find(KNOB_BEGIN)
    end = text.find(KNOB_END)
    if begin == -1 or end == -1 or end < begin:
        raise ValueError(
            f"missing or malformed {KNOB_BEGIN} ... {KNOB_END} markers"
        )
    head = text[: begin + len(KNOB_BEGIN)]
    tail = text[end:]
    return f"{head}\n{content}\n{tail}"


def render_docs(repo_root: Path, project: ProjectModel) -> Dict[Path, str]:
    """Expected content of every generated doc, keyed by absolute path."""
    expected: Dict[Path, str] = {}
    table = knob_table()
    for name in KNOB_DOCS:
        doc_path = repo_root / name
        if not doc_path.exists():
            continue
        expected[doc_path] = inject_block(
            doc_path.read_text(encoding="utf-8"), table
        )
    expected[repo_root / VECTOR_REPORT] = render_report(
        analyze_project(project)
    )
    return expected


def check_docs(repo_root: Path, project: ProjectModel) -> List[str]:
    """Problems with the committed generated docs (empty = fresh)."""
    problems: List[str] = []
    try:
        expected = render_docs(repo_root, project)
    except ValueError as exc:
        return [str(exc)]
    for path, content in expected.items():
        rel = path.relative_to(repo_root)
        if not path.exists():
            problems.append(
                f"{rel}: missing; run colt-analyze --write-docs"
            )
        elif path.read_text(encoding="utf-8") != content:
            problems.append(
                f"{rel}: stale generated section; run colt-analyze "
                f"--write-docs"
            )
    return problems


def write_docs(repo_root: Path, project: ProjectModel) -> List[str]:
    """Regenerate every generated doc in place; returns written paths."""
    written: List[str] = []
    for path, content in render_docs(repo_root, project).items():
        path.parent.mkdir(parents=True, exist_ok=True)
        if not path.exists() or path.read_text(encoding="utf-8") != content:
            path.write_text(content, encoding="utf-8")
            written.append(str(path.relative_to(repo_root)))
    return written
