"""Checked-in baseline: CI fails only on *new* findings.

The baseline (``tools/analysis_baseline.json``) records accepted
findings by fingerprint (rule + path + line *text* + occurrence, so
line-number drift does not resurface them) together with a one-line
justification each -- the registry of deliberate exceptions the
analyzers would otherwise flag forever.

Semantics:

* a finding whose fingerprint is baselined is *suppressed*;
* a finding without one is *new* -- nonzero exit, CI fails;
* a baseline entry matching nothing is *expired* -- reported so stale
  entries cannot hide a future regression at the same spot;
  ``--update-baseline`` drops expired entries and admits current
  findings (keeping existing justifications).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.static.passes import Finding

#: Justification placeholder ``--update-baseline`` writes; humans edit.
TODO_JUSTIFICATION = "TODO: justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    line: int
    justification: str


@dataclass
class MatchResult:
    new: List[Tuple[Finding, str]]
    suppressed: List[Tuple[Finding, str]]
    expired: List[BaselineEntry]


class Baseline:
    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        document = json.loads(path.read_text(encoding="utf-8"))
        entries = [
            BaselineEntry(
                fingerprint=str(entry["fingerprint"]),
                rule=str(entry.get("rule", "")),
                path=str(entry.get("path", "")),
                line=int(entry.get("line", 0)),
                justification=str(entry.get("justification", "")),
            )
            for entry in document.get("entries", [])
        ]
        return cls(entries)

    def save(self, path: Path) -> None:
        document = {
            "comment": (
                "Accepted colt-analyze findings. Every entry needs a "
                "one-line justification; run colt-analyze "
                "--update-baseline to refresh fingerprints."
            ),
            "version": 1,
            "entries": [
                {
                    "fingerprint": entry.fingerprint,
                    "rule": entry.rule,
                    "path": entry.path,
                    "line": entry.line,
                    "justification": entry.justification,
                }
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.line, e.rule)
                )
            ],
        }
        path.write_text(
            json.dumps(document, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    def match(
        self, findings: Sequence[Tuple[Finding, str]]
    ) -> MatchResult:
        by_fingerprint: Dict[str, BaselineEntry] = {
            entry.fingerprint: entry for entry in self.entries
        }
        seen = set()
        new: List[Tuple[Finding, str]] = []
        suppressed: List[Tuple[Finding, str]] = []
        for finding, fingerprint in findings:
            if fingerprint in by_fingerprint:
                seen.add(fingerprint)
                suppressed.append((finding, fingerprint))
            else:
                new.append((finding, fingerprint))
        expired = [
            entry for entry in self.entries if entry.fingerprint not in seen
        ]
        return MatchResult(new=new, suppressed=suppressed, expired=expired)

    def updated(
        self,
        findings: Sequence[Tuple[Finding, str]],
        relpath_of: Optional[Dict[str, str]] = None,
    ) -> "Baseline":
        """New baseline admitting ``findings``, dropping expired entries.

        Existing justifications are preserved by fingerprint; new
        entries get :data:`TODO_JUSTIFICATION` for a human to replace.
        """
        relpath_of = relpath_of or {}
        existing = {entry.fingerprint: entry for entry in self.entries}
        entries = []
        for finding, fingerprint in findings:
            kept = existing.get(fingerprint)
            entries.append(BaselineEntry(
                fingerprint=fingerprint,
                rule=finding.rule,
                path=relpath_of.get(finding.path, finding.path).replace(
                    "\\", "/"
                ),
                line=finding.line,
                justification=(
                    kept.justification if kept is not None
                    else TODO_JUSTIFICATION
                ),
            ))
        return Baseline(entries)
