"""Registry coherence: code and the declarative registry must agree.

Extraction is *call-shape based* -- names are read from the argument
positions where they mean something (``os.environ`` literals and
``*_ENV`` constants for knobs, ``registry.counter(...)`` /
``bind_counterset(...)`` first-name arguments for metrics,
``span(...)``/``.instant(...)``/``.counter(..., cat=...)`` for trace
events, ``faults.fire(site, ...)`` / ``site=`` keywords for fault
sites) -- so prose in docstrings and unrelated string constants cannot
produce false positives.

Both directions are checked. Used-but-undeclared names fail closed
(every new surface must be registered); declared-but-dead checks are
gated on the declaring consumer module actually being part of the scan,
so analyzing a single file never produces spurious "dead knob" noise.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.static import registries
from repro.analysis.static.model import ModuleInfo, ProjectModel
from repro.analysis.static.passes import AnalysisPass, Finding

#: Environment names the knob registry governs.
_ENV_NAME = re.compile(r"(COLT|REPRO)_[A-Z][A-Z0-9_]*")

#: The module whose reads define "reported" for metrics.
REPORT_MODULE_SUFFIX = "repro/obs/report.py"


@dataclass
class _Extraction:
    """Names one module uses, keyed by surface."""

    env_uses: List[Tuple[str, ast.AST]] = field(default_factory=list)
    metric_emits: List[Tuple[str, bool, ast.AST]] = field(default_factory=list)
    span_emits: List[Tuple[str, bool, ast.AST]] = field(default_factory=list)
    fault_sites: List[Tuple[str, ast.AST]] = field(default_factory=list)
    report_refs: Set[str] = field(default_factory=set)
    report_prefixes: Set[str] = field(default_factory=set)


def _literal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _fstring_head(node: ast.AST) -> Optional[str]:
    """Leading literal part of an f-string, e.g. ``f"colt_x_{n}"``."""
    if (
        isinstance(node, ast.JoinedStr)
        and node.values
        and isinstance(node.values[0], ast.Constant)
        and isinstance(node.values[0].value, str)
    ):
        return node.values[0].value
    return None


def _docstring_nodes(tree: ast.Module) -> Set[int]:
    """ids of Constant nodes that are module/class/function docstrings."""
    ids: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                ids.add(id(body[0].value))
    return ids


def extract_module(module: ModuleInfo) -> _Extraction:
    """Pull every registry-governed name out of one module's AST."""
    extraction = _Extraction()
    tree = module.tree
    if tree is None:
        return extraction
    docstrings = _docstring_nodes(tree)
    is_report = module.path_matches((REPORT_MODULE_SUFFIX,))
    in_faults_module = module.path_matches(("repro/sim/faults.py",))

    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if id(node) not in docstrings and _ENV_NAME.fullmatch(node.value):
                extraction.env_uses.append((node.value, node))
            if is_report:
                if node.value.startswith("colt_"):
                    extraction.report_refs.add(node.value)
        elif isinstance(node, ast.JoinedStr) and is_report:
            head = _fstring_head(node)
            if head is not None and head.startswith("colt_"):
                extraction.report_prefixes.add(head)
        elif isinstance(node, ast.Assign) and in_faults_module:
            # TASK_SITES / STORE_SITE declarations inside the grammar
            # module are authoritative use-sites for fault-site names.
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if any(t in ("TASK_SITES", "STORE_SITE") for t in targets):
                for element in ast.walk(node.value):
                    site = _literal(element)
                    if site is not None:
                        extraction.fault_sites.append((site, element))
        elif isinstance(node, ast.Call):
            _extract_call(node, extraction)
    return extraction


def _extract_call(node: ast.Call, extraction: _Extraction) -> None:
    func = node.func
    attr = func.attr if isinstance(func, ast.Attribute) else None
    name = func.id if isinstance(func, ast.Name) else None

    if attr in ("counter", "gauge", "histogram") and node.args:
        literal = _literal(node.args[0])
        if literal is not None and literal.startswith("colt_"):
            extraction.metric_emits.append((literal, False, node))
        elif (
            attr == "counter"
            and literal is not None
            and any(kw.arg == "cat" for kw in node.keywords)
        ):
            extraction.span_emits.append((literal, False, node))
    if (name == "bind_counterset" or attr == "bind_counterset") and (
        len(node.args) >= 2
    ):
        prefix = _literal(node.args[1])
        if prefix is not None:
            extraction.metric_emits.append((prefix, True, node))
    if (name == "span" or attr in ("span", "instant")) and node.args:
        literal = _literal(node.args[0])
        if literal is not None:
            extraction.span_emits.append((literal, False, node))
        else:
            head = _fstring_head(node.args[0])
            if head is not None:
                extraction.span_emits.append((head, True, node))
    if attr == "fire" and node.args:
        site = _literal(node.args[0])
        if site is not None:
            extraction.fault_sites.append((site, node))
    for keyword in node.keywords:
        if keyword.arg == "site":
            site = _literal(keyword.value)
            if site is not None:
                extraction.fault_sites.append((site, keyword.value))


class RegistryCoherencePass(AnalysisPass):
    """Diff AST-extracted names against the declarative registry."""

    name = "coherence"
    rules = (
        "undeclared-env-knob", "dead-env-knob",
        "undeclared-metric", "unemitted-metric", "unreported-metric",
        "undeclared-span", "unemitted-span",
        "undeclared-fault-site", "unemitted-fault-site",
    )

    def __init__(
        self,
        knobs: Sequence[registries.EnvKnob] = registries.KNOBS,
        metrics: Sequence[registries.MetricDecl] = registries.METRICS,
        spans: Sequence[registries.SpanDecl] = registries.SPANS,
        fault_sites: Sequence[registries.FaultSiteDecl] = (
            registries.FAULT_SITES
        ),
    ) -> None:
        self.knobs = tuple(knobs)
        self.metrics = tuple(metrics)
        self.spans = tuple(spans)
        self.fault_sites = tuple(fault_sites)

    def run(self, project: ProjectModel) -> List[Finding]:
        per_module: Dict[str, _Extraction] = {
            module.path: extract_module(module) for module in project.modules
        }
        findings: List[Finding] = []
        findings.extend(self._check_env(project, per_module))
        findings.extend(self._check_metrics(project, per_module))
        findings.extend(self._check_spans(project, per_module))
        findings.extend(self._check_fault_sites(project, per_module))
        return findings

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _finding(
        module_path: str, node: Optional[ast.AST], rule: str, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(module_path, line, col, rule, message)

    def _module_present(
        self, project: ProjectModel, consumer: str
    ) -> Optional[ModuleInfo]:
        matches = project.modules_matching((consumer,))
        return matches[0] if matches else None

    # -- env knobs -----------------------------------------------------

    def _check_env(
        self, project: ProjectModel, per_module: Dict[str, _Extraction]
    ) -> List[Finding]:
        declared = {knob.name: knob for knob in self.knobs}
        used_by_module: Dict[str, Set[str]] = {}
        findings: List[Finding] = []
        for module in project.modules:
            extraction = per_module[module.path]
            for env_name, node in extraction.env_uses:
                used_by_module.setdefault(env_name, set()).add(module.relpath)
                if env_name not in declared:
                    findings.append(self._finding(
                        module.path, node, "undeclared-env-knob",
                        f"environment knob '{env_name}' is read here but "
                        f"not declared in repro.analysis.static.registries; "
                        f"declare it (with default + consumer) so the docs "
                        f"table stays complete",
                    ))
        for knob in self.knobs:
            consumer = self._module_present(project, knob.consumer)
            if consumer is None:
                continue
            uses = used_by_module.get(knob.name, set())
            if not any(
                path.endswith(knob.consumer.replace("\\", "/"))
                for path in uses
            ):
                findings.append(self._finding(
                    consumer.path, None, "dead-env-knob",
                    f"registry declares env knob '{knob.name}' with "
                    f"consumer {knob.consumer}, but this module never "
                    f"references it; the knob is dead or the registry "
                    f"is stale",
                ))
        return findings

    # -- metrics -------------------------------------------------------

    def _check_metrics(
        self, project: ProjectModel, per_module: Dict[str, _Extraction]
    ) -> List[Finding]:
        exact = {m.name: m for m in self.metrics if m.kind != "counterset-prefix"}
        prefixes = {
            m.name: m for m in self.metrics if m.kind == "counterset-prefix"
        }
        findings: List[Finding] = []
        emitted_names: Set[str] = set()
        emitted_prefixes: Set[str] = set()
        report_refs: Set[str] = set()
        report_heads: Set[str] = set()
        report_present = (
            self._module_present(project, REPORT_MODULE_SUFFIX) is not None
        )
        for module in project.modules:
            extraction = per_module[module.path]
            report_refs.update(extraction.report_refs)
            report_heads.update(extraction.report_prefixes)
            for metric_name, is_prefix, node in extraction.metric_emits:
                if is_prefix:
                    emitted_prefixes.add(metric_name)
                    if metric_name not in prefixes:
                        findings.append(self._finding(
                            module.path, node, "undeclared-metric",
                            f"counterset prefix '{metric_name}' is bound "
                            f"here but not declared in the metric registry",
                        ))
                else:
                    emitted_names.add(metric_name)
                    if metric_name not in exact:
                        findings.append(self._finding(
                            module.path, node, "undeclared-metric",
                            f"metric '{metric_name}' is emitted here but "
                            f"not declared in the metric registry",
                        ))
        for metric in self.metrics:
            emitter = self._module_present(project, metric.module)
            if emitter is None:
                continue
            is_prefix = metric.kind == "counterset-prefix"
            emitted = (
                metric.name in emitted_prefixes
                if is_prefix
                else metric.name in emitted_names
            )
            if not emitted:
                findings.append(self._finding(
                    emitter.path, None, "unemitted-metric",
                    f"registry declares metric '{metric.name}' emitted by "
                    f"{metric.module}, but no emission site was found; the "
                    f"metric is dead or the registry is stale",
                ))
                continue
            if metric.reported and report_present:
                if is_prefix:
                    wanted = metric.name + "_"
                    seen = (
                        any(r.startswith(wanted) for r in report_refs)
                        or any(h == wanted for h in report_heads)
                    )
                else:
                    seen = metric.name in report_refs or any(
                        metric.name.startswith(h) for h in report_heads
                    )
                if not seen:
                    findings.append(self._finding(
                        emitter.path, None, "unreported-metric",
                        f"metric '{metric.name}' is declared reported=True "
                        f"but {REPORT_MODULE_SUFFIX} never reads it; report "
                        f"it or declare reported=False with a reason",
                    ))
        return findings

    # -- spans ---------------------------------------------------------

    def _check_spans(
        self, project: ProjectModel, per_module: Dict[str, _Extraction]
    ) -> List[Finding]:
        exact = {s.name: s for s in self.spans if s.kind != "span-prefix"}
        prefixes = {s.name: s for s in self.spans if s.kind == "span-prefix"}
        findings: List[Finding] = []
        emitted: Set[str] = set()
        emitted_prefix: Set[str] = set()
        for module in project.modules:
            for span_name, is_prefix, node in per_module[
                module.path
            ].span_emits:
                if is_prefix:
                    emitted_prefix.add(span_name)
                    if span_name not in prefixes:
                        findings.append(self._finding(
                            module.path, node, "undeclared-span",
                            f"trace event prefix '{span_name}' is emitted "
                            f"here but not declared in the span registry",
                        ))
                else:
                    emitted.add(span_name)
                    declared = span_name in exact or any(
                        span_name.startswith(p) for p in prefixes
                    )
                    if not declared:
                        findings.append(self._finding(
                            module.path, node, "undeclared-span",
                            f"trace event '{span_name}' is emitted here "
                            f"but not declared in the span registry",
                        ))
        for span in self.spans:
            emitter = self._module_present(project, span.module)
            if emitter is None:
                continue
            present = (
                span.name in emitted_prefix
                if span.kind == "span-prefix"
                else span.name in emitted
            )
            if not present:
                findings.append(self._finding(
                    emitter.path, None, "unemitted-span",
                    f"registry declares trace event '{span.name}' in "
                    f"{span.module}, but no emission site was found",
                ))
        return findings

    # -- fault sites ---------------------------------------------------

    def _check_fault_sites(
        self, project: ProjectModel, per_module: Dict[str, _Extraction]
    ) -> List[Finding]:
        declared = {site.name: site for site in self.fault_sites}
        findings: List[Finding] = []
        used_by_module: Dict[str, Set[str]] = {}
        for module in project.modules:
            for site_name, node in per_module[module.path].fault_sites:
                used_by_module.setdefault(site_name, set()).add(
                    module.relpath
                )
                if site_name not in declared:
                    findings.append(self._finding(
                        module.path, node, "undeclared-fault-site",
                        f"fault site '{site_name}' is used here but not "
                        f"declared in the fault-site registry",
                    ))
        for site in self.fault_sites:
            module = self._module_present(project, site.module)
            if module is None:
                continue
            uses = used_by_module.get(site.name, set())
            if not any(
                path.endswith(site.module.replace("\\", "/"))
                for path in uses
            ):
                findings.append(self._finding(
                    module.path, None, "unemitted-fault-site",
                    f"registry declares fault site '{site.name}' fired by "
                    f"{site.module}, but no use was found there",
                ))
        return findings
