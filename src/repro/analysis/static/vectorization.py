"""Vectorization-readiness report over the replay/MMU hot loops.

ROADMAP item 1 wants the per-access replay loop replaced by a
vectorized engine. The honest first step is a statement-level worklist:
which lines of the hot paths are already expressible as array ops,
which are guards that become batched validity checks, and which are
*blocking* -- loop-carried scalar state or side-effecting calls into
stateful objects (TLBs, caches, counters) that need epoch/batching
redesign before `np` can take over.

Classification (per top-level statement of each target loop/body):

``vectorizable``
    Pure data movement over the scenario arrays: casts, indexing,
    tuple/arithmetic on locals. Translates directly to array ops.

``guard``
    A conditional raise. Vectorizes as a batched validity check
    (``np.all`` over the window) before the kernel runs.

``loop-carried``
    Reads or writes scalar state threaded across iterations (event
    cursors, inner event-pump loops). Needs a prefix-scan or epoch
    split.

``side-effecting``
    Calls into stateful simulation objects (``mmu.access``,
    ``caches.access_pte``, counter increments). These are the real
    blockers: the object's internal state serializes the loop.

The report is committed at ``results/analysis/vectorization_replay.md``
and kept fresh by ``colt-analyze --check-docs``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.static.model import ModuleInfo, ProjectModel

#: (module suffix, qualified function, description, analyze_loop)
#: analyze_loop=True finds the outermost For loop and classifies its
#: body; False classifies the function body itself (per-call work).
TARGETS: Tuple[Tuple[str, str, str, bool], ...] = (
    (
        "repro/sim/replay.py", "replay_scenario",
        "per-access replay loop (one iteration per simulated access)",
        True,
    ),
    (
        "repro/sim/replay.py", "ReplayWalker.walk",
        "walk decode (runs once per TLB miss)", False,
    ),
    (
        "repro/core/mmu.py", "MMU.access",
        "MMU front door (runs once per access)", False,
    ),
    (
        "repro/sim/engine/vector.py", "scan_window",
        "vector engine: one epoch's TLB coverage scan (the array "
        "program the blocking statements above were redesigned into)",
        False,
    ),
    (
        "repro/sim/engine/records.py", "decode_records",
        "vector engine: batched walk-record decode (adjacency chains "
        "and per-slot run extents as whole-table array ops)", False,
    ),
)

#: Callables that are pure data movement when applied to locals.
_PURE_CALLS = frozenset(
    ("int", "float", "bool", "tuple", "len", "min", "max", "range",
     "enumerate", "zip", "abs", "divmod")
)
#: Receiver names whose methods are pure (array/maths namespaces).
_PURE_RECEIVERS = frozenset(("np", "numpy", "math"))


@dataclass(frozen=True)
class StatementReport:
    line: int
    code: str
    classification: str  # vectorizable | guard | loop-carried | side-effecting
    reason: str

    @property
    def blocking(self) -> bool:
        return self.classification in ("loop-carried", "side-effecting")


@dataclass(frozen=True)
class TargetReport:
    target: str
    description: str
    found: bool
    statements: Tuple[StatementReport, ...] = ()

    @property
    def blocking(self) -> Tuple[StatementReport, ...]:
        return tuple(s for s in self.statements if s.blocking)


def _first_line(module: ModuleInfo, node: ast.AST) -> str:
    line = getattr(node, "lineno", 0)
    if 1 <= line <= len(module.lines):
        text = module.lines[line - 1].strip()
        return text if len(text) <= 72 else text[:69] + "..."
    return "<source unavailable>"


def _method_calls(stmt: ast.AST) -> List[str]:
    """Dotted names of impure calls inside one statement."""
    calls: List[str] = []
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            if func.id not in _PURE_CALLS:
                calls.append(func.id)
        elif isinstance(func, ast.Attribute):
            receiver: Optional[str] = None
            if isinstance(func.value, ast.Name):
                receiver = func.value.id
            elif (
                isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
            ):
                receiver = f"{func.value.value.id}.{func.value.attr}"
            if receiver is not None and receiver.split(".")[0] in (
                _PURE_RECEIVERS
            ):
                continue
            calls.append(f"{receiver or '<expr>'}.{func.attr}")
    return calls


def _names(node: ast.AST, ctx_type: type) -> Set[str]:
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ctx_type)
    }


def _carried_names(body: Sequence[ast.stmt], loop_vars: Set[str]) -> Set[str]:
    """Names whose value crosses iterations: written by the body AND
    read before the body (re)writes them (upward-exposed), so each
    iteration sees the previous one's value. A same-iteration temporary
    (``v = int(i)`` then used below) is *not* carried."""
    written_above: Set[str] = set()
    exposed: Set[str] = set()
    for stmt in body:
        exposed |= _names(stmt, ast.Load) - written_above
        written_above |= _names(stmt, ast.Store)
    return (exposed & written_above) - loop_vars


def _contains_raise(stmt: ast.stmt) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(stmt))


def _attribute_writes(stmt: ast.stmt) -> List[str]:
    """Dotted targets of attribute assignments (``walker.cursor = i``)."""
    writes: List[str] = []
    for node in ast.walk(stmt):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                writes.append(f"{target.value.id}.{target.attr}")
    return writes


def classify_body(
    module: ModuleInfo,
    body: Sequence[ast.stmt],
    loop_vars: Optional[Set[str]] = None,
    bound_methods: Optional[Dict[str, str]] = None,
    track_carried: bool = True,
) -> List[StatementReport]:
    loop_vars = loop_vars or set()
    bound_methods = bound_methods or {}
    # Local dataflow only means "carried" inside a loop body; for a
    # per-call function body, plain locals are not cross-iteration state.
    carried = _carried_names(body, loop_vars) if track_carried else set()
    reports: List[StatementReport] = []
    for stmt in body:
        # Skip docstrings.
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        reports.append(
            _classify_statement(module, stmt, carried, bound_methods)
        )
    return reports


def _classify_statement(
    module: ModuleInfo,
    stmt: ast.stmt,
    carried: Set[str],
    bound_methods: Dict[str, str],
) -> StatementReport:
    code = _first_line(module, stmt)
    line = stmt.lineno
    if isinstance(stmt, ast.While):
        return StatementReport(
            line, code, "loop-carried",
            "data-dependent inner loop (event pump); must become an "
            "epoch boundary that splits the access window",
        )
    if isinstance(stmt, (ast.If, ast.Assert)) and _contains_raise(stmt):
        return StatementReport(
            line, code, "guard",
            "conditional raise; batch as a vectorized validity check "
            "over the whole window",
        )
    attr_writes = _attribute_writes(stmt)
    calls = [bound_methods.get(c, c) for c in _method_calls(stmt)]
    impure = [c for c in calls if "." in c or c not in _PURE_CALLS]
    if impure or attr_writes:
        reasons = []
        if impure:
            reasons.append(
                "calls into stateful/object code: "
                + ", ".join(sorted(set(impure)))
            )
        if attr_writes:
            reasons.append(
                "writes object attribute(s): "
                + ", ".join(sorted(set(attr_writes)))
            )
        return StatementReport(
            line, code, "side-effecting", "; ".join(reasons)
        )
    touched = (
        (_names(stmt, ast.Store) | _names(stmt, ast.Load)) & carried
    )
    if touched:
        return StatementReport(
            line, code, "loop-carried",
            "threads scalar state across iterations: "
            + ", ".join(sorted(touched)),
        )
    return StatementReport(
        line, code, "vectorizable",
        "pure data movement over locals/arrays",
    )


def _find_function(
    project: ProjectModel, module_suffix: str, qualname: str
) -> Optional[Tuple[ModuleInfo, ast.AST]]:
    for module in project.modules_matching((module_suffix,)):
        for key, info in project.functions.items():
            if info.module is module and key[1] == qualname:
                return module, info.node
    return None


def _bound_method_aliases(fn_node: ast.AST) -> Dict[str, str]:
    """Pre-loop ``access = mmu.access`` style bindings."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(fn_node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
        ):
            aliases[node.targets[0].id] = (
                f"{node.value.value.id}.{node.value.attr}"
            )
    return aliases


def analyze_target(
    project: ProjectModel,
    module_suffix: str,
    qualname: str,
    description: str,
    analyze_loop: bool,
) -> TargetReport:
    found = _find_function(project, module_suffix, qualname)
    target_name = f"{module_suffix}::{qualname}"
    if found is None:
        return TargetReport(target_name, description, found=False)
    module, fn_node = found
    if analyze_loop:
        loop = next(
            (n for n in ast.walk(fn_node) if isinstance(n, ast.For)), None
        )
        if loop is None:
            return TargetReport(target_name, description, found=False)
        loop_vars = _names(loop.target, ast.Store)
        statements = classify_body(
            module, loop.body, loop_vars, _bound_method_aliases(fn_node)
        )
    else:
        assert isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef))
        statements = classify_body(
            module, fn_node.body, set(), _bound_method_aliases(fn_node),
            track_carried=False,
        )
    return TargetReport(
        target_name, description, found=True, statements=tuple(statements)
    )


def analyze_project(project: ProjectModel) -> List[TargetReport]:
    return [
        analyze_target(project, suffix, qualname, description, analyze_loop)
        for suffix, qualname, description, analyze_loop in TARGETS
    ]


def render_report(reports: Sequence[TargetReport]) -> str:
    """Deterministic markdown for the committed report artifact."""
    lines: List[str] = [
        "# Vectorization-readiness: replay + MMU hot loops",
        "",
        "Generated by `colt-analyze --vectorization-report` (do not edit; "
        "CI's `--check-docs` regenerates and diffs this file).",
        "",
        "Statement classes: **vectorizable** (array-ready), **guard** "
        "(batched validity check), **loop-carried** / **side-effecting** "
        "(blocking; needs epoch or batching redesign).",
        "",
    ]
    for report in reports:
        lines.append(f"## `{report.target}`")
        lines.append("")
        lines.append(report.description)
        lines.append("")
        if not report.found:
            lines.append("*Target not found in this tree.*")
            lines.append("")
            continue
        lines.append("| line | statement | class | why |")
        lines.append("| --- | --- | --- | --- |")
        for stmt in report.statements:
            code = stmt.code.replace("|", "\\|")
            reason = stmt.reason.replace("|", "\\|")
            lines.append(
                f"| {stmt.line} | `{code}` | {stmt.classification} "
                f"| {reason} |"
            )
        blocking = report.blocking
        lines.append("")
        lines.append(
            f"**Blocking statements: {len(blocking)} of "
            f"{len(report.statements)}.**"
        )
        for stmt in blocking:
            lines.append(f"- line {stmt.line}: `{stmt.code}` -- {stmt.reason}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
