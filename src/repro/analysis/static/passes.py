"""Pass framework: findings, pragmas, fingerprints, and the runner.

Every analyzer -- the refactored lint rules and the new cross-file
passes -- produces :class:`Finding` objects and is driven through
:func:`run_passes`, which applies the one shared pragma implementation
(``# colt-lint: disable=<rule>[,<rule>...]`` / ``disable=all``) before
anything reaches the user, a baseline file, or CI.

Fingerprints identify a finding across unrelated edits: they hash the
rule, the repo-relative path, the *text* of the flagged line, and an
occurrence index -- not the line number -- so baselined findings do not
resurface every time code above them moves.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.analysis.static.model import ModuleInfo, ProjectModel

#: One pragma grammar for every pass (kept from the original lint).
_PRAGMA = re.compile(r"#\s*colt-lint:\s*disable=([A-Za-z0-9_,\s-]+)")


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, formatted ``path:line:col: rule: message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class AnalysisPass:
    """Base class: a named pass producing findings over a project."""

    #: Pass name, as selected by ``colt-analyze --passes``.
    name: str = ""
    #: Rule identifiers this pass may emit (for SARIF rule metadata).
    rules: Tuple[str, ...] = ()

    def run(self, project: ProjectModel) -> List[Finding]:
        raise NotImplementedError


def disabled_rules(source_line: str) -> FrozenSet[str]:
    """Rule names suppressed by a pragma on ``source_line``.

    ``disable=all`` yields a set containing ``"all"``; callers must
    treat membership of either the rule or ``"all"`` as suppression.
    """
    match = _PRAGMA.search(source_line)
    if not match:
        return frozenset()
    return frozenset(
        part.strip() for part in match.group(1).split(",") if part.strip()
    )


def is_suppressed(finding: Finding, module: ModuleInfo) -> bool:
    """True when a pragma on the finding's line disables its rule."""
    if finding.line < 1 or finding.line > len(module.lines):
        return False
    names = disabled_rules(module.lines[finding.line - 1])
    return finding.rule in names or "all" in names


def run_passes(
    project: ProjectModel, passes: Sequence[AnalysisPass]
) -> List[Finding]:
    """Run ``passes`` over ``project``; pragma-suppressed findings drop."""
    findings: List[Finding] = []
    for analysis_pass in passes:
        findings.extend(analysis_pass.run(project))
    kept: List[Finding] = []
    for finding in findings:
        module = project.module_for_path(finding.path)
        if module is not None and is_suppressed(finding, module):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def fingerprint_findings(
    project: ProjectModel, findings: Sequence[Finding]
) -> List[Tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    The hash covers ``rule | repo-relative path | stripped line text |
    occurrence index`` (the index disambiguates several identical lines
    flagged by the same rule in one file).
    """
    occurrence: Dict[Tuple[str, str, str], int] = {}
    result: List[Tuple[Finding, str]] = []
    for finding in findings:
        module = project.module_for_path(finding.path)
        relpath = module.relpath if module is not None else finding.path
        relpath = relpath.replace("\\", "/")
        if (
            module is not None
            and 1 <= finding.line <= len(module.lines)
        ):
            text = module.lines[finding.line - 1].strip()
        else:
            text = ""
        key = (finding.rule, relpath, text)
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        digest = hashlib.sha256(
            f"{finding.rule}|{relpath}|{text}|{index}".encode("utf-8")
        ).hexdigest()[:16]
        result.append((finding, digest))
    return result
