"""Runtime sanitizers: dynamic enforcement of simulator invariants.

Every figure the repo regenerates rests on structural invariants that
nothing on the hot path re-checks: the L2 TLB stays inclusive of the
set-associative L1, coalesced entries never overlap, the buddy free
lists stay disjoint and order-aligned, and the page tables agree with
the physical-memory ownership map. A silent break in any of them would
corrupt results without failing a test.

The sanitizers in this module attach to the live structures through
lightweight hook points (a single ``is not None`` check on the hot
path when disabled) and run two kinds of checks:

* **incremental** -- O(1)-ish validations of the object just touched,
  on every fill / fault / allocator operation;
* **full scans** -- complete structure walks every
  :func:`full_scan_interval` events, plus on demand (the system
  simulator runs one at the end of every sanitized run).

Enable with ``COLT_SANITIZE=1`` (any of ``1/true/yes/on``), or pass
``sanitize=True`` to the structures' constructors /
``SimulationConfig``. Violations raise
:class:`repro.common.errors.SanitizerError`. Sanitizers only read
simulator state, so enabling them never changes simulation results.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.common.constants import SUPERPAGE_PAGES
from repro.common.errors import SanitizerError
from repro.common.statistics import CounterSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.mmu import MMU
    from repro.osmem.buddy import BuddyAllocator
    from repro.osmem.kernel import Kernel

#: Environment variable that switches every sanitizer on.
SANITIZE_ENV = "COLT_SANITIZE"

#: Environment variable overriding the full-scan interval (in events).
SANITIZE_EVERY_ENV = "COLT_SANITIZE_EVERY"

_DEFAULT_FULL_SCAN_INTERVAL = 4096

_FALSEY = frozenset(("", "0", "false", "no", "off"))


def sanitizers_enabled() -> bool:
    """True when ``COLT_SANITIZE`` requests sanitized execution."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() not in _FALSEY


def resolve_sanitize(explicit: Optional[bool]) -> bool:
    """Resolve a constructor's ``sanitize`` argument against the env."""
    if explicit is None:
        return sanitizers_enabled()
    return bool(explicit)


def full_scan_interval() -> int:
    """Events between full-structure scans (``COLT_SANITIZE_EVERY``)."""
    raw = os.environ.get(SANITIZE_EVERY_ENV, "").strip()
    if not raw:
        return _DEFAULT_FULL_SCAN_INTERVAL
    try:
        value = int(raw)
    except ValueError:
        return _DEFAULT_FULL_SCAN_INTERVAL
    return max(1, value)


class Sanitizer:
    """Base class: violation reporting + periodic full scans."""

    name = "sanitizer"

    def __init__(self, every: Optional[int] = None) -> None:
        self.every = every if every is not None else full_scan_interval()
        self._events = 0
        self.counters = CounterSet(
            ["incremental_checks", "full_scans", "violations"]
        )

    def fail(self, message: str) -> None:
        """Record and raise an invariant violation."""
        self.counters.increment("violations")
        raise SanitizerError(f"{self.name}: {message}")

    def event(self) -> None:
        """Count one incremental check; full-scan every ``every`` events."""
        self.counters.increment("incremental_checks")
        self._events += 1
        if self._events % self.every == 0:
            self.full_scan()

    def full_scan(self) -> None:
        """Walk the whole structure; raise on any violated invariant."""
        raise NotImplementedError


class TLBSanitizer(Sanitizer):
    """Checks the two-level TLB hierarchy after fills and shootdowns.

    Invariants enforced (Sections 4.1-4.3 of the paper plus the repo's
    own inclusive-L2 design):

    * the L2 TLB is inclusive of the set-associative L1: every VPN with
      a valid L1 slot is covered by L2, with the same PPN;
    * no two entries of one set cover the same VPN (coalesced ranges in
      a set are disjoint), and overlapping FA range entries never
      disagree on a translation;
    * per-set occupancy never exceeds the associativity, and FA
      occupancy never exceeds the entry count;
    * every set-associative entry sits in the set selected by the
      CoLT-SA shifted index of its group base, with the TLB's group
      size (Section 4.1.2's placement rule);
    * resident translations agree with the architectural page table.
    """

    name = "tlb-sanitizer"

    def __init__(self, mmu: "MMU", every: Optional[int] = None) -> None:
        super().__init__(every)
        self.mmu = mmu

    def attach(self) -> None:
        """Register this sanitizer on the MMU's three TLB structures."""
        self.mmu.l1.sanitizer = self
        self.mmu.l2.sanitizer = self
        self.mmu.superpage_tlb.sanitizer = self

    # -- incremental ---------------------------------------------------

    def after_insert(self, tlb, entry) -> None:
        """Validate one TLB insert, at the inserting TLB's hook point.

        Deliberately does not call :meth:`event`: inserts fire mid-fill,
        before the MMU has restored cross-TLB invariants (L1
        back-invalidation follows the L2 insert), so only local checks
        are legal here. :meth:`after_fill` runs at the consistent point.
        """
        self.counters.increment("incremental_checks")
        if hasattr(entry, "group_base_vpn"):
            self._check_set_disjoint(tlb, entry)
        else:
            self._check_fa_overlap(tlb, entry)

    def _check_set_disjoint(self, tlb, entry) -> None:
        """No two entries of the touched set may cover the same VPN."""
        set_index = tlb.set_index_for(entry.group_base_vpn)
        covered = set()
        for resident in tlb.set_entries(set_index):
            for slot, valid in enumerate(resident.valid):
                if not valid:
                    continue
                vpn = resident.group_base_vpn + slot
                if vpn in covered:
                    self.fail(
                        f"set {set_index} of the {tlb.config.name}: vpn "
                        f"{vpn} covered by two entries after insert "
                        f"(overlapping coalesced ranges)"
                    )
                covered.add(vpn)

    def _check_fa_overlap(self, fa, entry) -> None:
        """Overlapping FA residents must agree with the inserted entry."""
        for resident in fa.entries():
            if resident is entry:
                continue
            if (
                resident.end_vpn <= entry.base_vpn
                or entry.end_vpn <= resident.base_vpn
            ):
                continue
            if resident.is_superpage and entry.is_superpage:
                self.fail(
                    f"overlapping superpage entries at {entry.base_vpn} "
                    f"and {resident.base_vpn} after insert"
                )
            if (resident.base_ppn - resident.base_vpn) != (
                entry.base_ppn - entry.base_vpn
            ):
                self.fail(
                    f"inserted fa range [{entry.base_vpn},{entry.end_vpn})"
                    f" -> {entry.base_ppn} contradicts resident "
                    f"[{resident.base_vpn},{resident.end_vpn}) -> "
                    f"{resident.base_ppn}"
                )

    def after_fill(self, vpn: int) -> None:
        """Validate the structures the fill of ``vpn`` just touched."""
        mmu = self.mmu
        expected = mmu.walker.page_table.lookup(vpn)
        if expected is None:
            self.fail(f"fill of vpn {vpn} but the page table has no mapping")
        covered = False
        for tlb_name, entry in (
            ("l1", mmu.l1.entry_for(vpn)),
            ("l2", mmu.l2.entry_for(vpn)),
            ("fa", mmu.superpage_tlb.covering_entry(vpn)),
        ):
            if entry is None:
                continue
            covered = True
            got = entry.ppn_for(vpn)
            if got != expected.pfn:
                self.fail(
                    f"{tlb_name} entry maps vpn {vpn} to ppn {got}, page "
                    f"table says {expected.pfn}"
                )
        if not covered:
            self.fail(f"fill of vpn {vpn} left it resident in no TLB")
        self._check_inclusive_at(vpn)
        self._check_occupancy()
        self.event()

    def after_invalidate(self, vpn: int) -> None:
        """After a shootdown, ``vpn`` must be gone from every TLB."""
        mmu = self.mmu
        for tlb_name, entry in (
            ("l1", mmu.l1.entry_for(vpn)),
            ("l2", mmu.l2.entry_for(vpn)),
            ("fa", mmu.superpage_tlb.covering_entry(vpn)),
        ):
            if entry is not None:
                self.fail(
                    f"vpn {vpn} still covered by {tlb_name} after shootdown"
                )
        self.event()

    def _check_inclusive_at(self, vpn: int) -> None:
        l1_entry = self.mmu.l1.entry_for(vpn)
        if l1_entry is None:
            return
        l2_entry = self.mmu.l2.entry_for(vpn)
        if l2_entry is None:
            self.fail(f"L1 covers vpn {vpn} but L2 does not (inclusivity)")
        if l2_entry.ppn_for(vpn) != l1_entry.ppn_for(vpn):
            self.fail(
                f"L1/L2 disagree on vpn {vpn}: {l1_entry.ppn_for(vpn)} vs "
                f"{l2_entry.ppn_for(vpn)}"
            )

    def _check_occupancy(self) -> None:
        mmu = self.mmu
        for label, tlb in (("l1", mmu.l1), ("l2", mmu.l2)):
            if tlb.occupancy > tlb.config.entries:
                self.fail(
                    f"{label} occupancy {tlb.occupancy} exceeds capacity "
                    f"{tlb.config.entries}"
                )
        fa = mmu.superpage_tlb
        if fa.occupancy > fa.config.entries:
            self.fail(
                f"fa occupancy {fa.occupancy} exceeds capacity "
                f"{fa.config.entries}"
            )

    # -- full scan -----------------------------------------------------

    def full_scan(self) -> None:
        self.counters.increment("full_scans")
        mmu = self.mmu
        self._scan_set_associative("l1", mmu.l1)
        self._scan_set_associative("l2", mmu.l2)
        self._scan_fully_associative(mmu.superpage_tlb)
        self._scan_inclusivity()

    def _scan_set_associative(self, label: str, tlb) -> None:
        config = tlb.config
        for set_index, entries in tlb.iter_sets():
            if len(entries) > config.ways:
                self.fail(
                    f"{label} set {set_index} holds {len(entries)} entries "
                    f"but has {config.ways} ways"
                )
            covered = {}
            for entry in entries:
                if entry.group_size != config.group_size:
                    self.fail(
                        f"{label} entry group size {entry.group_size} != "
                        f"TLB group size {config.group_size}"
                    )
                home = tlb.set_index_for(entry.group_base_vpn)
                if home != set_index:
                    self.fail(
                        f"{label} entry for group {entry.group_base_vpn} "
                        f"found in set {set_index}, shifted index says "
                        f"{home}"
                    )
                for slot, valid in enumerate(entry.valid):
                    if not valid:
                        continue
                    vpn = entry.group_base_vpn + slot
                    if vpn in covered:
                        self.fail(
                            f"{label} set {set_index}: vpn {vpn} covered by "
                            f"two entries (overlapping coalesced ranges)"
                        )
                    covered[vpn] = entry

    def _scan_fully_associative(self, fa) -> None:
        entries = fa.entries()
        for entry in entries:
            if entry.is_superpage:
                if entry.span != SUPERPAGE_PAGES:
                    self.fail(
                        f"fa superpage entry spans {entry.span} pages"
                    )
                if entry.base_vpn % SUPERPAGE_PAGES:
                    self.fail(
                        f"fa superpage entry base vpn {entry.base_vpn} is "
                        f"not 512-page aligned"
                    )
            else:
                if entry.span > fa.config.max_span:
                    self.fail(
                        f"fa range entry span {entry.span} exceeds max "
                        f"span {fa.config.max_span}"
                    )
                if entry.span > 1 and not fa.config.allow_coalesced:
                    self.fail(
                        "fa TLB holds a coalesced range entry but "
                        "allow_coalesced is off"
                    )
        for i, a in enumerate(entries):
            for b in entries[i + 1 :]:
                if a.end_vpn <= b.base_vpn or b.end_vpn <= a.base_vpn:
                    continue
                if a.is_superpage and b.is_superpage:
                    self.fail(
                        f"fa TLB holds overlapping superpage entries at "
                        f"{a.base_vpn} and {b.base_vpn}"
                    )
                if (a.base_ppn - a.base_vpn) != (b.base_ppn - b.base_vpn):
                    self.fail(
                        f"fa TLB holds overlapping range entries that "
                        f"disagree: [{a.base_vpn},{a.end_vpn}) -> "
                        f"{a.base_ppn} vs [{b.base_vpn},{b.end_vpn}) -> "
                        f"{b.base_ppn}"
                    )

    def _scan_inclusivity(self) -> None:
        mmu = self.mmu
        for entry in mmu.l1.entries():
            for slot, valid in enumerate(entry.valid):
                if not valid:
                    continue
                vpn = entry.group_base_vpn + slot
                l2_entry = mmu.l2.entry_for(vpn)
                if l2_entry is None:
                    self.fail(
                        f"L1 covers vpn {vpn} but L2 does not (inclusivity)"
                    )
                if l2_entry.ppn_for(vpn) != entry.ppn_for(vpn):
                    self.fail(
                        f"L1/L2 disagree on vpn {vpn}: "
                        f"{entry.ppn_for(vpn)} vs {l2_entry.ppn_for(vpn)}"
                    )


class BuddySanitizer(Sanitizer):
    """Checks the buddy allocator's free lists after every operation.

    Invariants (Section 3.2.1's structure):

    * every free block is naturally aligned and lies inside memory;
    * free blocks are pairwise disjoint;
    * no block and its buddy are both free at the same order (they
      would have merged);
    * the free-page accounting sums consistently, and -- when the
      sanitizer is linked to a :class:`PhysicalMemory` -- the buddy's
      free pool exactly complements the frames physical memory records
      as allocated.
    """

    name = "buddy-sanitizer"

    def __init__(
        self,
        buddy: "BuddyAllocator",
        physical=None,
        every: Optional[int] = None,
    ) -> None:
        super().__init__(every)
        self.buddy = buddy
        #: Linked by the kernel; standalone allocators leave it None.
        self.physical = physical

    # -- incremental ---------------------------------------------------

    def after_op(self) -> None:
        """Cheap bookkeeping check after one alloc/free operation."""
        free = self.buddy.free_pages
        if free > self.buddy.num_frames:
            self.fail(
                f"free pages {free} exceed total frames "
                f"{self.buddy.num_frames}"
            )
        self.event()

    # -- full scan -----------------------------------------------------

    def full_scan(self) -> None:
        self.counters.increment("full_scans")
        buddy = self.buddy
        snapshot = buddy.free_list_snapshot()
        order_of = {}
        for order, starts in snapshot.items():
            for start in starts:
                order_of[start] = order
        seen_end = -1
        for start, order in sorted(order_of.items()):
            size = 1 << order
            if start % size:
                self.fail(
                    f"free block {start} misaligned for order {order}"
                )
            if start + size > buddy.num_frames:
                self.fail(
                    f"free block [{start}, {start + size}) extends past "
                    f"end of memory ({buddy.num_frames} frames)"
                )
            if start < seen_end:
                self.fail(
                    f"overlapping free blocks around frame {start}"
                )
            seen_end = start + size
            if order < buddy.max_order - 1:
                buddy_start = start ^ size
                if order_of.get(buddy_start) == order:
                    self.fail(
                        f"unmerged buddies at order {order}: {start} and "
                        f"{buddy_start}"
                    )
        total = sum(
            len(starts) << order for order, starts in snapshot.items()
        )
        if total != buddy.free_pages:
            self.fail(
                f"free list holds {total} pages but accounting says "
                f"{buddy.free_pages}"
            )

    def check_accounting(self) -> None:
        """Cross-check the free pool against physical-memory state.

        Only valid at kernel-level quiescent points: mid-operation the
        buddy allocator legitimately runs ahead of the frame map.
        """
        if self.physical is None:
            return
        if self.buddy.free_pages != self.physical.free_frames:
            self.fail(
                f"buddy free pool ({self.buddy.free_pages} pages) "
                f"disagrees with physical memory "
                f"({self.physical.free_frames} free frames)"
            )
        for order, starts in self.buddy.free_list_snapshot().items():
            for start in starts:
                if not self.physical.range_is_free(start, 1 << order):
                    self.fail(
                        f"free block [{start}, {start + (1 << order)}) "
                        f"contains frames physical memory marks allocated"
                    )


class PageTableSanitizer(Sanitizer):
    """Checks page-table <-> physical-frame agreement for a kernel.

    Invariants:

    * every mapped 4KB page's frame is allocated, owned by the mapping
      process, and records the mapping VPN as its backing page;
    * no mapped frame sits in the buddy allocator's free pool;
    * superpage leaves are 512-page aligned in both VPN and PFN space
      (Section 2.2's alignment requirement), and own all 512 frames.
    """

    name = "page-table-sanitizer"

    def __init__(self, kernel: "Kernel", every: Optional[int] = None) -> None:
        super().__init__(every)
        self.kernel = kernel

    # -- incremental ---------------------------------------------------

    def after_fault(self, process, vpn: int) -> None:
        """Validate the translation a fault just installed."""
        translation = process.page_table.lookup(vpn)
        if translation is None:
            # A reclaim victim's fresh page may be reclaimed by the
            # watermark pass before the fault returns; that is legal.
            if self.kernel.is_reclaim_victim(process.pid):
                self.event()
                return
            self.fail(
                f"fault for pid {process.pid} vpn {vpn} installed no "
                f"translation"
            )
        self._check_translation(process, translation)
        buddy_sanitizer = self.kernel.buddy.sanitizer
        if buddy_sanitizer is not None:
            buddy_sanitizer.check_accounting()
        self.event()

    def _check_translation(self, process, translation) -> None:
        physical = self.kernel.physical
        vpn, pfn = translation.vpn, translation.pfn
        if translation.is_superpage:
            base_vpn = vpn - vpn % SUPERPAGE_PAGES
            base_pfn = pfn - (vpn - base_vpn)
            if base_pfn % SUPERPAGE_PAGES:
                self.fail(
                    f"superpage at vpn {base_vpn} backed by misaligned "
                    f"frame {base_pfn}"
                )
            probes = (base_pfn, base_pfn + SUPERPAGE_PAGES - 1)
        else:
            probes = (pfn,)
            if physical.backing_vpn_of(pfn) != vpn:
                self.fail(
                    f"frame {pfn} backs vpn "
                    f"{physical.backing_vpn_of(pfn)} per the frame map, "
                    f"but the page table maps vpn {vpn} to it "
                    f"(mismatched PTE)"
                )
        for probe in probes:
            if not physical.is_allocated(probe):
                self.fail(
                    f"vpn {vpn} maps frame {probe}, which is free"
                )
            owner = physical.owner_of(probe)
            if owner != process.pid:
                self.fail(
                    f"vpn {vpn} of pid {process.pid} maps frame {probe} "
                    f"owned by pid {owner}"
                )
            if self.kernel.buddy.is_frame_free(probe):
                self.fail(
                    f"mapped frame {probe} also sits in the buddy free "
                    f"pool"
                )

    # -- full scan -----------------------------------------------------

    def full_scan(self) -> None:
        self.counters.increment("full_scans")
        for process in self.kernel.processes():
            for translation in process.page_table.iter_mappings():
                self._check_translation(process, translation)
        buddy_sanitizer = self.kernel.buddy.sanitizer
        if buddy_sanitizer is not None:
            buddy_sanitizer.check_accounting()
