"""Determinism harness: same seed, same bits, or the build is broken.

The repo's apples-to-apples methodology (Section 5.2 of the paper: one
replayed system state evaluated under every TLB design) only works if a
``SimulationConfig`` plus its seeds fully determines the simulated
machine. This module makes that property testable: run the same
configuration twice, hash *everything observable* -- MMU/TLB/kernel
counters, final TLB contents, the buddy allocator's free lists, and the
complete page tables of every process -- and demand bit-identical
digests. Any hidden nondeterminism (iteration over an unordered set,
wall-clock leakage, unseeded randomness) shows up as a digest mismatch
long before it shows up as an unexplainable figure.

``check_all_designs`` additionally verifies the cross-design guarantee:
the OS-state digest (kernel + page tables, excluding the TLBs) must be
identical *across designs*, because the OS evolution is independent of
the TLB organisation.

Used by ``tests/test_analysis_determinism.py`` and as the CI smoke run
(``python -m repro.analysis.determinism``).
"""

from __future__ import annotations

import argparse
import hashlib
from typing import List, Optional, Sequence

from repro.common.errors import DeterminismError
from repro.core.mmu import CoLTDesign
from repro.sim.replay import replay_scenario
from repro.sim.scenario import capture_scenario
from repro.sim.system import (
    SimulationConfig,
    SimulationResult,
    SystemSimulator,
    simulate,
)

#: The designs a full sweep covers.
ALL_DESIGNS = (
    CoLTDesign.BASELINE,
    CoLTDesign.COLT_SA,
    CoLTDesign.COLT_FA,
    CoLTDesign.COLT_ALL,
    CoLTDesign.PERFECT,
)


def _hash_lines(lines: List[str]) -> str:
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _counter_lines(label: str, snapshot) -> List[str]:
    return [
        f"{label}.{name}={value}"
        for name, value in sorted(snapshot.values.items())
    ]


def _tlb_lines(simulator: SystemSimulator) -> List[str]:
    """Canonical rendering of the final TLB contents."""
    mmu = simulator.mmu
    lines: List[str] = []
    for label, tlb in (("l1", mmu.l1), ("l2", mmu.l2)):
        for set_index, entries in tlb.iter_sets():
            for entry in sorted(
                entries,
                key=lambda e: (e.group_base_vpn, tuple(e.valid), e.base_ppn),
            ):
                valid = "".join("1" if v else "0" for v in entry.valid)
                lines.append(
                    f"{label}[{set_index}] base={entry.group_base_vpn} "
                    f"valid={valid} ppn={entry.base_ppn}"
                )
    for entry in sorted(
        mmu.superpage_tlb.entries(),
        key=lambda e: (e.base_vpn, e.span, e.base_ppn),
    ):
        kind = "sp" if entry.is_superpage else "range"
        lines.append(
            f"fa {kind} base={entry.base_vpn} span={entry.span} "
            f"ppn={entry.base_ppn}"
        )
    return lines


def _os_lines(simulator: SystemSimulator) -> List[str]:
    """Canonical rendering of the kernel-side state (TLB-independent)."""
    kernel = simulator.kernel
    lines = _counter_lines("kernel", kernel.counters.snapshot())
    for order, starts in sorted(kernel.buddy.free_list_snapshot().items()):
        lines.append(f"buddy[{order}]={','.join(map(str, sorted(starts)))}")
    for process in sorted(kernel.processes(), key=lambda p: p.pid):
        for translation in sorted(
            process.page_table.iter_mappings(),
            key=lambda t: t.vpn,
        ):
            flag = "S" if translation.is_superpage else "p"
            lines.append(
                f"pt[{process.pid}] {translation.vpn}->"
                f"{translation.pfn}{flag}"
            )
    return lines


def os_state_digest(simulator: SystemSimulator) -> str:
    """Digest of the TLB-independent system state after a run."""
    return _hash_lines(_os_lines(simulator))


def state_digest(simulator: SystemSimulator) -> str:
    """Digest of everything observable about a finished run."""
    lines = _counter_lines("mmu", simulator.mmu.counters.snapshot())
    lines += _counter_lines("l1", simulator.mmu.l1.counters.snapshot())
    lines += _counter_lines("l2", simulator.mmu.l2.counters.snapshot())
    lines += _counter_lines(
        "fa", simulator.mmu.superpage_tlb.counters.snapshot()
    )
    lines += _tlb_lines(simulator)
    lines += _os_lines(simulator)
    return _hash_lines(lines)


def _run(config: SimulationConfig) -> SystemSimulator:
    simulator = SystemSimulator(config)
    simulator.prepare()
    simulator.run()
    return simulator


def check_determinism(config: SimulationConfig, runs: int = 2) -> str:
    """Run ``config`` ``runs`` times; all digests must match.

    Returns the common digest; raises :class:`DeterminismError` on the
    first mismatch.
    """
    reference: Optional[str] = None
    for attempt in range(runs):
        digest = state_digest(_run(config))
        if reference is None:
            reference = digest
        elif digest != reference:
            raise DeterminismError(
                f"{config.benchmark}/{config.design.value}: run "
                f"{attempt + 1} produced digest {digest[:16]}..., run 1 "
                f"produced {reference[:16]}... (hidden nondeterminism)"
            )
    return reference


def check_all_designs(
    config: SimulationConfig,
    designs: Sequence[CoLTDesign] = ALL_DESIGNS,
    runs: int = 2,
) -> dict:
    """Per-design repeatability plus cross-design OS-state agreement.

    Returns ``{design.value: digest}``. The OS evolution must be
    identical for every design (the paper's replayed-trace methodology);
    each design's full digest must be identical across repeated runs.
    """
    digests = {}
    os_reference: Optional[str] = None
    for design in designs:
        design_config = config.with_updates(design=design)
        digests[design.value] = check_determinism(design_config, runs=runs)
        os_digest = os_state_digest(_run(design_config))
        if os_reference is None:
            os_reference = os_digest
        elif os_digest != os_reference:
            raise DeterminismError(
                f"OS state under {design.value} diverged from "
                f"{designs[0].value}: the kernel evolution must be "
                f"TLB-design-independent"
            )
    return digests


def _result_lines(result: SimulationResult) -> List[str]:
    """Canonical rendering of a :class:`SimulationResult`'s observables."""
    lines = _counter_lines("mmu", result.mmu_counters)
    lines += _counter_lines("kernel", result.kernel_counters)
    lines += [
        f"l1_misses={result.l1_misses}",
        f"l2_misses={result.l2_misses}",
        f"accesses={result.accesses}",
        f"trace_unique_pages={result.trace_unique_pages}",
        f"total_cycles={result.performance.total_cycles!r}",
        f"walk_cycles={result.performance.walk_cycles!r}",
        f"contiguity={result.contiguity!r}",
    ]
    return lines


def result_digest(result: SimulationResult) -> str:
    """Digest of everything observable about one simulation result."""
    return _hash_lines(_result_lines(result))


def check_replay_equivalence(
    config: SimulationConfig,
    designs: Sequence[CoLTDesign] = ALL_DESIGNS,
) -> dict:
    """Capture once, then demand bit-identical monolithic vs replayed runs.

    The capture/replay split (``repro.sim.scenario`` /
    ``repro.sim.replay``) is only a valid optimisation if replaying a
    captured scenario through a design's MMU observes *exactly* the
    inputs the monolithic simulator would have produced live: same
    per-access translations, same shootdown ordering, same walk
    latencies. This check runs both paths for every design and compares
    full result digests (all MMU/kernel counters, miss counts, cycle
    totals, contiguity). Returns ``{design.value: digest}``; raises
    :class:`DeterminismError` on the first divergence.
    """
    scenario = capture_scenario(config)
    digests = {}
    for design in designs:
        design_config = config.with_updates(design=design)
        monolithic = simulate(design_config)
        replayed = replay_scenario(scenario, design_config)
        mono_digest = result_digest(monolithic)
        replay_digest = result_digest(replayed)
        if mono_digest != replay_digest:
            diffs = [
                name
                for name, value in sorted(
                    monolithic.mmu_counters.values.items()
                )
                if replayed.mmu_counters[name] != value
            ]
            raise DeterminismError(
                f"{config.benchmark}/{design.value}: replay digest "
                f"{replay_digest[:16]}... != monolithic "
                f"{mono_digest[:16]}... (diverging counters: "
                f"{diffs or 'non-counter state'})"
            )
        digests[design.value] = mono_digest
    return digests


def _smoke_config(sanitize: Optional[bool]) -> SimulationConfig:
    from repro.osmem.kernel import KernelConfig

    return SimulationConfig(
        benchmark="gobmk",
        kernel=KernelConfig(num_frames=4096, seed=7),
        accesses=4000,
        scale=0.25,
        seed=11,
        churn_every=0,
        sanitize=sanitize,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.determinism",
        description="Verify same-seed bit-identical simulation.",
    )
    parser.add_argument(
        "--runs", type=int, default=2, help="repetitions per design"
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run with all runtime sanitizers attached",
    )
    parser.add_argument(
        "--replay", action="store_true",
        help="also verify capture+replay is bit-identical to the "
             "monolithic simulator for every design",
    )
    args = parser.parse_args(argv)
    config = _smoke_config(True if args.sanitize else None)
    digests = check_all_designs(config, runs=args.runs)
    for design, digest in digests.items():
        print(f"{design:10s} {digest}")
    print(f"determinism: OK ({args.runs} runs x {len(digests)} designs)")
    if args.replay:
        replay_digests = check_replay_equivalence(config)
        for design, digest in replay_digests.items():
            print(f"replay {design:10s} {digest}")
        print(
            f"replay equivalence: OK ({len(replay_digests)} designs "
            f"bit-identical to monolithic)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
