"""Static and dynamic enforcement of the simulator's invariants.

Three legs, built for the paper's apples-to-apples methodology
(Section 5.2), which only holds while the OS substrate evolves
bit-identically across CoLT designs and the fill path produces only
legal TLB entries:

* **Runtime sanitizers** (:mod:`repro.analysis.sanitizers`) --
  :class:`TLBSanitizer`, :class:`BuddySanitizer`, and
  :class:`PageTableSanitizer` attach to the MMU, the buddy allocator,
  and the kernel through lightweight hook points. Enable them with
  ``COLT_SANITIZE=1`` (or ``SimulationConfig(sanitize=True)``); the
  default hot path stays unchanged.
* **Repo lint** (:mod:`repro.analysis.lint`) -- AST rules that keep
  randomness flowing through :class:`repro.common.rng.SeedSequencer`,
  wall-clock reads out of simulation code, and other determinism
  hazards out of ``src/repro``. CLI: ``colt-lint`` /
  ``python tools/lint.py``.
* **Determinism harness** (:mod:`repro.analysis.determinism`) -- runs a
  configuration twice with the same seed and asserts the final counter
  / page-table / TLB state hashes are bit-identical, catching the
  nondeterminism the lint cannot prove away.

``repro.analysis.determinism`` is deliberately not imported here: it
depends on :mod:`repro.sim.system`, whose import chain leads back into
this package (the structures import their sanitizers). Import it
directly where needed.
"""

from repro.analysis.lint import Diagnostic, lint_paths, lint_source
from repro.analysis.sanitizers import (
    SANITIZE_ENV,
    BuddySanitizer,
    PageTableSanitizer,
    TLBSanitizer,
    full_scan_interval,
    resolve_sanitize,
    sanitizers_enabled,
)

__all__ = [
    "Diagnostic",
    "lint_paths",
    "lint_source",
    "SANITIZE_ENV",
    "BuddySanitizer",
    "PageTableSanitizer",
    "TLBSanitizer",
    "full_scan_interval",
    "resolve_sanitize",
    "sanitizers_enabled",
]
