"""repro: a full-system reproduction of CoLT (Coalesced Large-Reach TLBs).

The package reimplements, in pure Python, the complete system evaluated in
"CoLT: Coalesced Large-Reach TLBs" (Pham, Vaidyanathan, Jaleel,
Bhattacharjee -- MICRO 2012):

* an OS memory-management substrate (buddy allocator, memory compaction,
  Transparent Hugepage Support, x86-64 page tables, demand faulting) that
  *generates* page-allocation contiguity exactly the way Linux does;
* a contiguity scanner reproducing the paper's kernel instrumentation;
* a two-level TLB hierarchy (set-associative L1/L2 + fully-associative
  superpage TLB), MMU caches, a three-level cache model and a page walker;
* the paper's contribution: CoLT-SA, CoLT-FA and CoLT-All coalesced TLBs;
* calibrated workload models for the 14 SPEC 2006 / BioBench benchmarks;
* experiment harnesses regenerating every table and figure (Table 1,
  Figures 7-21) plus the paper's ablations.

Quickstart::

    from repro.sim import SystemSimulator, SimulationConfig
    sim = SystemSimulator(SimulationConfig(benchmark="mcf"))
    result = sim.run()
    print(result.summary())
"""

__version__ = "1.0.0"

from repro.common import (
    ContiguityRun,
    MemoryAccess,
    PageAttributes,
    Translation,
)
from repro.contiguity import ContiguityReport
from repro.osmem import Kernel, KernelConfig, Memhog, Process, age_system

__all__ = [
    "ContiguityReport",
    "ContiguityRun",
    "Kernel",
    "KernelConfig",
    "Memhog",
    "MemoryAccess",
    "PageAttributes",
    "Process",
    "Translation",
    "age_system",
    "__version__",
]
