"""Legacy setup shim so `pip install -e .` works without network access.

All real metadata lives in pyproject.toml; this file only enables the
legacy editable-install path on environments whose setuptools predates
PEP 660 support.
"""

from setuptools import setup

setup()
