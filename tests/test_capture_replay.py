"""Capture/replay split: bit-equivalence, capture-once, store, schedules.

The two-phase executor (``repro.sim.scenario`` + ``repro.sim.replay`` +
``repro.sim.runner``) is only a valid optimisation if it is *invisible*
in the results: every design's replay must be bit-identical to the
legacy monolithic run, the OS must be captured exactly once per
scenario, and the disk store must hand equal results to concurrent
processes. These tests pin each of those properties.
"""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.analysis.determinism import check_replay_equivalence
from repro.common.errors import SimulationError
from repro.core.mmu import CoLTDesign
from repro.osmem.kernel import Kernel, KernelConfig
from repro.osmem.memhog import SIMULATION_AGING
from repro.sim.replay import replay_scenario
from repro.sim.runner import ExperimentRunner
from repro.sim.scenario import (
    LLCPollution,
    ScenarioEngine,
    capture_scenario,
    scenario_config,
)
from repro.sim.store import ResultStore, config_key
from repro.sim.system import SimulationConfig, simulate
from repro.experiments.environments import simulation_config
from repro.experiments.scale import QUICK

ALL_DESIGNS = (
    CoLTDesign.BASELINE,
    CoLTDesign.COLT_SA,
    CoLTDesign.COLT_FA,
    CoLTDesign.COLT_ALL,
    CoLTDesign.PERFECT,
)


def small_config(**overrides):
    defaults = dict(
        benchmark="gobmk",
        design=CoLTDesign.BASELINE,
        kernel=KernelConfig(num_frames=4096),
        accesses=4000,
        scale=0.25,
        seed=11,
        aging=SIMULATION_AGING,
        churn_every=48,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _results_identical(a, b) -> bool:
    return (
        a.l1_misses == b.l1_misses
        and a.l2_misses == b.l2_misses
        and a.mmu_counters.values == b.mmu_counters.values
        and a.kernel_counters.values == b.kernel_counters.values
        and a.performance == b.performance
        and a.contiguity == b.contiguity
    )


@pytest.fixture(scope="module")
def quick_scenario():
    """One QUICK-scale capture, shared by every equivalence test."""
    return capture_scenario(simulation_config(QUICK.benchmarks[0], QUICK))


class TestReplayEquivalence:
    @pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda d: d.value)
    def test_quick_scale_bit_identical(self, quick_scenario, design):
        """Replays must match the monolithic run bit for bit, per design."""
        config = simulation_config(
            QUICK.benchmarks[0], QUICK
        ).with_updates(design=design)
        monolithic = simulate(config)
        replayed = replay_scenario(quick_scenario, config)
        assert replayed.l1_misses == monolithic.l1_misses
        assert replayed.l2_misses == monolithic.l2_misses
        assert replayed.mmu_counters.values == monolithic.mmu_counters.values
        assert _results_identical(replayed, monolithic)

    def test_equivalence_with_shootdowns(self):
        """Memhog pressure produces splits/reclaim; events must line up."""
        config = small_config(memhog_fraction=0.4, accesses=3000)
        scenario = capture_scenario(config)
        colt = config.with_updates(design=CoLTDesign.COLT_ALL)
        assert _results_identical(
            replay_scenario(scenario, colt), simulate(colt)
        )

    def test_determinism_harness_replay_mode(self):
        digests = check_replay_equivalence(
            small_config(accesses=2000),
            designs=(CoLTDesign.BASELINE, CoLTDesign.COLT_ALL),
        )
        assert set(digests) == {"baseline", "colt_all"}

    def test_replay_rejects_mismatched_scenario(self, quick_scenario):
        with pytest.raises(SimulationError):
            replay_scenario(quick_scenario, small_config())

    def test_scenario_config_is_design_independent(self):
        a = scenario_config(small_config(design=CoLTDesign.COLT_FA))
        b = scenario_config(small_config(design=CoLTDesign.PERFECT))
        assert a == b
        assert a.design is CoLTDesign.BASELINE
        assert a.mmu is None


class TestCaptureOnce:
    def test_run_designs_boots_one_kernel(self, monkeypatch):
        """The whole point of the split: 5 designs, 1 OS capture."""
        constructions = []
        original = Kernel.__init__

        def counting_init(self, *args, **kwargs):
            constructions.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Kernel, "__init__", counting_init)
        runner = ExperimentRunner(jobs=1)
        results = runner.run_designs(
            small_config(accesses=1500, scale=0.1), ALL_DESIGNS
        )
        assert len(results) == len(ALL_DESIGNS)
        assert len(constructions) == 1

    def test_runner_memoises_identical_configs(self):
        runner = ExperimentRunner()
        config = small_config(accesses=1500, scale=0.1)
        assert runner.run(config) is runner.run(config)

    def test_runner_monolithic_mode_matches(self):
        config = small_config(accesses=1500, scale=0.1)
        split = ExperimentRunner().run(config)
        monolithic = ExperimentRunner(monolithic=True).run(config)
        assert _results_identical(split, monolithic)


def _store_worker(store_dir: str, config: SimulationConfig):
    """Run one config against a shared disk store (worker process)."""
    runner = ExperimentRunner(store=ResultStore(store_dir))
    return runner.run(config)


class TestResultStore:
    def test_two_processes_return_equal_results(self, tmp_path):
        config = small_config(accesses=1500, scale=0.1)
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_store_worker, str(tmp_path), config)
                for _ in range(2)
            ]
            first, second = [future.result() for future in futures]
        assert _results_identical(first, second)
        assert first == second
        # The store now serves later runners without simulating.
        assert ResultStore(tmp_path).load(config) == first

    def test_roundtrip_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        config = small_config(accesses=1500, scale=0.1)
        assert store.load(config) is None
        result = ExperimentRunner(store=store).run(config)
        assert store.load(config) == result
        assert len(store) == 1
        assert store.clear() == 1
        assert store.load(config) is None

    def test_key_covers_every_config_field(self):
        base = small_config()
        assert config_key(base) == config_key(small_config())
        for changed in (
            base.with_updates(design=CoLTDesign.COLT_SA),
            base.with_updates(seed=12),
            base.with_updates(kernel=KernelConfig(num_frames=8192)),
            base.with_updates(tick_every=1000),
        ):
            assert config_key(changed) != config_key(base)

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        store = ResultStore(tmp_path)
        config = small_config(accesses=1500, scale=0.1)
        ExperimentRunner(store=store).run(config)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        assert store.load(config) is None
        assert ExperimentRunner(store=store).run(config) is not None


class TestSchedules:
    """The churn/tick schedules start at their period, not at access 0."""

    def test_tick_count_is_floor_accesses_over_period(self, monkeypatch):
        config = small_config(
            accesses=1999, tick_every=1000, churn_every=0
        )
        engine = ScenarioEngine(config)
        engine.prepare()
        ticks = []
        original = Kernel.tick

        def counting_tick(self):
            ticks.append(1)
            return original(self)

        monkeypatch.setattr(Kernel, "tick", counting_tick)
        engine.run_loop(lambda index, vpn: None)
        # 1999 accesses at period 1000: one tick (after access 999).
        # The pre-fix schedule fired at access 0 and 1000 -- two ticks,
        # one of them before the benchmark's first reference.
        assert len(ticks) == 1999 // 1000

    def test_churn_count_is_floor_accesses_over_period(self, monkeypatch):
        config = small_config(accesses=100, churn_every=48, tick_every=0)
        engine = ScenarioEngine(config)
        engine.prepare()
        churns = []
        monkeypatch.setattr(
            ScenarioEngine,
            "_background_churn",
            lambda self, rng, live: churns.append(1),
        )
        engine.run_loop(lambda index, vpn: None)
        assert len(churns) == 100 // 48

    def test_pollution_cursor_initialised_in_init(self):
        class FakeLLC:
            num_sets = 1024

            def __init__(self):
                self.evicted = []

            def evict_lru_of_set(self, set_index):
                self.evicted.append(set_index)

        llc = FakeLLC()
        pollution = LLCPollution(llc, per_access=1.0)
        # Explicit state from construction -- no lazy getattr mid-run.
        assert pollution._cursor == 0
        for _ in range(3):
            pollution.after_access()
        assert llc.evicted == [101, 202, 303]

    def test_fractional_pollution_budget_accumulates(self):
        class FakeLLC:
            num_sets = 64

            def __init__(self):
                self.evicted = []

            def evict_lru_of_set(self, set_index):
                self.evicted.append(set_index)

        llc = FakeLLC()
        pollution = LLCPollution(llc, per_access=0.5)
        for _ in range(4):
            pollution.after_access()
        assert len(llc.evicted) == 2
