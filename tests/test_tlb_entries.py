"""Tests for CoLT's TLB entry formats."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import PageAttributes, Translation
from repro.tlb.entries import CoalescedEntry, RangeEntry


def run_of(start_vpn, start_pfn, length, attrs=PageAttributes.default_user()):
    return [
        Translation(start_vpn + i, start_pfn + i, attrs) for i in range(length)
    ]


class TestCoalescedEntry:
    def test_from_run_full_group(self):
        entry = CoalescedEntry.from_run(run_of(8, 100, 4), group_size=4)
        assert entry.group_base_vpn == 8
        assert entry.coalesced_count == 4
        for offset in range(4):
            assert entry.covers(8 + offset)
            assert entry.ppn_for(8 + offset) == 100 + offset

    def test_partial_group_with_offset_base(self):
        # Translations for VPNs 10, 11 in group [8, 12).
        entry = CoalescedEntry.from_run(run_of(10, 200, 2), group_size=4)
        assert entry.group_base_vpn == 8
        assert not entry.covers(8)
        assert not entry.covers(9)
        assert entry.covers(10)
        assert entry.ppn_for(11) == 201

    def test_base_ppn_corresponds_to_first_valid_bit(self):
        entry = CoalescedEntry.from_run(run_of(9, 500, 3), group_size=4)
        assert entry.first_valid_slot == 1
        assert entry.base_ppn == 500
        assert entry.ppn_for(9) == 500
        assert entry.ppn_for(11) == 502

    def test_ppn_for_uncovered_vpn_rejected(self):
        entry = CoalescedEntry.from_run(run_of(8, 100, 2), group_size=4)
        with pytest.raises(ConfigurationError):
            entry.ppn_for(11)

    def test_non_contiguous_pfns_rejected(self):
        bad = [Translation(8, 100), Translation(9, 200)]
        with pytest.raises(ConfigurationError):
            CoalescedEntry.from_run(bad, group_size=4)

    def test_non_contiguous_vpns_rejected(self):
        bad = [Translation(8, 100), Translation(10, 102)]
        with pytest.raises(ConfigurationError):
            CoalescedEntry.from_run(bad, group_size=4)

    def test_run_crossing_group_rejected(self):
        with pytest.raises(ConfigurationError):
            CoalescedEntry.from_run(run_of(7, 100, 3), group_size=4)

    def test_valid_bits_must_be_contiguous(self):
        with pytest.raises(ConfigurationError):
            CoalescedEntry(8, 4, [True, False, True, False], 100,
                           PageAttributes.default_user())

    def test_group_size_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            CoalescedEntry(0, 3, [True] * 3, 0, PageAttributes.default_user())

    def test_misaligned_group_base_rejected(self):
        with pytest.raises(ConfigurationError):
            CoalescedEntry(2, 4, [True] * 4, 0, PageAttributes.default_user())

    def test_translation_for(self):
        entry = CoalescedEntry.from_run(run_of(8, 100, 4), group_size=4)
        translation = entry.translation_for(10)
        assert translation.vpn == 10
        assert translation.pfn == 102

    def test_slice_for_smaller_group(self):
        entry = CoalescedEntry.from_run(run_of(8, 100, 4), group_size=4)
        sliced = entry.slice_for_group(10, group_size=2)
        assert sliced.group_base_vpn == 10
        assert sliced.coalesced_count == 2
        assert sliced.ppn_for(10) == 102

    def test_slice_outside_valid_bits_is_none(self):
        entry = CoalescedEntry.from_run(run_of(10, 100, 2), group_size=4)
        assert entry.slice_for_group(8, group_size=2) is None

    def test_slice_cannot_widen(self):
        entry = CoalescedEntry.from_run(run_of(8, 100, 2), group_size=2)
        with pytest.raises(ConfigurationError):
            entry.slice_for_group(8, group_size=4)

    def test_singleton_entry_is_baseline_format(self):
        entry = CoalescedEntry.from_run(run_of(13, 999, 1), group_size=1)
        assert entry.group_size == 1
        assert entry.covers(13)
        assert not entry.covers(14)


class TestRangeEntry:
    def test_from_run(self):
        entry = RangeEntry.from_run(run_of(100, 700, 6))
        assert entry.span == 6
        assert entry.covers(105)
        assert not entry.covers(106)
        assert entry.ppn_for(103) == 703

    def test_non_contiguous_run_rejected(self):
        bad = [Translation(1, 1), Translation(2, 5)]
        with pytest.raises(ConfigurationError):
            RangeEntry.from_run(bad)

    def test_superpage_entry(self):
        sp = Translation(512, 1024, is_superpage=True)
        entry = RangeEntry.from_superpage(sp)
        assert entry.span == 512
        assert entry.is_superpage
        assert entry.ppn_for(512 + 99) == 1024 + 99

    def test_from_superpage_requires_superpage(self):
        with pytest.raises(ConfigurationError):
            RangeEntry.from_superpage(Translation(0, 0))

    def test_superpage_span_enforced(self):
        with pytest.raises(ConfigurationError):
            RangeEntry(0, 100, 0, PageAttributes.default_user(),
                       is_superpage=True)

    def test_merge_adjacent_ranges(self):
        a = RangeEntry.from_run(run_of(10, 100, 4))
        b = RangeEntry.from_run(run_of(14, 104, 4))
        assert a.mergeable_with(b, max_span=1024)
        merged = a.merged(b, max_span=1024)
        assert merged.base_vpn == 10
        assert merged.span == 8
        assert merged.ppn_for(17) == 107

    def test_merge_is_symmetric(self):
        a = RangeEntry.from_run(run_of(10, 100, 4))
        b = RangeEntry.from_run(run_of(14, 104, 4))
        merged = b.merged(a, max_span=1024)
        assert merged.base_vpn == 10

    def test_vpn_adjacent_but_pfn_disjoint_not_mergeable(self):
        a = RangeEntry.from_run(run_of(10, 100, 4))
        b = RangeEntry.from_run(run_of(14, 500, 4))
        assert not a.mergeable_with(b, max_span=1024)

    def test_max_span_limits_merging(self):
        a = RangeEntry.from_run(run_of(0, 0, 6))
        b = RangeEntry.from_run(run_of(6, 6, 6))
        assert not a.mergeable_with(b, max_span=8)

    def test_attribute_mismatch_blocks_merge(self):
        a = RangeEntry.from_run(run_of(0, 0, 4))
        b = RangeEntry.from_run(
            run_of(4, 4, 4, attrs=PageAttributes.PRESENT)
        )
        assert not a.mergeable_with(b, max_span=1024)

    def test_superpages_never_merge(self):
        sp = RangeEntry.from_superpage(
            Translation(512, 1024, is_superpage=True)
        )
        adjacent = RangeEntry.from_run(run_of(1024, 1536, 4))
        assert not sp.mergeable_with(adjacent, max_span=4096)

    def test_unmergeable_merge_raises(self):
        a = RangeEntry.from_run(run_of(0, 0, 2))
        b = RangeEntry.from_run(run_of(10, 10, 2))
        with pytest.raises(ConfigurationError):
            a.merged(b, max_span=1024)
