"""Tests for access patterns, benchmark profiles, and trace generation."""

import numpy as np
import pytest

from repro.common.errors import WorkloadError
from repro.common.rng import make_rng
from repro.workloads.benchmarks import (
    BENCHMARKS,
    TABLE1_ORDER,
    TABLE1_PAPER_MPMI,
    BenchmarkProfile,
    RegionSpec,
    all_benchmarks,
    get_benchmark,
)
from repro.workloads.patterns import (
    PATTERNS,
    PhaseSpec,
    generate_phase,
    interleave_phases,
)
from repro.workloads.trace import Trace, generate_trace, scaled_region_pages


class TestPhaseSpec:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseSpec("mystery", "region")

    def test_invalid_weight_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseSpec("random", "r", weight=0)

    def test_all_registered_patterns_generate(self):
        rng = make_rng(1, "t")
        for name in PATTERNS:
            spec = PhaseSpec(name, "r")
            offsets = generate_phase(spec, 100, 500, rng)
            assert len(offsets) == 500
            assert offsets.min() >= 0
            assert offsets.max() < 100


class TestPatternCharacter:
    def test_sequential_advances_by_one(self):
        spec = PhaseSpec("sequential", "r", accesses_per_page=1)
        offsets = generate_phase(spec, 1000, 100, make_rng(1, "a"))
        deltas = np.diff(offsets) % 1000
        assert (deltas == 1).all()

    def test_accesses_per_page_densifies(self):
        spec = PhaseSpec("sequential", "r", accesses_per_page=4)
        offsets = generate_phase(spec, 1000, 100, make_rng(1, "a"))
        # Each page appears 4 times consecutively.
        unique_transitions = (np.diff(offsets) != 0).sum()
        assert unique_transitions <= 100 / 4

    def test_strided_uses_stride(self):
        spec = PhaseSpec("strided", "r", accesses_per_page=1, stride=8)
        offsets = generate_phase(spec, 1024, 64, make_rng(1, "a"))
        deltas = np.diff(offsets) % 1024
        assert (deltas == 8).all()

    def test_zipf_concentrates_on_hot_subset(self):
        spec = PhaseSpec(
            "zipf", "r", accesses_per_page=1,
            hot_fraction=0.1, hot_weight=0.9,
        )
        offsets = generate_phase(spec, 1000, 20_000, make_rng(1, "a"))
        hot_hits = (offsets < 100).mean()
        assert 0.85 < hot_hits < 0.95

    def test_zipf_uniform_subset_mode(self):
        # hot_weight=1.0 makes zipf a uniform generator over the subset.
        spec = PhaseSpec(
            "zipf", "r", accesses_per_page=1,
            hot_fraction=0.05, hot_weight=1.0,
        )
        offsets = generate_phase(spec, 1000, 5000, make_rng(1, "a"))
        assert offsets.max() < 50

    def test_pointer_chase_visits_every_page_per_cycle(self):
        spec = PhaseSpec("pointer_chase", "r", accesses_per_page=1)
        offsets = generate_phase(spec, 64, 64, make_rng(1, "a"))
        assert set(offsets.tolist()) == set(range(64))

    def test_pointer_chase_has_no_spatial_locality(self):
        spec = PhaseSpec("pointer_chase", "r", accesses_per_page=1)
        offsets = generate_phase(spec, 4096, 4096, make_rng(1, "a"))
        adjacent = (np.abs(np.diff(offsets)) == 1).mean()
        assert adjacent < 0.01

    def test_region_offset_rotates_footprint(self):
        spec = PhaseSpec(
            "zipf", "r", accesses_per_page=1,
            hot_fraction=0.1, hot_weight=1.0, region_offset=0.5,
        )
        offsets = generate_phase(spec, 1000, 2000, make_rng(1, "a"))
        assert offsets.min() >= 500
        assert offsets.max() < 600


class TestInterleave:
    def test_total_length(self):
        rng = make_rng(2, "i")
        streams = {0: np.zeros(2000, dtype=np.int64),
                   1: np.ones(2000, dtype=np.int64)}
        out = interleave_phases(streams, {0: 0.5, 1: 0.5}, 1000, rng)
        assert len(out) == 1000

    def test_weights_respected_approximately(self):
        rng = make_rng(2, "i")
        streams = {0: np.zeros(40_000, dtype=np.int64),
                   1: np.ones(40_000, dtype=np.int64)}
        out = interleave_phases(streams, {0: 0.8, 1: 0.2}, 20_000, rng)
        assert 0.7 < (out == 0).mean() < 0.9

    def test_bursts_preserve_phase_runs(self):
        rng = make_rng(2, "i")
        streams = {0: np.zeros(4000, dtype=np.int64),
                   1: np.ones(4000, dtype=np.int64)}
        out = interleave_phases(streams, {0: 0.5, 1: 0.5}, 2000, rng, chunk=100)
        transitions = (np.diff(out) != 0).sum()
        assert transitions < 2000 / 50  # coarse bursts, not per-access mixing


class TestBenchmarkProfiles:
    def test_fourteen_benchmarks_defined(self):
        assert len(BENCHMARKS) == 14
        assert set(TABLE1_ORDER) == set(BENCHMARKS)
        assert set(TABLE1_PAPER_MPMI) == set(BENCHMARKS)

    def test_all_benchmarks_ordering(self):
        assert [b.name for b in all_benchmarks()] == list(TABLE1_ORDER)

    def test_get_benchmark_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            get_benchmark("doom")

    def test_profiles_are_internally_consistent(self):
        for profile in all_benchmarks():
            assert profile.total_pages > 0
            assert profile.suite in ("spec", "biobench")
            total_weight = sum(p.weight for p in profile.phases)
            assert total_weight == pytest.approx(1.0, abs=0.05), profile.name

    def test_phase_region_validation(self):
        with pytest.raises(WorkloadError):
            BenchmarkProfile(
                name="bad", suite="spec",
                regions=(RegionSpec("a", 10),),
                phases=(PhaseSpec("random", "missing"),),
            )

    def test_duplicate_regions_rejected(self):
        with pytest.raises(WorkloadError):
            BenchmarkProfile(
                name="bad", suite="spec",
                regions=(RegionSpec("a", 10), RegionSpec("a", 10)),
                phases=(),
            )

    def test_region_lookup(self):
        mcf = get_benchmark("mcf")
        assert mcf.region("arcs").pages == 20000
        with pytest.raises(WorkloadError):
            mcf.region("nothing")


class TestTraceGeneration:
    def test_scaled_region_pages(self):
        mcf = get_benchmark("mcf")
        pages = scaled_region_pages(mcf, 0.5)
        assert pages["arcs"] == 10000

    def test_scale_must_be_positive(self):
        with pytest.raises(WorkloadError):
            scaled_region_pages(get_benchmark("mcf"), 0)

    def test_trace_stays_inside_regions(self):
        profile = get_benchmark("milc")
        bases = {"lattice": 50_000}
        trace = generate_trace(profile, bases, 5000, make_rng(3, "t"))
        assert trace.vpns.min() >= 50_000
        assert trace.vpns.max() < 50_000 + profile.region("lattice").pages

    def test_trace_is_deterministic_in_seed(self):
        profile = get_benchmark("gobmk")
        bases = {"board_cache": 1000}
        a = generate_trace(profile, bases, 2000, make_rng(9, "t"))
        b = generate_trace(profile, bases, 2000, make_rng(9, "t"))
        assert np.array_equal(a.vpns, b.vpns)

    def test_missing_region_base_rejected(self):
        with pytest.raises(WorkloadError):
            generate_trace(get_benchmark("mcf"), {}, 100, make_rng(1, "t"))

    def test_trace_roundtrip(self, tmp_path):
        profile = get_benchmark("gobmk")
        trace = generate_trace(
            profile, {"board_cache": 77}, 500, make_rng(1, "t")
        )
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.benchmark == "gobmk"
        assert np.array_equal(loaded.vpns, trace.vpns)
        assert loaded.region_bases == {"board_cache": 77}

    def test_unique_pages(self):
        profile = get_benchmark("gobmk")
        trace = generate_trace(
            profile, {"board_cache": 0}, 3000, make_rng(1, "t")
        )
        assert 0 < trace.unique_pages <= profile.total_pages
