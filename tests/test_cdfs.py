"""Tests for the weighted-CDF utilities behind Figures 7-15."""

import pytest

from repro.common.cdfs import (
    PAPER_CDF_POINTS,
    WeightedCDF,
    average_contiguity,
    contiguity_cdf,
)


class TestWeightedCDF:
    def test_single_value_cdf(self):
        cdf = WeightedCDF.from_weighted_values([(4, 1.0)])
        assert cdf.at(3) == 0.0
        assert cdf.at(4) == 1.0
        assert cdf.at(100) == 1.0

    def test_two_values_weighted(self):
        cdf = WeightedCDF.from_weighted_values([(1, 1.0), (4, 3.0)])
        assert cdf.at(1) == pytest.approx(0.25)
        assert cdf.at(4) == pytest.approx(1.0)

    def test_weights_accumulate_for_duplicate_values(self):
        cdf = WeightedCDF.from_weighted_values([(2, 1.0), (2, 1.0), (8, 2.0)])
        assert cdf.at(2) == pytest.approx(0.5)

    def test_zero_weights_are_skipped(self):
        cdf = WeightedCDF.from_weighted_values([(1, 0.0), (2, 1.0)])
        assert cdf.support == (2,)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedCDF.from_weighted_values([(1, -1.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WeightedCDF.from_weighted_values([])

    def test_cumulative_must_be_monotone(self):
        with pytest.raises(ValueError):
            WeightedCDF((1, 2), (0.9, 0.5))

    def test_support_must_be_increasing(self):
        with pytest.raises(ValueError):
            WeightedCDF((2, 1), (0.5, 1.0))

    def test_evaluate_at_paper_points(self):
        cdf = WeightedCDF.from_weighted_values([(1, 1.0), (64, 1.0)])
        points = cdf.evaluate(PAPER_CDF_POINTS)
        assert points[1] == pytest.approx(0.5)
        assert points[32] == pytest.approx(0.5)
        assert points[64] == pytest.approx(1.0)
        assert points[1024] == pytest.approx(1.0)

    def test_quantile(self):
        cdf = WeightedCDF.from_weighted_values([(1, 1.0), (8, 1.0)])
        assert cdf.quantile(0.5) == 1
        assert cdf.quantile(0.75) == 8
        assert cdf.quantile(1.0) == 8

    def test_quantile_bounds_checked(self):
        cdf = WeightedCDF.from_weighted_values([(1, 1.0)])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)


class TestAverageContiguity:
    def test_single_run(self):
        assert average_contiguity([8]) == pytest.approx(8.0)

    def test_page_weighting(self):
        # 4 pages in a 4-run and 1 page in a 1-run: (16 + 1) / 5.
        assert average_contiguity([4, 1]) == pytest.approx(17 / 5)

    def test_all_singletons_average_one(self):
        assert average_contiguity([1] * 10) == pytest.approx(1.0)

    def test_empty_average_is_zero(self):
        assert average_contiguity([]) == 0.0

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            average_contiguity([0])

    def test_paper_example_shape(self):
        # A mix resembling the paper's intermediate regime: average falls
        # between the smallest and largest run lengths, weighted upward.
        avg = average_contiguity([1, 1, 16, 64])
        assert 1 < avg < 64
        assert avg > (1 + 1 + 16 + 64) / 4  # page weighting exceeds naive


class TestContiguityCDF:
    def test_pages_in_long_runs_dominate(self):
        cdf = contiguity_cdf([1, 9])
        # 9 of 10 pages live in the 9-run.
        assert cdf.at(1) == pytest.approx(0.1)
        assert cdf.at(9) == pytest.approx(1.0)
