"""Fault injection, crash-tolerant execution, and the hardened store.

The backbone is the chaos matrix: a seeded ``COLT_FAULTS`` plan kills
workers, raises in tasks, blows deadlines or corrupts store writes,
and every recovered run must produce results *bit-identical* to the
fault-free baseline -- injected faults only delay or destroy work,
they never feed a number into a simulation.
"""

import pickle
import time

import pytest

from repro.common.errors import (
    ConfigurationError,
    InjectedFaultError,
    TaskExecutionError,
)
from repro.obs.trace import PROFILE_ENV, TRACE_ENV, reset_tracing
from repro.obs.registry import set_registry
from repro.osmem.kernel import KernelConfig
from repro.osmem.memhog import SIMULATION_AGING
from repro.sim.faults import FAULTS_ENV, FaultPlan, corrupt_bytes
from repro.sim.resilience import (
    RETRIES_ENV,
    TIMEOUT_ENV,
    ResilientExecutor,
    RetryPolicy,
    TaskSpec,
)
from repro.sim.runner import ExperimentRunner
from repro.sim.store import (
    QUARANTINE_DIR,
    STORE_ENV,
    STORE_MAGIC,
    ResultStore,
    frame_payload,
    unframe_payload,
)
from repro.sim.system import SimulationConfig, simulate


@pytest.fixture
def obs_off(monkeypatch):
    """Guarantee observability is fully disabled and state reset."""
    monkeypatch.delenv(TRACE_ENV, raising=False)
    monkeypatch.delenv(PROFILE_ENV, raising=False)
    reset_tracing()
    set_registry(None)
    yield
    reset_tracing()
    set_registry(None)


#: One scenario group, four designs: 1 capture task, 2 replay chunks
#: at jobs=2 -- small enough for a parametrised matrix, structured
#: enough to give every fault site a target.
CHAOS_CONFIG = SimulationConfig(
    benchmark="gobmk",
    kernel=KernelConfig(num_frames=4096),
    accesses=1500,
    scale=0.1,
    seed=11,
    aging=SIMULATION_AGING,
    churn_every=48,
)


@pytest.fixture(scope="module")
def baseline():
    """Fault-free reference results for ``CHAOS_CONFIG``'s design set."""
    reset_tracing()
    set_registry(None)
    runner = ExperimentRunner(jobs=1, policy=RetryPolicy(max_retries=0))
    return runner.run_designs(CHAOS_CONFIG)


@pytest.fixture(scope="module")
def sim_pair():
    """One small real (config, result) pair for store round-trips."""
    config = CHAOS_CONFIG.with_updates(accesses=600)
    return config, simulate(config)


# ---------------------------------------------------------------------------
# Fault plan grammar and firing.
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_render_round_trip(self):
        text = (
            "crash@capture:0;raise@replay:1,3x2;"
            "delay@replay:0/0.5;torn@store.write:2"
        )
        assert FaultPlan.parse(text).render() == text

    def test_campaign_site_parses_and_fires_in_parent(self):
        # ``campaign`` faults always fire in the coordinating process,
        # so even ``crash`` demotes to a catchable exception -- the
        # chaos test kills the campaign loop, not the test runner.
        plan = FaultPlan.parse("crash@campaign:1")
        plan.fire("campaign", 0, 0)  # wrong index: no-op
        with pytest.raises(InjectedFaultError):
            plan.fire("campaign", 1, 0)
        assert plan.counters.as_dict()["crash"] == 1

    @pytest.mark.parametrize("bad", [
        "nonsense",
        "explode@capture:0",          # unknown kind
        "raise@store.write:0",        # execution kind at the store site
        "torn@capture:0",             # store kind at a task site
        "raise@capture:0x0",          # times must be >= 1
        "raise@boot:0",               # unknown site
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(bad)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV, "  ")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV, "raise@capture:0")
        plan = FaultPlan.from_env()
        assert plan is not None and plan.render() == "raise@capture:0"

    def test_fire_matches_site_index_attempt(self):
        plan = FaultPlan.parse("raise@capture:0")
        plan.fire("capture", 1, 0)   # wrong index: no-op
        plan.fire("replay", 0, 0)    # wrong site: no-op
        plan.fire("capture", 0, 1)   # attempt past times: escaped
        with pytest.raises(InjectedFaultError):
            plan.fire("capture", 0, 0)
        assert plan.counters.as_dict()["raise"] == 1

    def test_crash_in_parent_degrades_to_exception(self):
        # Fired from the pid that built the plan (serial execution):
        # a hard exit would kill the experiment, so it raises instead.
        plan = FaultPlan.parse("crash@capture:0")
        with pytest.raises(InjectedFaultError):
            plan.fire("capture", 0, 0)
        assert plan.counters.as_dict()["crash"] == 1

    def test_delay_sleeps_then_continues(self):
        plan = FaultPlan.parse("delay@replay:0/0.01")
        started = time.monotonic()
        plan.fire("replay", 0, 0)
        assert time.monotonic() - started >= 0.01
        assert plan.counters.as_dict()["delay"] == 1

    def test_corruption_schedule(self):
        plan = FaultPlan.parse("torn@store.write:0;corrupt@store.write:2")
        assert plan.corruption(0) == "torn"
        assert plan.corruption(1) is None
        assert plan.corruption(2) == "corrupt"

    def test_corrupt_bytes(self):
        data = b"x" * 64
        assert corrupt_bytes(data, "torn") == b"x" * 32
        flipped = corrupt_bytes(data, "corrupt")
        assert len(flipped) == 64 and flipped != data
        with pytest.raises(ConfigurationError):
            corrupt_bytes(data, "sparkle")

    def test_plan_is_picklable(self):
        plan = FaultPlan.parse("crash@capture:0;torn@store.write:1")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.render() == plan.render()


class TestRetryPolicy:
    def test_backoff_is_deterministic_exponential(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=2.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.4)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "5")
        monkeypatch.setenv(TIMEOUT_ENV, "12.5")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 5
        assert policy.timeout_s == pytest.approx(12.5)
        monkeypatch.setenv(TIMEOUT_ENV, "0")
        assert RetryPolicy.from_env().timeout_s is None


# ---------------------------------------------------------------------------
# Store framing.
# ---------------------------------------------------------------------------


class TestFraming:
    def test_round_trip(self):
        payload = b"payload bytes" * 100
        frame = frame_payload(payload)
        assert frame.startswith(STORE_MAGIC)
        assert unframe_payload(frame) == payload

    def test_legacy_unframed_passthrough(self):
        raw = pickle.dumps({"legacy": True})
        assert unframe_payload(raw) == raw

    def test_rejects_bit_flip(self):
        frame = frame_payload(b"payload bytes" * 100)
        with pytest.raises(ValueError):
            unframe_payload(corrupt_bytes(frame, "corrupt"))

    def test_rejects_truncation(self):
        frame = frame_payload(b"payload bytes" * 100)
        with pytest.raises(ValueError):
            unframe_payload(corrupt_bytes(frame, "torn"))
        with pytest.raises(ValueError):
            unframe_payload(frame[:20])  # shorter than the header


# ---------------------------------------------------------------------------
# Hardened store: quarantine, degrade, fault-driven corruption.
# ---------------------------------------------------------------------------


class TestHardenedStore:
    def test_save_load_round_trip_is_framed(self, tmp_path, obs_off,
                                            sim_pair):
        config, result = sim_pair
        store = ResultStore(tmp_path / "cache")
        store.save(config, result)
        (entry,) = store.root.glob("*.pkl")
        assert entry.read_bytes().startswith(STORE_MAGIC)
        assert ResultStore(tmp_path / "cache").load(config) == result

    def test_legacy_raw_pickle_still_loads(self, tmp_path, obs_off,
                                           sim_pair):
        config, result = sim_pair
        store = ResultStore(tmp_path / "cache")
        store._path(config).write_bytes(pickle.dumps(result))
        assert store.load(config) == result
        assert store.counters.as_dict()["hits"] == 1

    @pytest.mark.parametrize("mutate, exc_counter", [
        (lambda blob: b"complete garbage", "corrupt_unpicklingerror"),
        (lambda blob: corrupt_bytes(blob, "corrupt"), "corrupt_valueerror"),
        (lambda blob: corrupt_bytes(blob, "torn"), "corrupt_valueerror"),
        (
            lambda blob: frame_payload(b"cmissing_mod\nMissingClass\n."),
            "corrupt_modulenotfounderror",
        ),
    ])
    def test_undecodable_entry_is_quarantined(self, tmp_path, obs_off,
                                              sim_pair, mutate, exc_counter):
        config, result = sim_pair
        store = ResultStore(tmp_path / "cache")
        store.save(config, result)
        path = store._path(config)
        path.write_bytes(mutate(path.read_bytes()))
        assert store.load(config) is None
        counts = store.counters.as_dict()
        assert counts["quarantines"] == 1
        assert counts[exc_counter] == 1
        assert not path.exists()
        assert (store.root / QUARANTINE_DIR / path.name).exists()
        # Quarantined entries are invisible to the live store.
        assert len(store) == 0

    def test_unwritable_root_degrades_to_storeless(self, tmp_path,
                                                   monkeypatch, obs_off,
                                                   sim_pair):
        config, result = sim_pair
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory should be")
        store = ResultStore(blocker / "cache")
        assert store.disabled
        store.save(config, result)       # no-op, no raise
        assert store.load(config) is None
        assert len(store) == 0
        assert store.clear() == 0
        monkeypatch.setenv(STORE_ENV, str(blocker / "cache"))
        assert ResultStore.from_env() is None

    def test_write_faults_corrupt_scheduled_entries(self, tmp_path,
                                                    obs_off, sim_pair):
        config, result = sim_pair
        plan = FaultPlan.parse("torn@store.write:0;corrupt@store.write:1")
        store = ResultStore(tmp_path / "cache", faults=plan)
        victim_a = config.with_updates(seed=777)
        victim_b = config.with_updates(seed=778)
        store.save(victim_a, result)     # write 0: torn
        store.save(victim_b, result)     # write 1: bit-flipped
        store.save(config, result)       # write 2: intact
        assert plan.counters.as_dict() == {
            "crash": 0, "raise": 0, "delay": 0, "torn": 1, "corrupt": 1,
            "worker-lost": 0, "shard-desync": 0,
        }
        fresh = ResultStore(tmp_path / "cache")
        assert fresh.load(victim_a) is None
        assert fresh.load(victim_b) is None
        assert fresh.load(config) == result
        counts = fresh.counters.as_dict()
        assert counts["quarantines"] == 2
        assert counts["hits"] == 1

    def test_clear_purges_quarantine_too(self, tmp_path, obs_off, sim_pair):
        config, result = sim_pair
        store = ResultStore(tmp_path / "cache")
        store.save(config, result)
        store._path(config).write_bytes(b"junk")
        assert store.load(config) is None
        store.save(config, result)
        assert store.clear() == 2  # one live entry + one quarantined
        assert len(store) == 0
        assert not list((store.root / QUARANTINE_DIR).glob("*.pkl"))


# ---------------------------------------------------------------------------
# ResilientExecutor unit behaviour (synthetic picklable tasks).
# ---------------------------------------------------------------------------


def _double(value, attempt):
    return value * 2


def _fail_first(value, attempt):
    if attempt == 0:
        raise ValueError("first attempt always fails")
    return value


def _always_fail(value, attempt):
    raise ValueError("never works")


def _slow_first(value, attempt):
    if attempt == 0:
        time.sleep(0.8)
    return value


def _task(fn, value, index, site="capture"):
    return TaskSpec(
        fn=fn, args=(value,), site=site, index=index,
        context={"value": value},
    )


class TestResilientExecutor:
    def test_serial_yields_in_order(self):
        with ResilientExecutor(jobs=1) as executor:
            results = [
                result
                for _, result in executor.run(
                    [_task(_double, v, i) for i, v in enumerate((1, 2, 3))]
                )
            ]
        assert results == [2, 4, 6]

    def test_serial_retry_recovers(self):
        policy = RetryPolicy(max_retries=2, backoff_s=0.0)
        with ResilientExecutor(jobs=1, policy=policy) as executor:
            results = [r for _, r in executor.run([_task(_fail_first, 7, 0)])]
        assert results == [7]
        counts = executor.counters.as_dict()
        assert counts["retries"] == 1
        assert counts["task_errors"] == 1

    def test_exhaustion_yields_survivors_then_raises(self):
        policy = RetryPolicy(max_retries=1, backoff_s=0.0)
        tasks = [_task(_always_fail, 0, 0), _task(_double, 21, 1)]
        received = []
        with ResilientExecutor(jobs=1, policy=policy) as executor:
            with pytest.raises(TaskExecutionError) as exc_info:
                for _, result in executor.run(tasks):
                    received.append(result)
        assert received == [42]
        assert exc_info.value.context == {"value": 0}
        assert "capture task 0" in str(exc_info.value)

    def test_pool_deadline_triggers_retry(self):
        policy = RetryPolicy(max_retries=2, backoff_s=0.0, timeout_s=0.2)
        with ResilientExecutor(jobs=2, policy=policy) as executor:
            results = [r for _, r in executor.run([_task(_slow_first, 9, 0)])]
        assert results == [9]
        counts = executor.counters.as_dict()
        assert counts["timeouts"] >= 1
        assert counts["retries"] >= 1


# ---------------------------------------------------------------------------
# Chaos matrix: faulted runs == fault-free baseline, bit for bit.
# ---------------------------------------------------------------------------


class TestChaosMatrix:
    @pytest.mark.parametrize("plan_text", [
        pytest.param("crash@capture:0", id="worker-crash"),
        pytest.param("raise@capture:0", id="capture-exception"),
        pytest.param("raise@replay:0;raise@replay:1", id="replay-exceptions"),
        pytest.param("delay@replay:0/1.0", id="deadline-blown"),
    ])
    def test_faulted_run_matches_baseline(self, obs_off, baseline,
                                          plan_text):
        policy = RetryPolicy(
            max_retries=3, backoff_s=0.01,
            timeout_s=0.25 if "delay" in plan_text else None,
        )
        plan = FaultPlan.parse(plan_text)
        runner = ExperimentRunner(jobs=2, policy=policy, faults=plan)
        results = runner.run_designs(CHAOS_CONFIG)
        assert results == baseline
        counts = runner.resilience_counters.as_dict()
        assert counts["retries"] >= 1
        assert runner.resilience_summary() is not None

    def test_double_crash_rebuilds_then_downgrades(self, obs_off, baseline):
        plan = FaultPlan.parse("crash@capture:0x2")
        runner = ExperimentRunner(
            jobs=2,
            policy=RetryPolicy(max_retries=3, backoff_s=0.01),
            faults=plan,
        )
        results = runner.run_designs(CHAOS_CONFIG)
        assert results == baseline
        counts = runner.resilience_counters.as_dict()
        assert counts["pool_rebuilds"] == 1
        assert counts["serial_downgrades"] == 1
        assert counts["retries"] == 2

    def test_retry_exhaustion_names_the_config(self, obs_off):
        plan = FaultPlan.parse("raise@capture:0x99")
        runner = ExperimentRunner(
            jobs=1,
            policy=RetryPolicy(max_retries=1, backoff_s=0.0),
            faults=plan,
        )
        with pytest.raises(TaskExecutionError) as exc_info:
            runner.run_designs(CHAOS_CONFIG)
        assert "gobmk" in str(exc_info.value)
        assert exc_info.value.context["benchmark"] == "gobmk"
        assert exc_info.value.context["seed"] == 11

    def test_partial_batch_checkpoints_then_resumes(self, tmp_path, obs_off,
                                                    baseline):
        store = ResultStore(tmp_path / "cache")
        plan = FaultPlan.parse("raise@replay:1x99")
        runner = ExperimentRunner(
            jobs=2, store=store,
            policy=RetryPolicy(max_retries=0, backoff_s=0.0),
            faults=plan,
        )
        with pytest.raises(TaskExecutionError):
            runner.run_designs(CHAOS_CONFIG)
        # The surviving replay chunk checkpointed before the raise.
        assert len(store) >= 1
        resume_store = ResultStore(tmp_path / "cache")
        resume = ExperimentRunner(jobs=2, store=resume_store)
        assert resume.run_designs(CHAOS_CONFIG) == baseline
        assert resume_store.counters.as_dict()["hits"] >= 1

    def test_campaign_crash_then_resume_matches_baseline(
        self, tmp_path, obs_off, baseline, monkeypatch
    ):
        """``crash@campaign``: die after mark-running, resume from the
        journal, and end bit-identical to the fault-free baseline."""
        from repro.sim.campaign import CampaignManifest, CampaignRunner

        captured = {}

        class _ChaosExperiment:
            id = "chaos"

            def run(self, scale, runner):
                captured["results"] = runner.run_designs(CHAOS_CONFIG)

                class _Table:
                    @staticmethod
                    def format_table():
                        return "chaos"

                return _Table()

        monkeypatch.setattr(
            "repro.experiments.registry.get_experiment",
            lambda exp_id: _ChaosExperiment(),
        )
        store = ResultStore(tmp_path / "cache")
        manifest = CampaignManifest.fresh(tmp_path / "m.json", ["chaos"],
                                          "fp")
        campaign = CampaignRunner(
            manifest, ExperimentRunner(jobs=2, store=store), scale=None,
            tables_dir=tmp_path / "tables",
            faults=FaultPlan.parse("crash@campaign:0"),
        )
        with pytest.raises(InjectedFaultError):
            campaign.run()
        # Killed between mark-running and mark-done: in flight.
        journal = CampaignManifest.load(tmp_path / "m.json")
        assert journal.status("chaos") == "running"

        resumed = CampaignRunner(
            journal,
            ExperimentRunner(jobs=2, store=ResultStore(tmp_path / "cache")),
            scale=None, tables_dir=tmp_path / "tables",
        )
        status = resumed.run()
        assert status.ok and status.completed == ["chaos"]
        assert journal.is_complete()
        assert captured["results"] == baseline

    def test_serial_crash_demotes_to_recoverable_exception(self, obs_off,
                                                           baseline):
        plan = FaultPlan.parse("crash@capture:0")
        runner = ExperimentRunner(
            jobs=1,
            policy=RetryPolicy(max_retries=2, backoff_s=0.0),
            faults=plan,
        )
        results = runner.run_designs(CHAOS_CONFIG)
        assert results == baseline
        assert plan.counters.as_dict()["crash"] == 1
        assert runner.resilience_counters.as_dict()["retries"] == 1
