"""Tests for the project-wide static analysis framework.

Covers the shared pragma implementation (edge cases the refactor must
not regress), call-graph worker/thread/signal coloring on synthetic
fixtures, the registry-coherence positive/negative matrices, SARIF/JSON
round-trips, baseline add/expire semantics, and the repo-level
guarantees: ``colt-analyze`` runs clean against the checked-in baseline
and the generated docs are fresh.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.static import registries
from repro.analysis.static.baseline import Baseline, BaselineEntry
from repro.analysis.static.cli import main
from repro.analysis.static.coherence import RegistryCoherencePass
from repro.analysis.static.concurrency import ConcurrencyPass
from repro.analysis.static.docs import check_docs
from repro.analysis.static.hygiene import ExceptionHygienePass
from repro.analysis.static.lint_rules import LintPass
from repro.analysis.static.model import ProjectModel
from repro.analysis.static.passes import (
    Finding,
    fingerprint_findings,
    run_passes,
)
from repro.analysis.static.sarif import (
    from_json,
    from_sarif,
    to_json,
    to_sarif,
)
from repro.analysis.static.vectorization import analyze_project, render_report

REPO_ROOT = Path(__file__).resolve().parents[1]


def project_of(*sources):
    """ProjectModel from (path, source) pairs."""
    return ProjectModel.from_sources(list(sources))


def rules_of(findings):
    return [f.rule for f in findings]


@pytest.fixture(scope="module")
def repo_project():
    return ProjectModel.from_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tools"]
    )


# ---------------------------------------------------------------------------
# Pragmas (the one shared implementation)
# ---------------------------------------------------------------------------

class TestPragmas:
    def run_lint(self, source, path="src/repro/m.py"):
        return run_passes(project_of((path, source)), [LintPass()])

    def test_multi_rule_pragma_suppresses_both(self):
        source = (
            "import time\n"
            "ok = time.time() == 0.5"
            "  # colt-lint: disable=wall-clock,float-eq\n"
        )
        assert self.run_lint(source) == []

    def test_multi_rule_pragma_is_not_a_wildcard(self):
        source = (
            "import time\n"
            "ok = time.time() == 0.5  # colt-lint: disable=wall-clock\n"
        )
        assert rules_of(self.run_lint(source)) == ["float-eq"]

    def test_disable_all(self):
        source = (
            "import time\n"
            "ok = time.time() == 0.5  # colt-lint: disable=all\n"
        )
        assert self.run_lint(source) == []

    def test_pragma_on_decorated_def(self):
        source = (
            "def deco(fn):\n"
            "    return fn\n"
            "\n"
            "@deco\n"
            "def f(x=[]):  # colt-lint: disable=mutable-default\n"
            "    return x\n"
        )
        assert self.run_lint(source) == []

    def test_decorated_def_without_pragma_still_fires(self):
        source = (
            "def deco(fn):\n"
            "    return fn\n"
            "\n"
            "@deco\n"
            "def f(x=[]):\n"
            "    return x\n"
        )
        assert rules_of(self.run_lint(source)) == ["mutable-default"]

    def test_pragma_applies_to_every_pass(self):
        source = (
            "import signal\n"
            "import logging\n"
            "LOG = logging.getLogger()\n"
            "def handler(signum, frame):\n"
            "    LOG.warning('x')  # colt-lint: disable=signal-handler-work\n"
            "signal.signal(2, handler)\n"
        )
        project = project_of(("src/repro/sim/x.py", source))
        assert run_passes(project, [ConcurrencyPass()]) == []


# ---------------------------------------------------------------------------
# Call graph: worker / thread / signal coloring
# ---------------------------------------------------------------------------

WORKER_MOD = """\
from repro.work.helpers import mutate_state

def run_task(payload, attempt):
    return mutate_state(payload)

def local_only(payload):
    return payload

def schedule(pool):
    pool.submit(run_task, 1)
"""

HELPER_MOD = """\
_STATE = None

def mutate_state(payload):
    global _STATE
    _STATE = payload
    return payload

def untouched(payload):
    global _STATE
    _STATE = payload
    return payload
"""


class TestWorkerReachability:
    def make_project(self):
        return project_of(
            ("src/repro/work/pool.py", WORKER_MOD),
            ("src/repro/work/helpers.py", HELPER_MOD),
        )

    def test_cross_module_reachability_colored(self):
        project = self.make_project()
        colored = project.worker_reachable()
        assert ("repro.work.helpers", "mutate_state") in colored
        assert ("repro.work.pool", "local_only") not in colored

    def test_worker_global_mutation_flagged_with_root(self):
        project = self.make_project()
        findings = run_passes(project, [ConcurrencyPass()])
        # mutate_state is reachable from the submitted task; untouched
        # has the same global write but no path from a worker root.
        assert rules_of(findings) == ["worker-global-mutation"]
        assert "mutate_state" in findings[0].message
        assert "run_task" in findings[0].message
        assert "untouched" not in findings[0].message

    def test_taskspec_fn_and_initializer_are_roots(self):
        source = (
            "def init_worker():\n"
            "    global A\n"
            "    A = 1\n"
            "def task(x):\n"
            "    global B\n"
            "    B = x\n"
            "def launch(pool):\n"
            "    spec = TaskSpec(fn=task)\n"
            "    pool.start(initializer=init_worker)\n"
            "    return spec\n"
        )
        project = project_of(("src/repro/work/spec.py", source))
        colored = project.worker_reachable()
        assert ("repro.work.spec", "init_worker") in colored
        assert ("repro.work.spec", "task") in colored

    def test_signal_handler_registration(self):
        source = (
            "import signal\n"
            "def on_term(signum, frame):\n"
            "    pass\n"
            "signal.signal(15, on_term)\n"
        )
        project = project_of(("src/repro/sim/sig.py", source))
        handlers = [info.key[1] for info in project.signal_handlers()]
        assert handlers == ["on_term"]

    def test_signal_handler_work_flagged_but_flags_allowed(self):
        source = (
            "import signal\n"
            "class Coord:\n"
            "    def __init__(self):\n"
            "        signal.signal(15, self._handle)\n"
            "    def _handle(self, signum, frame):\n"
            "        self._stop.set()\n"
            "        self._journal.flush()\n"
        )
        project = project_of(("src/repro/sim/sig.py", source))
        findings = run_passes(project, [ConcurrencyPass()])
        assert rules_of(findings) == ["signal-handler-work"]
        assert "flush" in findings[0].message

    def test_unlocked_thread_write_flagged_locked_write_clean(self):
        template = (
            "import threading\n"
            "class Monitor:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.level = 0\n"
            "        t = threading.Thread(target=self._run)\n"
            "        t.start()\n"
            "    def _run(self):\n"
            "        {write}\n"
            "    def read(self):\n"
            "        with self._lock:\n"
            "            return self.level\n"
        )
        unlocked = template.format(write="self.level = 1")
        locked = template.format(
            write="with self._lock:\n            self.level = 1"
        )
        bad = run_passes(
            project_of(("src/repro/sim/mon.py", unlocked)),
            [ConcurrencyPass()],
        )
        assert rules_of(bad) == ["unlocked-shared-state"]
        assert "self.level" in bad[0].message
        good = run_passes(
            project_of(("src/repro/sim/mon.py", locked)),
            [ConcurrencyPass()],
        )
        assert good == []


# ---------------------------------------------------------------------------
# Registry coherence: positive/negative matrices
# ---------------------------------------------------------------------------

def coherence_pass(knobs=(), metrics=(), spans=(), fault_sites=()):
    return RegistryCoherencePass(
        knobs=knobs, metrics=metrics, spans=spans, fault_sites=fault_sites
    )


class TestRegistryCoherence:
    def test_undeclared_env_knob(self):
        source = "import os\nV = os.environ.get('COLT_MYSTERY', '')\n"
        findings = run_passes(
            project_of(("src/repro/sim/knob.py", source)),
            [coherence_pass()],
        )
        assert rules_of(findings) == ["undeclared-env-knob"]
        assert "COLT_MYSTERY" in findings[0].message

    def test_declared_env_knob_clean(self):
        knob = registries.EnvKnob(
            name="COLT_MYSTERY", default="0",
            consumer="repro/sim/knob.py", cli_flag=None, description="d",
        )
        source = "import os\nV = os.environ.get('COLT_MYSTERY', '')\n"
        findings = run_passes(
            project_of(("src/repro/sim/knob.py", source)),
            [coherence_pass(knobs=(knob,))],
        )
        assert findings == []

    def test_dead_env_knob_requires_consumer_in_scan(self):
        knob = registries.EnvKnob(
            name="COLT_GONE", default="0",
            consumer="repro/sim/knob.py", cli_flag=None, description="d",
        )
        # Consumer module present but never references the knob: dead.
        findings = run_passes(
            project_of(("src/repro/sim/knob.py", "X = 1\n")),
            [coherence_pass(knobs=(knob,))],
        )
        assert rules_of(findings) == ["dead-env-knob"]
        # Consumer module not part of the scan: no spurious noise.
        findings = run_passes(
            project_of(("src/repro/sim/other.py", "X = 1\n")),
            [coherence_pass(knobs=(knob,))],
        )
        assert findings == []

    def test_docstring_mention_is_not_a_use(self):
        source = '"""Reads COLT_PHANTOM from the environment."""\nX = 1\n'
        findings = run_passes(
            project_of(("src/repro/sim/doc.py", source)),
            [coherence_pass()],
        )
        assert findings == []

    def test_undeclared_metric(self):
        source = "def f(reg):\n    reg.counter('colt_surprise')\n"
        findings = run_passes(
            project_of(("src/repro/obs/m.py", source)),
            [coherence_pass()],
        )
        assert rules_of(findings) == ["undeclared-metric"]

    def test_unemitted_and_unreported_metric(self):
        metric = registries.MetricDecl(
            name="colt_thing", kind="counter",
            module="repro/obs/m.py", reported=True, description="d",
        )
        # Declared but never emitted.
        findings = run_passes(
            project_of(("src/repro/obs/m.py", "X = 1\n")),
            [coherence_pass(metrics=(metric,))],
        )
        assert rules_of(findings) == ["unemitted-metric"]
        # Emitted but the report never reads it.
        emit = "def f(reg):\n    reg.counter('colt_thing')\n"
        findings = run_passes(
            project_of(
                ("src/repro/obs/m.py", emit),
                ("src/repro/obs/report.py", "X = 1\n"),
            ),
            [coherence_pass(metrics=(metric,))],
        )
        assert rules_of(findings) == ["unreported-metric"]
        # Emitted and read: clean.
        findings = run_passes(
            project_of(
                ("src/repro/obs/m.py", emit),
                ("src/repro/obs/report.py", "Y = m.get('colt_thing')\n"),
            ),
            [coherence_pass(metrics=(metric,))],
        )
        assert findings == []

    def test_counterset_prefix_reported_via_fstring_head(self):
        metric = registries.MetricDecl(
            name="colt_pool", kind="counterset-prefix",
            module="repro/obs/m.py", reported=True, description="d",
        )
        emit = (
            "def f(reg, counters):\n"
            "    bind_counterset(reg, 'colt_pool', counters)\n"
        )
        report = (
            "def g(name, m):\n"
            "    return m.get(f'colt_pool_{name}')\n"
        )
        findings = run_passes(
            project_of(
                ("src/repro/obs/m.py", emit),
                ("src/repro/obs/report.py", report),
            ),
            [coherence_pass(metrics=(metric,))],
        )
        assert findings == []

    def test_span_matrix(self):
        span = registries.SpanDecl(
            name="phase.run", kind="span",
            module="repro/sim/s.py", description="d",
        )
        emit = "def f(tracer):\n    with tracer.span('phase.run'):\n        pass\n"
        assert run_passes(
            project_of(("src/repro/sim/s.py", emit)),
            [coherence_pass(spans=(span,))],
        ) == []
        undeclared = run_passes(
            project_of(("src/repro/sim/s.py", emit)), [coherence_pass()]
        )
        assert rules_of(undeclared) == ["undeclared-span"]
        unemitted = run_passes(
            project_of(("src/repro/sim/s.py", "X = 1\n")),
            [coherence_pass(spans=(span,))],
        )
        assert rules_of(unemitted) == ["unemitted-span"]

    def test_fault_site_matrix(self):
        site = registries.FaultSiteDecl(
            name="capture", module="repro/sim/r.py", description="d",
        )
        emit = "def f(faults, i):\n    faults.fire('capture', i)\n"
        assert run_passes(
            project_of(("src/repro/sim/r.py", emit)),
            [coherence_pass(fault_sites=(site,))],
        ) == []
        undeclared = run_passes(
            project_of(("src/repro/sim/r.py", emit)), [coherence_pass()]
        )
        assert rules_of(undeclared) == ["undeclared-fault-site"]
        unemitted = run_passes(
            project_of(("src/repro/sim/r.py", "X = 1\n")),
            [coherence_pass(fault_sites=(site,))],
        )
        assert rules_of(unemitted) == ["unemitted-fault-site"]


# ---------------------------------------------------------------------------
# Exception hygiene
# ---------------------------------------------------------------------------

class TestExceptionHygiene:
    def run_hygiene(self, body, path="src/repro/sim/h.py"):
        return run_passes(
            project_of((path, body)), [ExceptionHygienePass()]
        )

    def test_overbroad_unmitigated(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        x = 1\n"
        )
        assert rules_of(self.run_hygiene(source)) == ["overbroad-except"]

    def test_broad_but_logged_is_mitigated(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception as exc:\n"
            "        _LOG.warning('boom: %s', exc)\n"
        )
        assert self.run_hygiene(source) == []

    def test_narrow_silent_flagged(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except OSError:\n"
            "        pass\n"
        )
        assert rules_of(self.run_hygiene(source)) == ["silent-except"]

    def test_out_of_scope_module_ignored(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert self.run_hygiene(source, "src/repro/core/mmu2.py") == []


# ---------------------------------------------------------------------------
# SARIF / JSON round-trips
# ---------------------------------------------------------------------------

FINDINGS = [
    Finding("src/repro/a.py", 3, 4, "wall-clock", "reads time"),
    Finding("src/repro/b.py", 10, 0, "silent-except", "swallows | pipes"),
]


class TestSerialization:
    def test_sarif_round_trip(self):
        pairs = [(f, f"fp{i}") for i, f in enumerate(FINDINGS)]
        document = to_sarif(pairs, {"wall-clock": "time read"})
        assert document["version"] == "2.1.0"
        assert from_sarif(document) == FINDINGS

    def test_sarif_fingerprints_and_rules(self):
        document = to_sarif([(FINDINGS[0], "abcd")], {})
        run = document["runs"][0]
        assert run["results"][0]["partialFingerprints"] == {
            "coltAnalyze/v1": "abcd"
        }
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
            "wall-clock"
        ]

    def test_json_round_trip(self):
        pairs = [(f, None) for f in FINDINGS]
        assert from_json(to_json(pairs)) == FINDINGS

    def test_sarif_survives_json_serialization(self):
        pairs = [(f, "x") for f in FINDINGS]
        text = json.dumps(to_sarif(pairs, {}))
        assert from_sarif(json.loads(text)) == FINDINGS


# ---------------------------------------------------------------------------
# Fingerprints + baseline add/expire
# ---------------------------------------------------------------------------

class TestFingerprints:
    def test_stable_under_line_shift(self):
        bad_line = "import random\n"
        before = project_of(("src/repro/x.py", bad_line))
        after = project_of(("src/repro/x.py", "# a comment\n" + bad_line))
        fp_before = fingerprint_findings(
            before, run_passes(before, [LintPass()])
        )
        fp_after = fingerprint_findings(
            after, run_passes(after, [LintPass()])
        )
        assert fp_before[0][1] == fp_after[0][1]
        assert fp_before[0][0].line != fp_after[0][0].line

    def test_identical_lines_get_distinct_fingerprints(self):
        project = project_of(("src/repro/x.py", "import random\nimport random\n"))
        pairs = fingerprint_findings(
            project, run_passes(project, [LintPass()])
        )
        assert len(pairs) == 2
        assert pairs[0][1] != pairs[1][1]


class TestBaseline:
    def test_match_partitions_new_suppressed_expired(self):
        entry = BaselineEntry("fp0", "wall-clock", "a.py", 3, "why")
        stale = BaselineEntry("gone", "float-eq", "b.py", 9, "old")
        baseline = Baseline([entry, stale])
        match = baseline.match([(FINDINGS[0], "fp0"), (FINDINGS[1], "fp9")])
        assert [fp for _, fp in match.suppressed] == ["fp0"]
        assert [fp for _, fp in match.new] == ["fp9"]
        assert [e.fingerprint for e in match.expired] == ["gone"]

    def test_updated_keeps_justifications_and_drops_expired(self):
        baseline = Baseline([
            BaselineEntry("fp0", "wall-clock", "a.py", 3, "real reason"),
            BaselineEntry("gone", "float-eq", "b.py", 9, "old"),
        ])
        updated = baseline.updated(
            [(FINDINGS[0], "fp0"), (FINDINGS[1], "fp9")]
        )
        by_fp = {e.fingerprint: e for e in updated.entries}
        assert set(by_fp) == {"fp0", "fp9"}
        assert by_fp["fp0"].justification == "real reason"
        assert by_fp["fp9"].justification.startswith("TODO")

    def test_cli_baseline_lifecycle(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import random\n", encoding="utf-8")
        bl = tmp_path / "baseline.json"
        # New finding without a baseline: fail.
        assert main([str(target), "--baseline", str(bl)]) == 1
        # Admit it, then the same tree is clean.
        assert main(
            [str(target), "--baseline", str(bl), "--update-baseline"]
        ) == 0
        assert bl.exists()
        assert main([str(target), "--baseline", str(bl)]) == 0
        # Fix the finding: the entry expires (reported, but exit 0).
        target.write_text("X = 1\n", encoding="utf-8")
        capsys.readouterr()
        assert main([str(target), "--baseline", str(bl)]) == 0
        out = capsys.readouterr().out
        assert "expired" in out

    def test_cli_exit_two_on_missing_path(self, tmp_path):
        assert main([str(tmp_path / "nope.py"), "--no-baseline"]) == 2


# ---------------------------------------------------------------------------
# Vectorization-readiness report
# ---------------------------------------------------------------------------

class TestVectorization:
    def test_replay_targets_found_and_blockers_named(self, repo_project):
        report = render_report(analyze_project(repo_project))
        assert "repro/sim/replay.py::replay_scenario" in report
        assert "repro/sim/replay.py::ReplayWalker.walk" in report
        assert "repro/core/mmu.py::MMU.access" in report
        assert "Target not found" not in report
        # The real blockers of the per-access loop are called out.
        assert "mmu.access" in report
        assert "walker.cursor" in report
        assert "Blocking statements" in report

    def test_classification_on_synthetic_loop(self):
        source = (
            "def run(items, sink):\n"
            "    total = 0\n"
            "    for i in items:\n"
            "        v = int(i)\n"
            "        if v < 0:\n"
            "            raise ValueError(v)\n"
            "        total = total + v\n"
            "        sink.push(v)\n"
            "        sink.cursor = v\n"
        )
        import ast as ast_mod

        from repro.analysis.static.vectorization import classify_body

        project = project_of(("src/repro/sim/loop.py", source))
        module = project.modules[0]
        fn = module.tree.body[0]
        loop = fn.body[1]
        reports = classify_body(module, loop.body, {"i"})
        classes = {r.code: r.classification for r in reports}
        assert classes["v = int(i)"] == "vectorizable"
        assert classes["if v < 0:"] == "guard"
        assert classes["total = total + v"] == "loop-carried"
        assert classes["sink.push(v)"] == "side-effecting"
        assert classes["sink.cursor = v"] == "side-effecting"
        assert isinstance(loop, ast_mod.For)


# ---------------------------------------------------------------------------
# Repo-level guarantees
# ---------------------------------------------------------------------------

class TestRepoIsClean:
    def test_colt_analyze_clean_with_baseline(self, capsys):
        code = main([str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")])
        out = capsys.readouterr().out
        assert code == 0, out
        # The baseline is load-bearing, not empty.
        assert "baselined" in out

    def test_baseline_entries_are_justified(self):
        baseline = Baseline.load(REPO_ROOT / "tools" / "analysis_baseline.json")
        assert baseline.entries, "expected a non-empty baseline"
        for entry in baseline.entries:
            assert entry.justification, entry.fingerprint
            assert not entry.justification.startswith("TODO"), entry.path

    def test_generated_docs_are_fresh(self, repo_project):
        assert check_docs(REPO_ROOT, repo_project) == []
