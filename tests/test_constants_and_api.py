"""Sanity tests for architectural constants and the public API surface."""

import pytest

import repro
from repro.common import constants


class TestConstants:
    def test_page_geometry(self):
        assert constants.PAGE_SIZE == 1 << constants.PAGE_SHIFT
        assert constants.SUPERPAGE_SIZE == (
            constants.PAGE_SIZE * constants.SUPERPAGE_PAGES
        )
        assert constants.SUPERPAGE_PAGES == 1 << (
            constants.SUPERPAGE_SHIFT - constants.PAGE_SHIFT
        )

    def test_page_table_geometry(self):
        assert constants.PTES_PER_TABLE == 512
        assert (
            constants.BITS_PER_LEVEL * constants.PAGE_TABLE_LEVELS
            + constants.PAGE_SHIFT
            == constants.VIRTUAL_ADDRESS_BITS
        )

    def test_cache_line_holds_eight_ptes(self):
        # The coalescing window of Section 4.1.4.
        assert constants.PTES_PER_CACHE_LINE == 8
        assert (
            constants.PTES_PER_CACHE_LINE * constants.PTE_SIZE
            == constants.CACHE_LINE_SIZE
        )

    def test_paper_tlb_sizes(self):
        # Section 5.2.1's simulated hierarchy.
        assert constants.DEFAULT_L1_TLB_ENTRIES == 32
        assert constants.DEFAULT_L2_TLB_ENTRIES == 128
        assert constants.DEFAULT_SUPERPAGE_TLB_ENTRIES == 16
        assert constants.COLT_FA_TLB_ENTRIES == 8
        assert constants.DEFAULT_MMU_CACHE_ENTRIES == 22

    def test_buddy_max_order_matches_linux(self):
        assert constants.MAX_ORDER == 11
        assert constants.MAX_ORDER_PAGES == 1024


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_subpackage_exports_resolve(self):
        import repro.cache as cache
        import repro.common as common
        import repro.contiguity as contiguity
        import repro.core as core
        import repro.experiments as experiments
        import repro.osmem as osmem
        import repro.sim as sim
        import repro.tlb as tlb
        import repro.walker as walker
        import repro.workloads as workloads

        for module in (
            common, osmem, contiguity, cache, walker, tlb, core,
            workloads, sim, experiments,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (
                    f"{module.__name__}.{name}"
                )
