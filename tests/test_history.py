"""Tests for the persistent run-history series (repro.obs.history)
and the ``tools/obs_history.py`` CLI (trend / diff / gate)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.history import (
    BASELINE_SCHEMA,
    HISTORY_SCHEMA,
    append_record,
    build_record,
    diff_records,
    flatten_record,
    gate_history,
    gate_record,
    history_enabled,
    history_path,
    load_baseline,
    load_history,
    select_records,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _record(**overrides):
    fields = dict(
        ts=1_700_000_000.0,
        status="ok",
        figure="fig18",
        scale="quick",
        engine="scalar",
        fingerprint="abc123",
        wall={"total": 12.5, "fig18": 11.0},
        counters={"colt_mmu_accesses": 600000.0, "colt_mmu_walks": 21919.0},
        store={"hits": 0.0, "misses": 20.0, "hit_ratio": 0.0},
        campaign=True,
        telemetry=True,
        jobs=2,
    )
    fields.update(overrides)
    return build_record(**fields)


def _baseline(**overrides):
    base = {
        "schema": BASELINE_SCHEMA,
        "match": {"figure": "fig18", "scale": "quick", "engine": "scalar"},
        "exact_counters": {"colt_mmu_accesses": 600000.0},
        "ceilings": {"wall.total": 100.0},
        "floors": {},
    }
    base.update(overrides)
    return base


class TestRecords:
    def test_build_record_stamps_schema_and_sorts(self):
        record = _record()
        assert record["schema"] == HISTORY_SCHEMA
        assert list(record["counters"]) == sorted(record["counters"])
        assert record["wall"]["total"] == 12.5

    def test_build_record_rejects_unknown_status(self):
        with pytest.raises(ConfigurationError, match="status"):
            _record(status="exploded")

    def test_append_and_load_round_trip(self, tmp_path):
        path = history_path(tmp_path)
        assert path == tmp_path / "history" / "history.jsonl"
        append_record(path, _record())
        append_record(path, _record(status="failed", ts=1_700_000_100.0))
        records = load_history(path)
        assert [r["status"] for r in records] == ["ok", "failed"]

    def test_append_preserves_unknown_lines_verbatim(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text("not json at all\n", encoding="utf-8")
        append_record(path, _record())
        lines = path.read_text(encoding="utf-8").splitlines()
        assert lines[0] == "not json at all"
        assert len(load_history(path)) == 1  # bad line skipped on load

    def test_append_rejects_foreign_schema(self, tmp_path):
        with pytest.raises(ConfigurationError, match="schema"):
            append_record(tmp_path / "h.jsonl", {"schema": "nope"})

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_select_records_filters_coordinates(self):
        records = [
            _record(),
            _record(figure="table1"),
            _record(engine="vector"),
        ]
        assert len(select_records(records, figure="fig18")) == 2
        assert len(select_records(records, figure="fig18",
                                  engine="scalar")) == 1
        assert select_records(records, scale="full") == []

    def test_history_enabled_env(self, monkeypatch):
        monkeypatch.delenv("COLT_HISTORY", raising=False)
        assert history_enabled()
        for off in ("0", "off", "false", "NO"):
            monkeypatch.setenv("COLT_HISTORY", off)
            assert not history_enabled()
        monkeypatch.setenv("COLT_HISTORY", "1")
        assert history_enabled()


class TestDiff:
    def test_flatten_produces_dotted_numeric_paths(self):
        flat = flatten_record(_record())
        assert flat["wall.total"] == 12.5
        assert flat["counters.colt_mmu_walks"] == 21919.0
        assert "ts" not in flat  # timestamps never count as drift
        assert flat["campaign"] == 1.0

    def test_diff_reports_only_changes(self):
        a = _record()
        b = _record(wall={"total": 13.0, "fig18": 11.0},
                    counters={"colt_mmu_accesses": 600000.0,
                              "colt_mmu_walks": 21920.0})
        rows = {row["path"]: row for row in diff_records(a, b)}
        assert rows["wall.total"]["delta"] == pytest.approx(0.5)
        assert rows["counters.colt_mmu_walks"]["delta"] == 1.0
        assert "counters.colt_mmu_accesses" not in rows

    def test_diff_handles_one_sided_paths(self):
        a = _record()
        b = _record(counters={"colt_mmu_accesses": 600000.0})
        rows = {row["path"]: row for row in diff_records(a, b)}
        row = rows["counters.colt_mmu_walks"]
        assert row["a"] == 21919.0 and row["b"] is None
        assert row["delta"] is None


class TestGate:
    def test_gate_passes_matching_record(self):
        assert gate_record(_record(), _baseline()) == []

    def test_gate_fails_on_counter_drift(self):
        record = _record(counters={"colt_mmu_accesses": 600001.0})
        problems = gate_record(record, _baseline())
        assert len(problems) == 1
        assert "drifted" in problems[0]
        assert "colt_mmu_accesses" in problems[0]

    def test_gate_fails_on_missing_counter(self):
        record = _record(counters={})
        problems = gate_record(record, _baseline())
        assert any("missing" in p for p in problems)

    def test_gate_fails_on_wall_ceiling(self):
        record = _record(wall={"total": 101.0})
        problems = gate_record(record, _baseline())
        assert any("exceeds ceiling" in p for p in problems)

    def test_gate_floor_checked_only_when_present(self):
        baseline = _baseline(floors={"vector_speedup": 5.0})
        assert gate_record(_record(), baseline) == []  # no bench attached
        slow = _record(vector_speedup=3.0)
        assert any(
            "below floor" in p for p in gate_record(slow, baseline)
        )

    def test_gate_requires_ok_status(self):
        problems = gate_record(_record(status="failed"), _baseline())
        assert any("status" in p for p in problems)

    def test_gate_history_picks_newest_matching(self):
        records = [
            _record(counters={"colt_mmu_accesses": 1.0}),  # old, drifted
            _record(engine="vector"),                      # wrong engine
            _record(),                                     # newest match
        ]
        record, problems = gate_history(records, _baseline())
        assert problems == []
        assert record is records[2]

    def test_gate_history_reports_no_match(self):
        record, problems = gate_history(
            [_record(figure="table1")], _baseline()
        )
        assert record is None
        assert any("no history record matches" in p for p in problems)

    def test_load_baseline_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"schema": "wrong"}), encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_baseline(path)
        path.write_text(json.dumps(_baseline()), encoding="utf-8")
        assert load_baseline(path)["match"]["figure"] == "fig18"

    def test_committed_baseline_is_loadable(self):
        baseline = load_baseline(REPO_ROOT / "tools" / "history_baseline.json")
        assert baseline["match"] == {
            "figure": "fig18", "scale": "quick", "engine": "scalar",
        }
        assert len(baseline["exact_counters"]) >= 30
        assert baseline["ceilings"]["wall.total"] > 0


class TestCli:
    def _run(self, tmp_path, *argv):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "obs_history.py"),
             *argv],
            capture_output=True, text=True, cwd=tmp_path,
        )

    def test_cli_trend_gate_and_perturbed_rejection(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_record(history, _record())
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_baseline()), encoding="utf-8")

        trend = self._run(tmp_path, "--history", str(history))
        assert trend.returncode == 0
        assert "fig18" in trend.stdout

        ok = self._run(
            tmp_path, "--history", str(history),
            "--gate", "--baseline", str(baseline),
        )
        assert ok.returncode == 0, ok.stdout + ok.stderr
        assert "GATE OK" in ok.stdout

        # Perturb one bit-identity counter: the gate must reject.
        append_record(
            history, _record(counters={"colt_mmu_accesses": 600001.0,
                                       "colt_mmu_walks": 21919.0})
        )
        bad = self._run(
            tmp_path, "--history", str(history),
            "--gate", "--baseline", str(baseline),
        )
        assert bad.returncode == 1
        assert "GATE FAIL" in bad.stdout
        assert "colt_mmu_accesses" in bad.stdout

    def test_cli_diff_and_ingest_bench(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_record(history, _record())
        append_record(history, _record(wall={"total": 14.0}))

        diff = self._run(
            tmp_path, "--history", str(history), "--diff", "0", "-1"
        )
        assert diff.returncode == 0
        assert "wall.total" in diff.stdout

        bench = tmp_path / "BENCH_test.json"
        bench.write_text(
            json.dumps({"aggregate_speedup": 6.6}), encoding="utf-8"
        )
        ingest = self._run(
            tmp_path, "--history", str(history),
            "--ingest-bench", str(bench),
        )
        assert ingest.returncode == 0, ingest.stdout + ingest.stderr
        assert load_history(history)[-1]["vector_speedup"] == 6.6

    def test_cli_missing_history_exits_2(self, tmp_path):
        result = self._run(tmp_path, "--history", str(tmp_path / "no.jsonl"))
        assert result.returncode == 2
