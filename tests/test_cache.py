"""Tests for the cache model, hierarchy, and MMU page-walk cache."""

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.mmu_cache import MMUCache, MMUCacheConfig
from repro.common.errors import ConfigurationError


def tiny_cache(sets=4, ways=2, latency=1):
    return Cache(CacheConfig("test", sets * ways * 64, ways, latency))


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig("c", 32 * 1024, 8, 4)
        assert config.num_sets == 64

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("c", 1000, 3, 1)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("c", 0, 1, 1)


class TestCache:
    def test_miss_then_hit_after_fill(self):
        cache = tiny_cache()
        assert not cache.access(0x1000)
        cache.fill(0x1000)
        assert cache.access(0x1000)

    def test_same_line_addresses_share_entry(self):
        cache = tiny_cache()
        cache.fill(0x1000)
        assert cache.access(0x1004)
        assert cache.access(0x103F)

    def test_lru_eviction_within_set(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.fill(0 * 64)
        cache.fill(1 * 64)
        cache.access(0 * 64)  # promote line 0
        victim = cache.fill(2 * 64)
        assert victim == 1  # line 1 was LRU

    def test_set_mapping_is_modulo(self):
        cache = tiny_cache(sets=4, ways=1)
        cache.fill(0)
        cache.fill(4 * 64)  # same set (line 4 % 4 == 0)
        assert not cache.access(0)

    def test_invalidate(self):
        cache = tiny_cache()
        cache.fill(0x2000)
        assert cache.invalidate(0x2000)
        assert not cache.access(0x2000)
        assert not cache.invalidate(0x2000)

    def test_counters(self):
        cache = tiny_cache()
        cache.access(0)
        cache.fill(0)
        cache.access(0)
        assert cache.counters["misses"] == 1
        assert cache.counters["hits"] == 1

    def test_occupancy(self):
        cache = tiny_cache()
        assert cache.occupancy() == 0
        cache.fill(0)
        cache.fill(64)
        assert cache.occupancy() == 2

    def test_evict_lru_of_set(self):
        cache = tiny_cache(sets=2, ways=1)
        cache.fill(0)
        evicted = cache.evict_lru_of_set(0)
        assert evicted == 0
        assert cache.evict_lru_of_set(0) is None


class TestHierarchy:
    def test_pte_access_goes_straight_to_llc(self):
        hierarchy = CacheHierarchy()
        latency = hierarchy.access_pte(0x5000)
        # First access: LLC miss -> LLC latency + DRAM.
        config = hierarchy.config
        assert latency == config.llc.latency + config.dram_latency
        assert hierarchy.l1.counters["accesses"] == 0
        assert hierarchy.l2.counters["accesses"] == 0

    def test_pte_refetch_hits_llc(self):
        hierarchy = CacheHierarchy()
        hierarchy.access_pte(0x5000)
        latency = hierarchy.access_pte(0x5000)
        assert latency == hierarchy.config.llc.latency

    def test_data_access_fills_all_levels(self):
        hierarchy = CacheHierarchy()
        cold = hierarchy.access_data(0x9000)
        warm = hierarchy.access_data(0x9000)
        assert cold > warm
        assert warm == hierarchy.config.l1.latency

    def test_data_l2_hit_path(self):
        hierarchy = CacheHierarchy()
        hierarchy.access_data(0x9000)
        # Evict from L1 only by filling its set; easier: invalidate L1.
        hierarchy.l1.invalidate(0x9000)
        latency = hierarchy.access_data(0x9000)
        assert latency == (
            hierarchy.config.l1.latency + hierarchy.config.l2.latency
        )

    def test_dram_counter(self):
        hierarchy = CacheHierarchy()
        hierarchy.access_pte(0)
        hierarchy.access_data(1 << 20)
        assert hierarchy.counters["dram_accesses"] == 2


class TestMMUCache:
    def test_miss_on_cold_lookup(self):
        cache = MMUCache()
        assert cache.deepest_cached_level(12345) is None

    def test_fill_walk_then_pde_hit(self):
        cache = MMUCache()
        vpn = 5 << 9  # some vpn
        cache.fill_walk(vpn, levels_visited=4)
        assert cache.deepest_cached_level(vpn) == 2

    def test_superpage_walk_caches_upper_levels_only(self):
        cache = MMUCache()
        vpn = 512
        cache.fill_walk(vpn, levels_visited=3)
        # PML4E and PDPTE cached, PDE not (it was the leaf).
        assert cache.deepest_cached_level(vpn) == 1

    def test_neighbouring_vpn_shares_pde_entry(self):
        cache = MMUCache()
        cache.fill_walk(1000, levels_visited=4)
        assert cache.deepest_cached_level(1001) == 2
        # A vpn in a different 2MB region misses the PDE but hits PDPTE.
        assert cache.deepest_cached_level(1000 + 512) == 1

    def test_lru_eviction_at_capacity(self):
        cache = MMUCache(MMUCacheConfig(entries=2))
        cache.fill(2, 0)
        cache.fill(2, 512)
        cache.fill(2, 1024)  # evicts the (2, 0) entry
        assert cache.deepest_cached_level(0) is None
        assert cache.deepest_cached_level(1024) == 2

    def test_invalidate_vpn_drops_covering_entries(self):
        cache = MMUCache()
        cache.fill_walk(1000, levels_visited=4)
        cache.invalidate_vpn(1000)
        assert cache.deepest_cached_level(1000) is None

    def test_invalidate_all(self):
        cache = MMUCache()
        cache.fill_walk(1000, levels_visited=4)
        cache.invalidate_all()
        assert len(cache) == 0

    def test_invalid_level_rejected(self):
        with pytest.raises(ConfigurationError):
            MMUCache().fill(3, 0)

    def test_zero_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            MMUCacheConfig(entries=0)
