"""Tests for the set-associative and fully-associative TLB structures."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import PageAttributes, Translation
from repro.tlb.config import (
    FullyAssociativeTLBConfig,
    SetAssociativeTLBConfig,
)
from repro.tlb.entries import CoalescedEntry, RangeEntry
from repro.tlb.fully_associative import FullyAssociativeTLB
from repro.tlb.set_associative import SetAssociativeTLB


def run_of(start_vpn, start_pfn, length):
    return [
        Translation(start_vpn + i, start_pfn + i) for i in range(length)
    ]


class TestSAConfig:
    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeTLBConfig(entries=30, ways=4)  # not divisible
        with pytest.raises(ConfigurationError):
            SetAssociativeTLBConfig(entries=24, ways=4)  # 6 sets: not pow2
        with pytest.raises(ConfigurationError):
            SetAssociativeTLBConfig(entries=32, ways=4, index_shift=4)

    def test_group_size(self):
        config = SetAssociativeTLBConfig(entries=32, ways=4, index_shift=2)
        assert config.group_size == 4
        assert config.num_sets == 8


class TestSetAssociativeTLB:
    def conventional(self):
        return SetAssociativeTLB(SetAssociativeTLBConfig(32, 4, 0))

    def colt(self, shift=2):
        return SetAssociativeTLB(SetAssociativeTLBConfig(32, 4, shift))

    def test_miss_then_hit(self):
        tlb = self.conventional()
        assert tlb.lookup(100) is None
        tlb.insert_translation(Translation(100, 7))
        hit = tlb.lookup(100)
        assert hit.pfn == 7

    def test_conventional_indexing_maps_consecutive_vpns_apart(self):
        tlb = self.conventional()
        assert tlb.set_index_for(0) != tlb.set_index_for(1)

    def test_shifted_indexing_groups_consecutive_vpns(self):
        tlb = self.colt(shift=2)
        indexes = {tlb.set_index_for(vpn) for vpn in range(4)}
        assert len(indexes) == 1
        assert tlb.set_index_for(4) != tlb.set_index_for(3)

    def test_coalesced_entry_serves_whole_group(self):
        tlb = self.colt()
        tlb.insert(CoalescedEntry.from_run(run_of(8, 100, 4), 4))
        for offset in range(4):
            assert tlb.lookup(8 + offset).pfn == 100 + offset
        assert tlb.occupancy == 1
        assert tlb.resident_translations() == 4

    def test_same_group_disjoint_entries_coexist(self):
        # Non-contiguous translations in one group occupy separate ways.
        tlb = self.colt()
        tlb.insert_translation(Translation(8, 100))
        tlb.insert_translation(Translation(9, 500))
        assert tlb.lookup(8).pfn == 100
        assert tlb.lookup(9).pfn == 500
        assert tlb.occupancy == 2

    def test_overlapping_insert_replaces_stale_copy(self):
        tlb = self.colt()
        tlb.insert_translation(Translation(8, 100))
        tlb.insert(CoalescedEntry.from_run(run_of(8, 200, 2), 4))
        assert tlb.lookup(8).pfn == 200
        assert tlb.occupancy == 1

    def test_lru_eviction_within_set(self):
        tlb = SetAssociativeTLB(SetAssociativeTLBConfig(4, 2, 0))
        # Two sets; vpns 0 and 2 share set 0.
        tlb.insert_translation(Translation(0, 1))
        tlb.insert_translation(Translation(2, 2))
        tlb.lookup(0)  # promote
        tlb.insert_translation(Translation(4, 3))  # evicts vpn 2
        assert tlb.lookup(0) is not None
        assert tlb.lookup(2) is None

    def test_wrong_group_size_rejected(self):
        tlb = self.colt()
        with pytest.raises(ValueError):
            tlb.insert(CoalescedEntry.from_run(run_of(0, 0, 2), 2))

    def test_invalidation_drops_whole_coalesced_entry(self):
        tlb = self.colt()
        tlb.insert(CoalescedEntry.from_run(run_of(8, 100, 4), 4))
        assert tlb.invalidate(9)
        # The entire entry is gone, including unaffected pages
        # (Section 4.1.5).
        for offset in range(4):
            assert tlb.lookup(8 + offset) is None

    def test_invalidate_miss_returns_false(self):
        assert not self.colt().invalidate(123)

    def test_flush(self):
        tlb = self.colt()
        tlb.insert_translation(Translation(1, 1))
        tlb.flush()
        assert tlb.occupancy == 0

    def test_probe_matches_lookup(self):
        tlb = self.colt()
        tlb.insert(CoalescedEntry.from_run(run_of(8, 100, 3), 4))
        assert tlb.probe(9) == tlb.lookup(9).pfn

    def test_counters(self):
        tlb = self.conventional()
        tlb.lookup(5)
        tlb.insert_translation(Translation(5, 5))
        tlb.lookup(5)
        assert tlb.counters["misses"] == 1
        assert tlb.counters["hits"] == 1
        assert tlb.counters["fills"] == 1


class TestFullyAssociativeTLB:
    def baseline(self, entries=4):
        return FullyAssociativeTLB(FullyAssociativeTLBConfig(entries=entries))

    def coalescing(self, entries=4, max_span=1024):
        return FullyAssociativeTLB(
            FullyAssociativeTLBConfig(
                entries=entries,
                allow_coalesced=True,
                merge_on_insert=True,
                max_span=max_span,
            )
        )

    def test_superpage_hit_anywhere_in_range(self):
        tlb = self.baseline()
        tlb.insert_superpage(Translation(512, 1024, is_superpage=True))
        hit = tlb.lookup(512 + 300)
        assert hit.pfn == 1024 + 300
        assert hit.is_superpage

    def test_miss(self):
        assert self.baseline().lookup(7) is None

    def test_lru_eviction(self):
        tlb = self.baseline(entries=2)
        tlb.insert(RangeEntry.from_run(run_of(0, 0, 2)))
        tlb.insert(RangeEntry.from_run(run_of(100, 100, 2)))
        tlb.lookup(0)  # promote the first
        victim = tlb.insert(RangeEntry.from_run(run_of(200, 200, 2)))
        assert victim.base_vpn == 100
        assert tlb.lookup(0) is not None
        assert tlb.lookup(100) is None

    def test_insert_time_merging_extends_ranges(self):
        tlb = self.coalescing()
        tlb.insert(RangeEntry.from_run(run_of(10, 100, 4)))
        tlb.insert(RangeEntry.from_run(run_of(14, 104, 4)))
        assert tlb.occupancy == 1
        entry = tlb.covering_entry(12)
        assert entry.span == 8
        assert tlb.counters["merges"] == 1

    def test_merging_can_bridge_two_residents(self):
        tlb = self.coalescing()
        tlb.insert(RangeEntry.from_run(run_of(0, 0, 4)))
        tlb.insert(RangeEntry.from_run(run_of(8, 8, 4)))
        tlb.insert(RangeEntry.from_run(run_of(4, 4, 4)))  # bridges both
        assert tlb.occupancy == 1
        assert tlb.covering_entry(6).span == 12

    def test_merging_respects_max_span(self):
        tlb = self.coalescing(max_span=8)
        tlb.insert(RangeEntry.from_run(run_of(0, 0, 6)))
        tlb.insert(RangeEntry.from_run(run_of(6, 6, 6)))
        assert tlb.occupancy == 2

    def test_no_merging_when_disabled(self):
        tlb = self.baseline()
        tlb.insert(RangeEntry.from_run(run_of(0, 0, 4)))
        tlb.insert(RangeEntry.from_run(run_of(4, 4, 4)))
        assert tlb.occupancy == 2

    def test_invalidation_drops_covering_entries(self):
        tlb = self.coalescing()
        tlb.insert(RangeEntry.from_run(run_of(10, 100, 8)))
        assert tlb.invalidate(13)
        assert tlb.lookup(10) is None

    def test_resident_translations_counts_spans(self):
        tlb = self.coalescing()
        tlb.insert(RangeEntry.from_run(run_of(0, 0, 5)))
        tlb.insert_superpage(Translation(512, 1024, is_superpage=True))
        assert tlb.resident_translations() == 5 + 512

    def test_probe_matches_lookup(self):
        tlb = self.baseline()
        tlb.insert(RangeEntry.from_run(run_of(40, 400, 4)))
        assert tlb.probe(42) == tlb.lookup(42).pfn

    def test_flush(self):
        tlb = self.baseline()
        tlb.insert(RangeEntry.from_run(run_of(0, 0, 2)))
        tlb.flush()
        assert tlb.occupancy == 0
