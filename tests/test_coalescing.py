"""Tests for the coalescing logic (Figures 4-6's Coalescing Logic box)."""

import pytest

from repro.common.types import PageAttributes, Translation
from repro.core.coalescing import (
    clip_to_group,
    clip_to_window,
    contiguous_run_around,
    run_length_around,
)


def line(*pairs, attrs=PageAttributes.default_user()):
    return [Translation(v, p, attrs) for v, p in pairs]


class TestContiguousRunAround:
    def test_fully_contiguous_line(self):
        translations = line(*[(8 + i, 100 + i) for i in range(8)])
        run = contiguous_run_around(translations, 11)
        assert [t.vpn for t in run] == list(range(8, 16))

    def test_run_grows_both_directions(self):
        translations = line((8, 1), (9, 2), (10, 3), (11, 99))
        run = contiguous_run_around(translations, 9)
        assert [t.vpn for t in run] == [8, 9, 10]

    def test_pfn_break_stops_run(self):
        translations = line((8, 1), (9, 2), (10, 50), (11, 51))
        assert [t.vpn for t in contiguous_run_around(translations, 8)] == [8, 9]
        assert [t.vpn for t in contiguous_run_around(translations, 10)] == [10, 11]

    def test_vpn_hole_stops_run(self):
        translations = line((8, 1), (10, 3), (11, 4))
        run = contiguous_run_around(translations, 10)
        assert [t.vpn for t in run] == [10, 11]

    def test_attribute_break_stops_run(self):
        translations = line((8, 1), (9, 2)) + line(
            (10, 3), attrs=PageAttributes.PRESENT
        )
        run = contiguous_run_around(translations, 9)
        assert [t.vpn for t in run] == [8, 9]

    def test_isolated_demand_page(self):
        translations = line((8, 1), (12, 100))
        run = contiguous_run_around(translations, 12)
        assert [t.vpn for t in run] == [12]

    def test_missing_demanded_vpn_rejected(self):
        with pytest.raises(ValueError):
            contiguous_run_around(line((8, 1)), 9)

    def test_run_length_around(self):
        translations = line((8, 1), (9, 2), (10, 3))
        assert run_length_around(translations, 9) == 3


class TestClipToGroup:
    def test_clip_keeps_demanded_group(self):
        run = line(*[(6 + i, 50 + i) for i in range(6)])  # vpns 6..11
        clipped = clip_to_group(run, 9, group_size=4)
        assert [t.vpn for t in clipped] == [8, 9, 10, 11]

    def test_clip_to_singleton_group(self):
        run = line((6, 1), (7, 2))
        clipped = clip_to_group(run, 6, group_size=1)
        assert [t.vpn for t in clipped] == [6]

    def test_demanded_vpn_always_survives(self):
        run = line((4, 1), (5, 2), (6, 3), (7, 4))
        clipped = clip_to_group(run, 7, group_size=2)
        assert any(t.vpn == 7 for t in clipped)

    def test_clip_losing_demanded_vpn_rejected(self):
        run = line((4, 1), (5, 2))
        with pytest.raises(ValueError):
            clip_to_group(run, 9, group_size=4)


class TestClipToWindow:
    def test_short_run_unchanged(self):
        run = line((8, 1), (9, 2))
        assert len(clip_to_window(run, 8, 4)) == 2

    def test_window_centres_on_demand(self):
        run = line(*[(i, 100 + i) for i in range(8)])
        clipped = clip_to_window(run, 4, 4)
        vpns = [t.vpn for t in clipped]
        assert len(vpns) == 4
        assert 4 in vpns

    def test_window_at_run_edge(self):
        run = line(*[(i, 100 + i) for i in range(8)])
        clipped = clip_to_window(run, 7, 2)
        assert [t.vpn for t in clipped] == [6, 7]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            clip_to_window(line((0, 0)), 0, 0)
