"""Tests for the coalescing logic (Figures 4-6's Coalescing Logic box)."""

import pytest

from repro.common.types import PageAttributes, Translation
from repro.core.coalescing import (
    clip_to_group,
    clip_to_window,
    contiguous_run_around,
    run_length_around,
)


def line(*pairs, attrs=PageAttributes.default_user()):
    return [Translation(v, p, attrs) for v, p in pairs]


class TestContiguousRunAround:
    def test_fully_contiguous_line(self):
        translations = line(*[(8 + i, 100 + i) for i in range(8)])
        run = contiguous_run_around(translations, 11)
        assert [t.vpn for t in run] == list(range(8, 16))

    def test_run_grows_both_directions(self):
        translations = line((8, 1), (9, 2), (10, 3), (11, 99))
        run = contiguous_run_around(translations, 9)
        assert [t.vpn for t in run] == [8, 9, 10]

    def test_pfn_break_stops_run(self):
        translations = line((8, 1), (9, 2), (10, 50), (11, 51))
        assert [t.vpn for t in contiguous_run_around(translations, 8)] == [8, 9]
        assert [t.vpn for t in contiguous_run_around(translations, 10)] == [10, 11]

    def test_vpn_hole_stops_run(self):
        translations = line((8, 1), (10, 3), (11, 4))
        run = contiguous_run_around(translations, 10)
        assert [t.vpn for t in run] == [10, 11]

    def test_attribute_break_stops_run(self):
        translations = line((8, 1), (9, 2)) + line(
            (10, 3), attrs=PageAttributes.PRESENT
        )
        run = contiguous_run_around(translations, 9)
        assert [t.vpn for t in run] == [8, 9]

    def test_isolated_demand_page(self):
        translations = line((8, 1), (12, 100))
        run = contiguous_run_around(translations, 12)
        assert [t.vpn for t in run] == [12]

    def test_missing_demanded_vpn_rejected(self):
        with pytest.raises(ValueError):
            contiguous_run_around(line((8, 1)), 9)

    def test_run_length_around(self):
        translations = line((8, 1), (9, 2), (10, 3))
        assert run_length_around(translations, 9) == 3


class TestClipToGroup:
    def test_clip_keeps_demanded_group(self):
        run = line(*[(6 + i, 50 + i) for i in range(6)])  # vpns 6..11
        clipped = clip_to_group(run, 9, group_size=4)
        assert [t.vpn for t in clipped] == [8, 9, 10, 11]

    def test_clip_to_singleton_group(self):
        run = line((6, 1), (7, 2))
        clipped = clip_to_group(run, 6, group_size=1)
        assert [t.vpn for t in clipped] == [6]

    def test_demanded_vpn_always_survives(self):
        run = line((4, 1), (5, 2), (6, 3), (7, 4))
        clipped = clip_to_group(run, 7, group_size=2)
        assert any(t.vpn == 7 for t in clipped)

    def test_clip_losing_demanded_vpn_rejected(self):
        run = line((4, 1), (5, 2))
        with pytest.raises(ValueError):
            clip_to_group(run, 9, group_size=4)


class TestRunEndpoints:
    """Runs demanded at their own endpoints (first/last slot of a line)."""

    def test_demand_at_run_start(self):
        translations = line(*[(8 + i, 100 + i) for i in range(8)])
        run = contiguous_run_around(translations, 8)
        assert [t.vpn for t in run] == list(range(8, 16))

    def test_demand_at_run_end(self):
        translations = line(*[(8 + i, 100 + i) for i in range(8)])
        run = contiguous_run_around(translations, 15)
        assert [t.vpn for t in run] == list(range(8, 16))

    def test_singleton_at_line_start_and_end(self):
        # Neighbours exist but never chain (PFNs jump): endpoint pages
        # must come back as singleton runs, not crash the growth loops.
        translations = line((8, 1), (9, 50), (15, 90))
        assert [t.vpn for t in contiguous_run_around(translations, 8)] == [8]
        assert [t.vpn for t in contiguous_run_around(translations, 15)] == [15]


class TestClipToWindow:
    def test_short_run_unchanged(self):
        run = line((8, 1), (9, 2))
        assert len(clip_to_window(run, 8, 4)) == 2

    def test_window_centres_on_demand(self):
        run = line(*[(i, 100 + i) for i in range(8)])
        clipped = clip_to_window(run, 4, 4)
        vpns = [t.vpn for t in clipped]
        assert len(vpns) == 4
        assert 4 in vpns

    def test_window_at_run_edge(self):
        run = line(*[(i, 100 + i) for i in range(8)])
        clipped = clip_to_window(run, 7, 2)
        assert [t.vpn for t in clipped] == [6, 7]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            clip_to_window(line((0, 0)), 0, 0)

    def test_window_equal_to_line_is_identity(self):
        # The natural coalescing window IS the 8-PTE cache line: a
        # window of exactly 8 must return a full-line run untouched.
        run = line(*[(8 + i, 100 + i) for i in range(8)])
        clipped = clip_to_window(run, 11, 8)
        assert [t.vpn for t in clipped] == [t.vpn for t in run]

    def test_window_one_keeps_only_demand(self):
        run = line(*[(8 + i, 100 + i) for i in range(8)])
        for vpn in (8, 11, 15):
            clipped = clip_to_window(run, vpn, 1)
            assert [t.vpn for t in clipped] == [vpn]

    def test_window_wider_than_line_is_identity(self):
        # Wider-than-line windows model fetching two adjacent lines,
        # but the run itself still bounds the result.
        run = line(*[(8 + i, 100 + i) for i in range(8)])
        assert len(clip_to_window(run, 12, 16)) == 8


class TestColtAllThresholdRouting:
    """Figure 6 step 1: runs of exactly the threshold still go SA."""

    @staticmethod
    def build_mmu_with_run(run_length):
        from repro.cache.hierarchy import CacheHierarchy
        from repro.cache.mmu_cache import MMUCache
        from repro.core.mmu import MMU, CoLTDesign, make_mmu_config
        from repro.osmem.page_table import PageTable
        from repro.walker.page_walker import PageWalker

        table = PageTable()
        # One contiguous run of the requested length at a line start,
        # then a PFN discontinuity so the run cannot grow further.
        for offset in range(run_length):
            table.map_page(1024 + offset, 5000 + offset)
        for offset in range(run_length, 8):
            table.map_page(1024 + offset, 9000 + 10 * offset)
        walker = PageWalker(table, CacheHierarchy(), MMUCache())
        return MMU(make_mmu_config(CoLTDesign.COLT_ALL), walker)

    def test_run_exactly_at_threshold_routes_sa(self):
        mmu = self.build_mmu_with_run(4)
        assert mmu.config.effective_all_threshold == 4
        mmu.access(1025)
        assert mmu.counters["sa_routed_fills"] == 1
        assert mmu.counters["fa_routed_fills"] == 0
        # The run landed in the SA hierarchy, not the FA TLB.
        assert mmu.superpage_tlb.occupancy == 0
        assert mmu.l2.entry_for(1024) is not None

    def test_run_one_past_threshold_routes_fa(self):
        mmu = self.build_mmu_with_run(5)
        mmu.access(1025)
        assert mmu.counters["fa_routed_fills"] == 1
        assert mmu.counters["sa_routed_fills"] == 0
        entry = mmu.superpage_tlb.covering_entry(1025)
        assert entry is not None and entry.span == 5
