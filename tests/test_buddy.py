"""Tests for the buddy allocator (Figures 1-2 of the paper)."""

import pytest

from repro.common.errors import AllocationError, OutOfMemoryError
from repro.osmem.buddy import BuddyAllocator, order_for_pages


class TestOrderForPages:
    @pytest.mark.parametrize(
        "pages,order",
        [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (512, 9)],
    )
    def test_covering_order(self, pages, order):
        assert order_for_pages(pages) == order

    def test_zero_pages_rejected(self):
        with pytest.raises(AllocationError):
            order_for_pages(0)


class TestInitialState:
    def test_power_of_two_memory_seeds_max_blocks(self):
        buddy = BuddyAllocator(2048)
        assert buddy.free_pages == 2048
        assert buddy.free_blocks_at(10) == 2
        buddy.check_invariants()

    def test_non_power_of_two_memory(self):
        buddy = BuddyAllocator(1536)  # 1024 + 512
        assert buddy.free_pages == 1536
        assert buddy.free_blocks_at(10) == 1
        assert buddy.free_blocks_at(9) == 1
        buddy.check_invariants()


class TestAllocation:
    def test_alloc_block_is_aligned(self):
        buddy = BuddyAllocator(1024)
        start = buddy.alloc_block(4)
        assert start % 16 == 0
        buddy.check_invariants()

    def test_split_populates_lower_lists(self):
        buddy = BuddyAllocator(16)  # one order-4 block
        buddy.alloc_block(0)
        # Splitting 16 -> 8+4+2+1+1(allocated) leaves one block each at
        # orders 3, 2, 1, 0.
        for order in (0, 1, 2, 3):
            assert buddy.free_blocks_at(order) == 1
        assert buddy.free_pages == 15
        buddy.check_invariants()

    def test_exhaustion_raises(self):
        buddy = BuddyAllocator(4)
        buddy.alloc_block(2)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc_block(0)

    def test_fragmented_large_request_fails(self):
        buddy = BuddyAllocator(8)
        a = buddy.alloc_block(2)  # take half
        buddy.alloc_block(2)
        buddy.free_block(a, 2)
        # Half the memory is free but only as one order-2 block.
        with pytest.raises(OutOfMemoryError):
            buddy.alloc_block(3)

    def test_alloc_exact_returns_surplus(self):
        buddy = BuddyAllocator(16)
        start, pages = buddy.alloc_exact(5)
        assert pages == 5
        assert buddy.free_pages == 11
        buddy.check_invariants()

    def test_alloc_exact_too_large_raises(self):
        buddy = BuddyAllocator(2048)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc_exact(2048)  # exceeds max order block (1024)


class TestBestEffortRuns:
    def test_unfragmented_gives_single_run(self):
        buddy = BuddyAllocator(64)
        runs = buddy.alloc_run_best_effort(10)
        assert len(runs) == 1
        assert runs[0][1] == 10

    def test_fragmented_gives_multiple_runs(self):
        buddy = BuddyAllocator(16)
        # Pin alternating order-1 blocks to fragment.
        keep = []
        for _ in range(4):
            keep.append(buddy.alloc_block(1))
        for start in keep[::2]:
            buddy.free_block(start, 1)
        buddy.check_invariants()
        runs = buddy.alloc_run_best_effort(12)
        assert sum(length for _, length in runs) == 12
        assert len(runs) > 1

    def test_insufficient_memory_rolls_back(self):
        buddy = BuddyAllocator(8)
        buddy.alloc_block(2)
        free_before = buddy.free_pages
        with pytest.raises(OutOfMemoryError):
            buddy.alloc_run_best_effort(6)
        assert buddy.free_pages == free_before
        buddy.check_invariants()

    def test_zero_pages_rejected(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(8).alloc_run_best_effort(0)


class TestFreeing:
    def test_free_merges_back_to_max(self):
        buddy = BuddyAllocator(64)
        start = buddy.alloc_block(3)
        buddy.free_block(start, 3)
        assert buddy.free_blocks_at(6) == 1
        assert buddy.free_pages == 64
        buddy.check_invariants()

    def test_iterative_merge_across_orders(self):
        buddy = BuddyAllocator(8)
        a = buddy.alloc_block(0)
        b = buddy.alloc_block(0)
        c = buddy.alloc_block(1)
        d = buddy.alloc_block(2)
        for start, order in ((a, 0), (b, 0), (c, 1), (d, 2)):
            buddy.free_block(start, order)
        assert buddy.free_blocks_at(3) == 1
        buddy.check_invariants()

    def test_misaligned_free_rejected(self):
        buddy = BuddyAllocator(16)
        with pytest.raises(AllocationError):
            buddy.free_block(1, 1)

    def test_double_free_detected(self):
        buddy = BuddyAllocator(16)
        start = buddy.alloc_block(4)  # whole memory
        buddy.free_block(start, 4)
        with pytest.raises(AllocationError):
            buddy.free_block(start, 4)

    def test_free_run_handles_unaligned_ranges(self):
        buddy = BuddyAllocator(64)
        start, _ = buddy.alloc_exact(13)
        buddy.free_run(start, 13)
        assert buddy.free_pages == 64
        buddy.check_invariants()


class TestReserveRange:
    def test_reserved_frames_leave_pool(self):
        buddy = BuddyAllocator(64)
        buddy.reserve_range(10, 3)
        assert buddy.free_pages == 61
        assert not buddy.is_frame_free(11)
        assert buddy.is_frame_free(13)
        buddy.check_invariants()

    def test_reserving_allocated_frame_rejected(self):
        buddy = BuddyAllocator(16)
        buddy.reserve_range(0, 16)
        with pytest.raises(AllocationError):
            buddy.reserve_range(0, 1)

    def test_freeing_reserved_returns_them(self):
        buddy = BuddyAllocator(16)
        buddy.reserve_range(4, 2)
        buddy.free_run(4, 2)
        assert buddy.free_pages == 16
        buddy.check_invariants()


class TestQueries:
    def test_can_allocate(self):
        buddy = BuddyAllocator(16)
        assert buddy.can_allocate(4)
        buddy.alloc_block(4)
        assert not buddy.can_allocate(0)

    def test_largest_free_order(self):
        buddy = BuddyAllocator(16)
        assert buddy.largest_free_order() == 4
        buddy.alloc_block(4)
        assert buddy.largest_free_order() is None

    def test_counters_track_operations(self):
        buddy = BuddyAllocator(16)
        start = buddy.alloc_block(0)
        buddy.free_block(start, 0)
        assert buddy.counters["allocations"] == 1
        assert buddy.counters["splits"] == 4
        assert buddy.counters["merges"] == 4
        assert buddy.counters["frees"] == 1
