"""Tests for the MMU front-end and the four TLB designs."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mmu_cache import MMUCache
from repro.common.errors import ConfigurationError
from repro.core.mmu import MMU, CoLTDesign, MMUConfig, make_mmu_config
from repro.osmem.page_table import PageTable
from repro.walker.page_walker import PageWalker


def build_table(contiguous_pages=64, base_vpn=1024, base_pfn=5000):
    """A page table with one perfectly contiguous region."""
    table = PageTable()
    for offset in range(contiguous_pages):
        table.map_page(base_vpn + offset, base_pfn + offset)
    return table


def build_mmu(design, table=None, **config_kwargs):
    table = table or build_table()
    walker = PageWalker(table, CacheHierarchy(), MMUCache())
    return MMU(make_mmu_config(design, **config_kwargs), walker)


class TestConfigFactory:
    def test_baseline_sizes(self):
        config = make_mmu_config(CoLTDesign.BASELINE)
        assert config.l1.entries == 32
        assert config.l2.entries == 128
        assert config.superpage.entries == 16
        assert config.l1.index_shift == 0

    def test_colt_sa_shifts_index(self):
        config = make_mmu_config(CoLTDesign.COLT_SA)
        assert config.l1.index_shift == 2
        assert config.l2.index_shift == 2
        assert config.superpage.entries == 16

    def test_colt_fa_halves_superpage_tlb(self):
        config = make_mmu_config(CoLTDesign.COLT_FA)
        assert config.superpage.entries == 8
        assert config.superpage.allow_coalesced
        assert config.superpage.merge_on_insert
        assert config.l1.index_shift == 0

    def test_colt_all_combines_both(self):
        config = make_mmu_config(CoLTDesign.COLT_ALL)
        assert config.l1.index_shift == 2
        assert config.superpage.entries == 8
        assert config.effective_all_threshold == 4

    def test_baseline_with_shift_rejected(self):
        from repro.tlb.config import (
            FullyAssociativeTLBConfig,
            default_l1_config,
            default_l2_config,
        )

        with pytest.raises(ConfigurationError):
            MMUConfig(
                design=CoLTDesign.BASELINE,
                l1=default_l1_config(2),
                l2=default_l2_config(2),
                superpage=FullyAssociativeTLBConfig(),
            )


class TestTranslationCorrectness:
    """Every design must translate correctly, whatever it caches."""

    @pytest.mark.parametrize(
        "design",
        [
            CoLTDesign.BASELINE,
            CoLTDesign.COLT_SA,
            CoLTDesign.COLT_FA,
            CoLTDesign.COLT_ALL,
            CoLTDesign.PERFECT,
        ],
    )
    def test_translations_match_page_table(self, design):
        table = build_table(64)
        mmu = build_mmu(design, table)
        import random

        rng = random.Random(7)
        for _ in range(500):
            vpn = 1024 + rng.randrange(64)
            result = mmu.translate(vpn)
            expected = table.lookup(vpn)
            assert result.translation.pfn == expected.pfn, (
                f"{design}: wrong translation for vpn {vpn}"
            )

    def test_superpage_translations_served_from_fa_tlb(self):
        table = PageTable()
        table.map_superpage(512, 2048)
        mmu = build_mmu(CoLTDesign.BASELINE, table)
        first = mmu.translate(512 + 7)
        assert first.hit_level == "walk"
        second = mmu.translate(512 + 450)
        assert second.hit_level == "superpage"
        assert second.translation.pfn == 2048 + 450


class TestBaselineFlow:
    def test_walk_then_l1_hit(self):
        mmu = build_mmu(CoLTDesign.BASELINE)
        assert mmu.translate(1024).hit_level == "walk"
        assert mmu.translate(1024).hit_level == "l1"

    def test_l2_hit_after_l1_eviction(self):
        mmu = build_mmu(CoLTDesign.BASELINE)
        # Fill more pages than L1 holds (32) but fewer than L2 (128).
        for vpn in range(1024, 1024 + 64):
            mmu.translate(vpn)
        result = mmu.translate(1024)
        assert result.hit_level == "l2"
        # And the refill restores it to L1.
        assert mmu.translate(1024).hit_level == "l1"

    def test_baseline_never_coalesces(self):
        mmu = build_mmu(CoLTDesign.BASELINE)
        for vpn in range(1024, 1024 + 16):
            mmu.translate(vpn)
        assert mmu.counters["coalesced_fills"] == 0
        assert mmu.counters["walks"] == 16


class TestColtSA:
    def test_one_walk_covers_the_group(self):
        mmu = build_mmu(CoLTDesign.COLT_SA)
        assert mmu.translate(1024).hit_level == "walk"
        # The other three group members were coalesced on the fill.
        for vpn in (1025, 1026, 1027):
            assert mmu.translate(vpn).hit_level == "l1"
        # Next group needs its own walk.
        assert mmu.translate(1028).hit_level == "walk"

    def test_coalescing_bounded_by_group_size(self):
        mmu = build_mmu(CoLTDesign.COLT_SA)
        mmu.translate(1024)
        assert mmu.l1.resident_translations() <= 4

    def test_shift_one_covers_pairs(self):
        mmu = build_mmu(CoLTDesign.COLT_SA, sa_shift=1)
        mmu.translate(1024)
        assert mmu.translate(1025).hit_level == "l1"
        assert mmu.translate(1026).hit_level == "walk"

    def test_miss_reduction_on_sequential_sweep(self):
        baseline = build_mmu(CoLTDesign.BASELINE, build_table(256))
        colt = build_mmu(CoLTDesign.COLT_SA, build_table(256))
        for mmu in (baseline, colt):
            for sweep in range(3):
                for vpn in range(1024, 1024 + 256):
                    mmu.translate(vpn)
        assert colt.counters["walks"] < baseline.counters["walks"] / 2


class TestColtFA:
    def test_coalesced_fill_goes_to_fa_tlb(self):
        mmu = build_mmu(CoLTDesign.COLT_FA)
        assert mmu.translate(1026).hit_level == "walk"
        # The FA TLB now covers the full 8-PTE line around 1026.
        assert mmu.translate(1031).hit_level == "superpage"
        assert mmu.superpage_tlb.occupancy == 1

    def test_l2_echo_holds_only_demanded_translation(self):
        mmu = build_mmu(CoLTDesign.COLT_FA)
        mmu.translate(1026)
        assert mmu.l2.resident_translations() == 1
        assert mmu.l2.entry_for(1026) is not None

    def test_uncoalescible_fill_uses_sa_tlbs(self):
        table = PageTable()
        table.map_page(100, 1)
        table.map_page(101, 77)  # not PFN-contiguous
        mmu = build_mmu(CoLTDesign.COLT_FA, table)
        mmu.translate(100)
        assert mmu.superpage_tlb.occupancy == 0
        assert mmu.translate(100).hit_level == "l1"

    def test_insertion_merging_spans_cache_lines(self):
        mmu = build_mmu(CoLTDesign.COLT_FA, build_table(64))
        # Miss in two adjacent cache lines: the entries merge.
        mmu.translate(1024)
        mmu.translate(1032)
        entry = mmu.superpage_tlb.covering_entry(1028)
        assert entry is not None
        assert entry.span == 16

    def test_fa_fill_l2_ablation_flag(self):
        mmu = build_mmu(CoLTDesign.COLT_FA, fa_fill_l2=False)
        mmu.translate(1026)
        assert mmu.l2.resident_translations() == 0


class TestColtAll:
    def test_long_run_routes_to_fa(self):
        mmu = build_mmu(CoLTDesign.COLT_ALL)  # threshold 4
        mmu.translate(1024)  # 8-page run > threshold
        assert mmu.counters["fa_routed_fills"] == 1
        assert mmu.superpage_tlb.occupancy == 1
        # L2 got the truncated (group-sized) coalesced copy.
        assert mmu.l2.resident_translations() == 4

    def test_short_run_routes_to_sa(self):
        table = PageTable()
        # A 2-page run: below the threshold of 4.
        table.map_page(1024, 10)
        table.map_page(1025, 11)
        table.map_page(1026, 99)  # breaks the run
        mmu = build_mmu(CoLTDesign.COLT_ALL, table)
        mmu.translate(1024)
        assert mmu.counters["sa_routed_fills"] == 1
        assert mmu.superpage_tlb.occupancy == 0
        assert mmu.translate(1025).hit_level == "l1"

    def test_custom_threshold(self):
        config = make_mmu_config(CoLTDesign.COLT_ALL)
        config = config.__class__(
            **{**config.__dict__, "colt_all_threshold": 8}
        )
        table = build_table(64)
        walker = PageWalker(table, CacheHierarchy(), MMUCache())
        mmu = MMU(config, walker)
        mmu.translate(1024)  # 8-run now goes to SA
        assert mmu.counters["sa_routed_fills"] == 1


class TestPerfect:
    def test_never_misses(self):
        mmu = build_mmu(CoLTDesign.PERFECT)
        for vpn in range(1024, 1024 + 64):
            result = mmu.translate(vpn)
            assert result.hit_level == "l1"
        assert mmu.l1_misses == 0
        assert mmu.counters["walks"] == 0


class TestInvalidation:
    def test_shootdown_removes_from_all_structures(self):
        mmu = build_mmu(CoLTDesign.COLT_ALL)
        mmu.translate(1024)
        mmu.invalidate(1026)
        # The next access must walk again.
        assert mmu.translate(1026).hit_level == "walk"

    def test_invalidate_range(self):
        mmu = build_mmu(CoLTDesign.COLT_SA)
        mmu.translate(1024)
        mmu.invalidate_range(1024, 4)
        assert mmu.translate(1025).hit_level == "walk"

    def test_flush(self):
        mmu = build_mmu(CoLTDesign.BASELINE)
        mmu.translate(1024)
        mmu.flush()
        assert mmu.translate(1024).hit_level == "walk"


class TestAccounting:
    def test_l1_misses_count_parallel_probe(self):
        mmu = build_mmu(CoLTDesign.BASELINE)
        mmu.translate(1024)  # walk: counted as L1 and L2 miss
        assert mmu.l1_misses == 1
        assert mmu.l2_misses == 1
        mmu.translate(1024)
        assert mmu.l1_misses == 1

    def test_latency_accumulates_walk_cost(self):
        mmu = build_mmu(CoLTDesign.BASELINE)
        walk = mmu.translate(1024)
        hit = mmu.translate(1024)
        assert walk.latency > hit.latency
        assert mmu.total_walk_cycles > 0

    def test_l2_hit_cycles(self):
        mmu = build_mmu(CoLTDesign.BASELINE)
        for vpn in range(1024, 1024 + 64):
            mmu.translate(vpn)
        mmu.translate(1024)  # L2 hit
        assert mmu.total_l2_hit_cycles == mmu.counters["l2_hits"] * 7
