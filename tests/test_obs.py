"""Tests for repro.obs: registry, tracer, exporters, report, and the
observe-only guarantee (traced runs bit-identical to untraced ones)."""

import json

import pytest

from repro.analysis.determinism import result_digest
from repro.common.errors import ConfigurationError
from repro.common.statistics import CounterSet
from repro.obs.export import (
    chrome_trace_dict,
    metrics_csv,
    parse_chrome_trace,
    span_names,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
    read_metrics_json,
)
from repro.obs.hooks import drain_worker_obs, reset_worker_obs
from repro.obs.registry import (
    MetricsRegistry,
    MetricsSnapshot,
    bind_counterset,
    get_registry,
    set_registry,
)
from repro.obs.report import RunReport
from repro.obs.trace import (
    PROFILE_ENV,
    TRACE_ENV,
    Tracer,
    current_tracer,
    obs_active,
    reset_tracing,
)
from repro.sim.replay import replay_scenario
from repro.sim.runner import ExperimentRunner
from repro.sim.scenario import capture_scenario, scenario_config
from repro.sim.store import ResultStore
from repro.sim.system import SimulationConfig, simulate
from repro.core.mmu import CoLTDesign
from repro.osmem.kernel import KernelConfig
from repro.osmem.memhog import SIMULATION_AGING


@pytest.fixture
def obs_off(monkeypatch):
    """Guarantee observability is fully disabled and state reset."""
    monkeypatch.delenv(TRACE_ENV, raising=False)
    monkeypatch.delenv(PROFILE_ENV, raising=False)
    reset_tracing()
    set_registry(None)
    yield
    reset_tracing()
    set_registry(None)


@pytest.fixture
def obs_on(monkeypatch):
    """Enable tracing + metrics for this process; reset state around it."""
    monkeypatch.setenv(TRACE_ENV, "1")
    monkeypatch.setenv(PROFILE_ENV, "1")
    reset_tracing()
    set_registry(None)
    yield
    reset_tracing()
    set_registry(None)


def _small_config(**overrides):
    defaults = dict(
        benchmark="gobmk",
        design=CoLTDesign.COLT_ALL,
        kernel=KernelConfig(num_frames=4096),
        accesses=2000,
        scale=0.25,
        seed=11,
        aging=SIMULATION_AGING,
        churn_every=48,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_labels_independent_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("colt_test_events")
        counter.inc(design="colt_sa")
        counter.inc(2, design="colt_fa")
        counter.inc(design="colt_sa")
        assert counter.value(design="colt_sa") == 2
        assert counter.value(design="colt_fa") == 2
        assert counter.value(design="unknown") == 0
        snapshot = registry.snapshot()
        assert snapshot.counter_total("colt_test_events") == 4

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("colt_test_events")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("colt_test_metric")
        with pytest.raises(ConfigurationError):
            registry.gauge("colt_test_metric")

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("colt_x") is registry.counter("colt_x")

    def test_histogram_buckets_and_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("colt_runs", buckets=(1, 4, 8))
        for value in (1, 2, 5, 8, 100):
            hist.observe(value, design="colt_all")
        state = hist.state(design="colt_all")
        assert state.count == 5
        assert state.sum == 116
        # <=1, <=4, <=8, +inf
        assert state.counts == [1, 1, 2, 1]

    def test_snapshot_reset_drains(self):
        registry = MetricsRegistry()
        registry.counter("colt_n").inc(3)
        first = registry.snapshot(reset=True)
        assert first.counter_total("colt_n") == 3
        assert registry.snapshot().counter_total("colt_n") == 0

    def test_merge_snapshot_sums_counters_and_histograms(self):
        worker = MetricsRegistry()
        worker.counter("colt_n").inc(2, design="a")
        worker.histogram("colt_h", buckets=(2, 4)).observe(3)
        parent = MetricsRegistry()
        parent.counter("colt_n").inc(1, design="a")
        parent.histogram("colt_h", buckets=(2, 4)).observe(1)
        parent.merge_snapshot(worker.snapshot())
        merged = parent.snapshot()
        assert merged.counter_total("colt_n") == 3
        series = merged.get("colt_h")["series"]
        assert series[0]["count"] == 2
        assert series[0]["sum"] == 4

    def test_merge_snapshot_gauge_overwrites(self):
        worker = MetricsRegistry()
        worker.gauge("colt_free").set(10)
        parent = MetricsRegistry()
        parent.gauge("colt_free").set(99)
        parent.merge_snapshot(worker.snapshot())
        assert parent.gauge("colt_free").value() == 10

    def test_bound_counterset_sampled_lazily(self):
        registry = MetricsRegistry()
        counters = CounterSet(["hits", "misses"])
        bind_counterset(registry, "colt_thing", counters, design="a")
        counters.increment("hits", 5)
        snapshot = registry.snapshot()
        assert snapshot.counter_total("colt_thing_hits") == 5
        assert snapshot.counter_total("colt_thing_misses") == 0

    def test_bound_counterset_outlives_owner_until_reset(self):
        # Simulator components are short-lived (one MMU per replay):
        # the binding must keep reporting after the owner's last local
        # reference dies, and a reset drain must release it.
        registry = MetricsRegistry()
        counters = CounterSet(["hits"])
        bind_counterset(registry, "colt_gone", counters)
        counters.increment("hits")
        del counters
        assert registry.snapshot().counter_total("colt_gone_hits") == 1
        registry.snapshot(reset=True)
        assert registry.snapshot().counter_total("colt_gone_hits") == 0

    def test_bound_counterset_multiple_instances_sum(self):
        registry = MetricsRegistry()
        first, second = CounterSet(["hits"]), CounterSet(["hits"])
        bind_counterset(registry, "colt_multi", first)
        bind_counterset(registry, "colt_multi", second)
        first.increment("hits", 2)
        second.increment("hits", 3)
        assert registry.snapshot().counter_total("colt_multi_hits") == 5

    def test_snapshot_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("colt_n", unit="events").inc(7, design="x")
        registry.histogram("colt_h").observe(3)
        snapshot = registry.snapshot()
        recovered = MetricsSnapshot.from_json_dict(
            json.loads(json.dumps(snapshot.to_json_dict()))
        )
        assert recovered.instruments == snapshot.instruments

    def test_snapshot_rejects_wrong_schema(self):
        with pytest.raises(ConfigurationError):
            MetricsSnapshot.from_json_dict({"schema": "nope"})


# ---------------------------------------------------------------------------
# Tracer + exporters.
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_records_complete_event_with_args(self):
        tracer = Tracer(capacity=16)
        with tracer.span("capture", cat="phase", benchmark="mcf") as args:
            args["rows"] = 42
        (event,) = tracer.events()
        assert event.ph == "X"
        assert event.name == "capture"
        assert event.dur_us >= 0
        assert event.args == {"benchmark": "mcf", "rows": 42}

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            tracer.instant("e", index=index)
        assert tracer.dropped == 3
        assert [e.args["index"] for e in tracer.events()] == [3, 4]

    def test_drain_clears(self):
        tracer = Tracer(capacity=8)
        tracer.instant("e")
        assert len(tracer.drain()) == 1
        assert tracer.events() == []

    def test_disabled_by_default(self, obs_off):
        assert current_tracer() is None
        assert not obs_active()

    def test_env_enables(self, obs_on):
        assert current_tracer() is not None
        assert obs_active()


class TestChromeExport:
    def _sample_events(self):
        tracer = Tracer(capacity=64)
        with tracer.span("replay", cat="phase", design="colt_all"):
            tracer.instant("tlb.fill", cat="tlb", run_length=4)
        tracer.counter("buddy", cat="os", free_pages=100)
        return tracer.events()

    def test_round_trip_identity(self):
        events = self._sample_events()
        data = json.loads(json.dumps(chrome_trace_dict(events)))
        recovered = parse_chrome_trace(data)
        assert recovered == events

    def test_file_round_trip(self, tmp_path):
        events = self._sample_events()
        path = write_chrome_trace(tmp_path / "trace.json", events)
        assert parse_chrome_trace(path) == events

    def test_validate_accepts_own_output(self):
        data = chrome_trace_dict(self._sample_events())
        assert validate_chrome_trace(data) == []

    def test_validate_rejects_defects(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": []}) != []
        bad_ph = {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1}]}
        assert any("ph" in p for p in validate_chrome_trace(bad_ph))
        no_dur = {
            "traceEvents": [{"name": "x", "ph": "X", "pid": 1, "ts": 0.0}]
        }
        assert any("dur" in p for p in validate_chrome_trace(no_dur))

    def test_span_names_counts_complete_spans(self):
        names = span_names(self._sample_events())
        assert names == {"replay": 1}

    def test_metrics_json_and_csv(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("colt_n").inc(2, design="a")
        registry.histogram("colt_h").observe(3)
        snapshot = registry.snapshot()
        path = write_metrics_json(tmp_path / "metrics.json", snapshot)
        assert read_metrics_json(path).instruments == snapshot.instruments
        csv_text = metrics_csv(snapshot)
        assert "colt_n,counter" in csv_text
        assert "colt_h,histogram" in csv_text


# ---------------------------------------------------------------------------
# Worker hand-off.
# ---------------------------------------------------------------------------


class TestWorkerHandoff:
    def test_drain_none_when_disabled(self, obs_off):
        assert drain_worker_obs() is None

    def test_drain_resets_both_sinks(self, obs_on):
        tracer = current_tracer()
        tracer.instant("e")
        get_registry().counter("colt_n").inc(4)
        payload = drain_worker_obs()
        assert len(payload.events) == 1
        assert payload.metrics.counter_total("colt_n") == 4
        second = drain_worker_obs()
        assert second.events == []
        assert second.metrics.counter_total("colt_n") == 0

    def test_reset_worker_obs_drops_inherited_state(self, obs_on):
        current_tracer().instant("inherited")
        get_registry().counter("colt_n").inc(1)
        reset_worker_obs()
        assert current_tracer().events() == []
        assert get_registry().snapshot().counter_total("colt_n") == 0


# ---------------------------------------------------------------------------
# Observe-only guarantee: traced results bit-identical to untraced.
# ---------------------------------------------------------------------------


class TestTracedDeterminism:
    def test_monolithic_results_identical_traced(self, obs_off, monkeypatch):
        config = _small_config()
        untraced = result_digest(simulate(config))
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(PROFILE_ENV, "1")
        reset_tracing()
        set_registry(None)
        traced = result_digest(simulate(config))
        assert traced == untraced

    def test_capture_replay_results_identical_traced(
        self, obs_off, monkeypatch
    ):
        config = _small_config()
        scenario = capture_scenario(config)
        untraced = result_digest(replay_scenario(scenario, config))
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(PROFILE_ENV, "1")
        reset_tracing()
        set_registry(None)
        traced_scenario = capture_scenario(config)
        traced = result_digest(replay_scenario(traced_scenario, config))
        assert traced == untraced

    def test_traced_run_emits_phase_spans_and_instruments(self, obs_on):
        config = _small_config()
        runner = ExperimentRunner(jobs=1)
        runner.run_batch(
            [config, config.with_updates(design=CoLTDesign.BASELINE)]
        )
        names = span_names(runner.trace_events())
        for required in ("capture", "replay", "runner.run_batch",
                         "kernel.boot", "trace.generate"):
            assert names.get(required), f"missing span {required!r}"
        snapshot = get_registry().snapshot()
        assert len(snapshot) >= 15
        assert "colt_coalesce_run_length" in snapshot
        assert snapshot.counter_total("colt_mmu_l1_misses") > 0
        assert snapshot.counter_total("colt_kernel_faults") > 0


# ---------------------------------------------------------------------------
# Store counters + runner summary.
# ---------------------------------------------------------------------------


class TestStoreObservability:
    def test_cold_miss_then_warm_hit(self, tmp_path, obs_off):
        config = _small_config()
        store = ResultStore(tmp_path / "cache")
        cold = ExperimentRunner(jobs=1, store=store)
        cold.run_batch([config])
        counts = store.counters.as_dict()
        assert counts["hits"] == 0
        assert counts["misses"] == 1
        assert counts["evictions"] == 0
        assert counts["saves"] == 1
        assert counts["quarantines"] == 0
        warm = ExperimentRunner(jobs=1, store=store)
        warm.run_batch([config])
        counts = store.counters.as_dict()
        assert counts["hits"] == 1
        summary = warm.store_summary()
        assert summary["hit_ratio"] == pytest.approx(0.5)

    def test_torn_entry_is_quarantined(self, tmp_path, obs_off):
        config = _small_config()
        store = ResultStore(tmp_path / "cache")
        runner = ExperimentRunner(jobs=1, store=store)
        runner.run_batch([config])
        (entry,) = list(store.root.glob("*.pkl"))
        entry.write_bytes(b"torn")
        assert store.load(config) is None
        counts = store.counters.as_dict()
        assert counts["quarantines"] == 1
        assert not entry.exists()
        assert (store.root / "quarantine" / entry.name).exists()

    def test_store_summary_none_without_store(self, obs_off):
        assert ExperimentRunner(jobs=1).store_summary() is None

    def test_traced_store_spans(self, tmp_path, obs_on):
        config = _small_config()
        store = ResultStore(tmp_path / "cache")
        runner = ExperimentRunner(jobs=1, store=store)
        runner.run_batch([config])
        names = span_names(runner.trace_events())
        assert names.get("store.get") == 1
        assert names.get("store.put") == 1


# ---------------------------------------------------------------------------
# Report.
# ---------------------------------------------------------------------------


class TestRunReport:
    def test_report_aggregates_run(self, obs_on):
        config = _small_config(accesses=3000)
        runner = ExperimentRunner(jobs=1)
        runner.run_batch([config])
        snapshot = get_registry().snapshot()
        report = RunReport.build(runner.trace_events(), snapshot)
        rendered = report.render()
        assert report.wall_ms > 0
        assert any(p.name == "capture" for p in report.phases)
        assert "colt_all" in report.coalescing
        assert report.instrument_count >= 15
        assert "phase wall-time" in rendered
        assert "coalescing run lengths" in rendered

    def test_report_empty_inputs(self):
        report = RunReport.build([], None)
        assert report.wall_ms == 0.0
        assert "0 events" in report.render()
